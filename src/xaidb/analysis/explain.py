"""``xailint --explain XDB0NN`` — one rule, fully explained.

A lint finding is only as useful as the reader's understanding of *why*
the invariant exists; a rule id in CI output is not that.  This module
assembles, for one rule id:

1. the registry metadata (symbol, severity, one-line description);
2. the rationale paragraph from the rules table in ``docs/LINTING.md``
   — the scientific-correctness argument, not just the pattern;
3. the rule's minimal dirty/clean fixture pair from
   ``tests/analysis/fixtures/`` — a complete example that fires and its
   smallest compliant rewrite.

The docs and fixtures are located relative to the repo root (found by
walking up from this package and from the working directory); when the
package runs outside the repo the registry metadata still prints and
the missing sections say where they normally come from.
"""

from __future__ import annotations

import re
from pathlib import Path

from xaidb.analysis.registry import rules_by_id

__all__ = ["render_explanation", "linting_rationale", "find_repo_root"]

_LINTING_MD = Path("docs") / "LINTING.md"
_FIXTURES = Path("tests") / "analysis" / "fixtures"


def find_repo_root() -> Path | None:
    """The directory holding ``docs/LINTING.md``: the working directory
    or an ancestor of this package (editable installs / repo layout)."""
    candidates = [Path.cwd(), *Path(__file__).resolve().parents]
    for base in candidates:
        if (base / _LINTING_MD).is_file():
            return base
    return None


def linting_rationale(rule_id: str, root: Path | None) -> str | None:
    """The rule's cell from the LINTING.md rules table, markdown
    table-escapes undone."""
    if root is None:
        return None
    try:
        text = (root / _LINTING_MD).read_text(encoding="utf-8")
    except OSError:
        return None
    pattern = re.compile(
        r"^\|\s*" + re.escape(rule_id) + r"\s*\|[^|]*\|(.*)\|\s*$",
        re.MULTILINE,
    )
    match = pattern.search(text)
    if match is None:
        return None
    return match.group(1).strip().replace("\\|", "|")


def _fixture_source(
    rule_id: str, variant: str, root: Path | None
) -> str | None:
    if root is None:
        return None
    path = root / _FIXTURES / f"{rule_id.lower()}_{variant}.py"
    try:
        return path.read_text(encoding="utf-8")
    except OSError:
        return None


def _indent(text: str) -> str:
    return "\n".join(
        ("    " + line).rstrip() for line in text.rstrip().splitlines()
    )


def render_explanation(rule_id: str) -> str:
    """The full ``--explain`` text for ``rule_id``.

    Raises ``KeyError`` (with a usable message) for unknown ids so the
    CLI can turn it into a usage error.
    """
    registry = rules_by_id()
    rule = registry.get(rule_id)
    if rule is None:
        raise KeyError(
            f"unknown rule id {rule_id!r}; known: "
            + ", ".join(sorted(registry))
        )
    root = find_repo_root()
    sections = [
        f"{rule.rule_id} [{rule.symbol}] ({rule.severity})",
        "",
        _indent(rule.description),
    ]
    rationale = linting_rationale(rule_id, root)
    sections.append("")
    sections.append("Rationale (docs/LINTING.md):")
    if rationale is not None:
        sections.append(_indent(rationale))
    else:
        sections.append(
            "    (no rules-table entry found — is docs/LINTING.md "
            "reachable from here and up to date?)"
        )
    for variant, title in (
        ("dirty", "Example that fires"),
        ("clean", "Compliant rewrite"),
    ):
        source = _fixture_source(rule_id, variant, root)
        relname = f"{_FIXTURES}/{rule_id.lower()}_{variant}.py"
        sections.append("")
        sections.append(f"{title} ({relname}):")
        if source is not None:
            sections.append(_indent(source))
        else:
            sections.append("    (fixture not found from here)")
    suffix = (
        "Suppress a justified occurrence with:  "
        f"# xailint: disable={rule.rule_id} (reason)"
    )
    sections.extend(["", suffix])
    return "\n".join(sections)
