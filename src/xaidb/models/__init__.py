"""The ML substrate: numpy-only models exposing the sklearn-style
``fit`` / ``predict`` / ``predict_proba`` surface that all explainers in
xaidb consume, plus the internal structure (tree arrays, GLM Hessians,
MLP input gradients) that white-box explainers need."""

from xaidb.models.base import Classifier, Model, Regressor, clone
from xaidb.models.forest import RandomForestClassifier, RandomForestRegressor
from xaidb.models.gbm import GradientBoostedClassifier, GradientBoostedRegressor
from xaidb.models.knn import KNeighborsClassifier
from xaidb.models.linear import LinearRegression
from xaidb.models.logistic import LogisticRegression
from xaidb.models.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_squared_error,
    precision,
    r2_score,
    recall,
    roc_auc,
)
from xaidb.models.mlp import MLPClassifier
from xaidb.models.naive_bayes import GaussianNB
from xaidb.models.preprocessing import StandardScaler, train_test_split
from xaidb.models.tree import DecisionTreeClassifier, DecisionTreeRegressor
from xaidb.models.tree_kernels import EnsembleKernel, TreeKernel

__all__ = [
    "Model",
    "Classifier",
    "Regressor",
    "clone",
    "LinearRegression",
    "LogisticRegression",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "TreeKernel",
    "EnsembleKernel",
    "GradientBoostedClassifier",
    "GradientBoostedRegressor",
    "KNeighborsClassifier",
    "GaussianNB",
    "MLPClassifier",
    "StandardScaler",
    "train_test_split",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "log_loss",
    "roc_auc",
    "mean_squared_error",
    "r2_score",
    "confusion_matrix",
]
