"""The Shapley value of tuples in query answering (Livshits, Bertossi,
Kimelfeld & Sebag 2021; tutorial §3 "Explanations in Databases").

Two games over *endogenous* base tuples:

- **Boolean queries**: ``v(S) = 1`` iff the output tuple is derivable
  from ``S`` (plus exogenous tuples) — evaluated directly on the
  why-provenance DNF, no query re-execution needed;
- **numeric queries**: ``v(S) = q(D restricted to S)`` for an arbitrary
  caller-supplied query function (aggregates, model-in-the-loop queries,
  anything).

Both reuse xaidb's game/estimator stack, so exact enumeration and
permutation sampling come for free and agree with the feature-attribution
implementations they share code with.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

from xaidb.db.provenance import Provenance
from xaidb.db.relation import Relation
from xaidb.exceptions import ValidationError
from xaidb.explainers.shapley.exact import exact_shapley_values
from xaidb.explainers.shapley.games import CachedGame, Game
from xaidb.explainers.shapley.sampling import permutation_shapley_values
from xaidb.utils.rng import RandomState

__all__ = [
    "QueryFn",
    "BooleanQueryGame",
    "shapley_of_tuples_boolean",
    "shapley_of_tuples",
]

QueryFn = Callable[[frozenset], float]


class BooleanQueryGame(Game):
    """``v(S) = 1`` iff the provenance is satisfied by S ∪ exogenous."""

    def __init__(
        self,
        provenance: Provenance,
        endogenous: Sequence[Hashable],
        *,
        exogenous: Iterable[Hashable] = (),
    ) -> None:
        super().__init__(len(endogenous))
        self.provenance = provenance
        self.endogenous = list(endogenous)
        self.exogenous = frozenset(exogenous)

    def value(self, coalition) -> float:
        present = self.exogenous | {
            self.endogenous[i] for i in coalition
        }
        return 1.0 if self.provenance.satisfied_by(present) else 0.0


class _NumericQueryGame(Game):
    """``v(S) = query_fn(tuple ids in S)``."""

    def __init__(self, endogenous: Sequence[Hashable], query_fn: QueryFn) -> None:
        super().__init__(len(endogenous))
        self.endogenous = list(endogenous)
        self.query_fn = query_fn

    def value(self, coalition) -> float:
        present = frozenset(self.endogenous[i] for i in coalition)
        return float(self.query_fn(present))


def shapley_of_tuples_boolean(
    provenance: Provenance,
    endogenous: Sequence[Hashable],
    *,
    exogenous: Iterable[Hashable] = (),
    n_permutations: int | None = None,
    random_state: RandomState = None,
) -> dict[Hashable, float]:
    """Shapley value of each endogenous tuple for a boolean query answer.

    Exact enumeration by default; pass ``n_permutations`` to switch to
    Monte-Carlo for many tuples.  A tuple with value 0 plays no role in
    any derivation; values sum to ``v(D) - v(∅)`` (1 when the answer
    holds and requires at least one endogenous tuple).
    """
    if not endogenous:
        raise ValidationError("endogenous tuple list is empty")
    game = CachedGame(
        BooleanQueryGame(provenance, endogenous, exogenous=exogenous)
    )
    if n_permutations is None:
        phi = exact_shapley_values(game)
    else:
        phi, __ = permutation_shapley_values(
            game, n_permutations, random_state=random_state
        )
    return dict(zip(endogenous, phi.tolist()))


def shapley_of_tuples(
    relation: Relation,
    query_fn: Callable[[Relation], float],
    *,
    endogenous: Sequence[Hashable] | None = None,
    n_permutations: int | None = None,
    random_state: RandomState = None,
) -> dict[Hashable, float]:
    """Shapley value of base tuples for a numeric query over ``relation``.

    ``query_fn`` receives the relation restricted to a coalition's base
    tuples and returns the (scalar) query answer.  ``endogenous`` defaults
    to every base tuple in the relation's lineage.
    """
    tuples = list(endogenous) if endogenous is not None else relation.tuple_ids()
    if not tuples:
        raise ValidationError("relation has no base tuples")
    exogenous = frozenset(relation.tuple_ids()) - frozenset(tuples)

    def evaluate(present: frozenset) -> float:
        return float(query_fn(relation.restrict_to(present | exogenous)))

    game = CachedGame(_NumericQueryGame(tuples, evaluate))
    if n_permutations is None:
        phi = exact_shapley_values(game)
    else:
        phi, __ = permutation_shapley_values(
            game, n_permutations, random_state=random_state
        )
    return dict(zip(tuples, phi.tolist()))
