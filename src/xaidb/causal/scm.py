"""Structural causal models (SCMs).

An SCM assigns each endogenous variable a *mechanism* — a deterministic
function of its parents plus independent exogenous noise.  The class
supports the three rungs of Pearl's ladder that the tutorial's causal
explainers need:

1. **observational sampling** — forward simulation in topological order;
2. **interventions** — ``do(X=x)`` severs incoming edges and pins a value;
3. **counterfactuals** — abduction (recover noise consistent with an
   observed row), action (apply an intervention) and prediction (re-run
   the mechanisms with the recovered noise).

Counterfactual inference requires invertible mechanisms; the additive-noise
and threshold (Bernoulli) mechanism classes below support exact abduction,
while :class:`DiscreteMechanism` supports abduction by rejection.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from xaidb.causal.graph import CausalGraph
from xaidb.exceptions import ValidationError, XaidbError
from xaidb.utils.rng import RandomState, check_random_state

__all__ = [
    "Mechanism",
    "AdditiveNoiseMechanism",
    "BernoulliMechanism",
    "DiscreteMechanism",
    "StructuralCausalModel",
]


class Mechanism:
    """Interface of a structural mechanism ``V := f(parents, noise)``."""

    def sample_noise(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` independent exogenous noise values."""
        raise NotImplementedError

    def compute(
        self, parent_values: Mapping[Hashable, np.ndarray], noise: np.ndarray
    ) -> np.ndarray:
        """Evaluate the mechanism given parent columns and noise."""
        raise NotImplementedError

    def abduct(
        self,
        value: np.ndarray,
        parent_values: Mapping[Hashable, np.ndarray],
    ) -> np.ndarray:
        """Recover noise consistent with an observed ``value``.

        Raises :class:`XaidbError` when the mechanism is not invertible.
        """
        raise XaidbError(
            f"{type(self).__name__} does not support exact abduction"
        )


class AdditiveNoiseMechanism(Mechanism):
    """``V := f(parents) + noise`` with ``noise ~ Normal(0, scale)``.

    The workhorse of linear/nonlinear Gaussian SCMs; abduction is exact:
    ``noise = value - f(parents)``.
    """

    def __init__(
        self,
        func: Callable[[Mapping[Hashable, np.ndarray]], np.ndarray],
        *,
        noise_scale: float = 1.0,
    ) -> None:
        if noise_scale < 0:
            raise ValidationError("noise_scale must be >= 0")
        self.func = func
        self.noise_scale = noise_scale

    def sample_noise(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.noise_scale == 0:
            return np.zeros(n)
        return rng.normal(0.0, self.noise_scale, size=n)

    def compute(self, parent_values, noise):
        return np.asarray(self.func(parent_values), dtype=float) + noise

    def abduct(self, value, parent_values):
        return np.asarray(value, dtype=float) - np.asarray(
            self.func(parent_values), dtype=float
        )


class BernoulliMechanism(Mechanism):
    """``V := 1[ noise < p(parents) ]`` with ``noise ~ Uniform(0, 1)``.

    ``prob`` maps parent columns to success probabilities.  Abduction is
    partial: the observed outcome constrains noise to an interval; we
    return the interval midpoint, which reproduces the observation exactly
    under the *same* intervention-free mechanisms and gives the standard
    single-world counterfactual when ``p`` changes monotonically.
    """

    def __init__(
        self,
        prob: Callable[[Mapping[Hashable, np.ndarray]], np.ndarray],
    ) -> None:
        self.prob = prob

    def sample_noise(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, 1.0, size=n)

    def compute(self, parent_values, noise):
        p = np.clip(np.asarray(self.prob(parent_values), dtype=float), 0.0, 1.0)
        return (noise < p).astype(float)

    def abduct(self, value, parent_values):
        p = np.clip(np.asarray(self.prob(parent_values), dtype=float), 0.0, 1.0)
        value = np.asarray(value, dtype=float)
        # value == 1  =>  noise in [0, p): midpoint p/2
        # value == 0  =>  noise in [p, 1): midpoint (1+p)/2
        return np.where(value > 0.5, p / 2.0, (1.0 + p) / 2.0)


class DiscreteMechanism(Mechanism):
    """``V := choice(categories, probs(parents))`` for root or child
    categorical variables.  ``probs`` maps parent columns to an
    ``(n, k)`` matrix of category probabilities.

    Noise is the uniform variate used for inverse-CDF sampling, so
    abduction-by-interval-midpoint mirrors :class:`BernoulliMechanism`.
    """

    def __init__(
        self,
        categories: Sequence[float],
        probs: Callable[[Mapping[Hashable, np.ndarray]], np.ndarray],
    ) -> None:
        if len(categories) < 2:
            raise ValidationError("need at least two categories")
        self.categories = np.asarray(categories, dtype=float)
        self.probs = probs

    def _prob_matrix(self, parent_values, n: int) -> np.ndarray:
        p = np.asarray(self.probs(parent_values), dtype=float)
        if p.ndim == 1:
            p = np.tile(p, (n, 1))
        if p.shape != (n, len(self.categories)):
            raise ValidationError(
                f"probs returned shape {p.shape}, expected "
                f"({n}, {len(self.categories)})"
            )
        p = np.clip(p, 0.0, None)
        # an all-zero row would normalise to NaN; the clamp keeps the
        # division defined and such a row surfaces as uniform-ish noise
        return p / np.maximum(p.sum(axis=1, keepdims=True), 1e-12)

    def sample_noise(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(0.0, 1.0, size=n)

    def compute(self, parent_values, noise):
        n = len(noise)
        cdf = np.cumsum(self._prob_matrix(parent_values, n), axis=1)
        indices = (noise[:, None] >= cdf).sum(axis=1)
        indices = np.clip(indices, 0, len(self.categories) - 1)
        return self.categories[indices]

    def abduct(self, value, parent_values):
        value = np.asarray(value, dtype=float)
        n = len(value)
        p = self._prob_matrix(parent_values, n)
        cdf = np.cumsum(p, axis=1)
        lower = cdf - p
        noise = np.empty(n)
        for i, v in enumerate(value):
            matches = np.flatnonzero(np.isclose(self.categories, v))
            if matches.size == 0:
                raise ValidationError(f"value {v!r} is not a known category")
            k = int(matches[0])
            noise[i] = (lower[i, k] + cdf[i, k]) / 2.0
        return noise


class StructuralCausalModel:
    """A full SCM: a :class:`CausalGraph` plus one mechanism per node."""

    def __init__(
        self,
        graph: CausalGraph,
        mechanisms: Mapping[Hashable, Mechanism],
    ) -> None:
        missing = [n for n in graph.nodes if n not in mechanisms]
        if missing:
            raise ValidationError(f"missing mechanisms for nodes: {missing}")
        extra = [n for n in mechanisms if n not in graph]
        if extra:
            raise ValidationError(f"mechanisms for unknown nodes: {extra}")
        self.graph = graph
        self.mechanisms = dict(mechanisms)
        self._order = graph.topological_order()

    # ------------------------------------------------------------------
    # rung 1 & 2: observational / interventional sampling
    # ------------------------------------------------------------------
    def sample(
        self,
        n: int,
        *,
        interventions: Mapping[Hashable, float | np.ndarray] | None = None,
        random_state: RandomState = None,
    ) -> dict[Hashable, np.ndarray]:
        """Draw ``n`` joint samples, optionally under ``do()`` interventions.

        ``interventions`` maps node -> scalar (broadcast) or length-``n``
        array; intervened nodes ignore their mechanism and parents.
        """
        if n < 1:
            raise ValidationError("n must be >= 1")
        rng = check_random_state(random_state)
        interventions = dict(interventions or {})
        for node in interventions:
            if node not in self.graph:
                raise ValidationError(f"intervention on unknown node {node!r}")
        values: dict[Hashable, np.ndarray] = {}
        for node in self._order:
            if node in interventions:
                pinned = np.asarray(interventions[node], dtype=float)
                values[node] = (
                    np.full(n, float(pinned)) if pinned.ndim == 0 else pinned
                )
                if values[node].shape != (n,):
                    raise ValidationError(
                        f"intervention on {node!r} has wrong length"
                    )
                continue
            mechanism = self.mechanisms[node]
            noise = mechanism.sample_noise(n, rng)
            parent_values = {p: values[p] for p in self.graph.parents(node)}
            values[node] = np.asarray(
                mechanism.compute(parent_values, noise), dtype=float
            )
        return values

    # ------------------------------------------------------------------
    # rung 3: counterfactuals
    # ------------------------------------------------------------------
    def abduct(self, observation: Mapping[Hashable, float]) -> dict:
        """Recover the exogenous noise consistent with a fully observed row."""
        missing = [n for n in self.graph.nodes if n not in observation]
        if missing:
            raise ValidationError(
                f"observation must cover every node; missing {missing}"
            )
        noises: dict[Hashable, np.ndarray] = {}
        columns = {
            node: np.asarray([observation[node]], dtype=float)
            for node in self.graph.nodes
        }
        for node in self._order:
            parent_values = {p: columns[p] for p in self.graph.parents(node)}
            noises[node] = self.mechanisms[node].abduct(
                columns[node], parent_values
            )
        return noises

    def counterfactual(
        self,
        observation: Mapping[Hashable, float],
        interventions: Mapping[Hashable, float],
    ) -> dict[Hashable, float]:
        """Single-world counterfactual: what each variable *would have been*
        for this observed unit under ``do(interventions)``."""
        noises = self.abduct(observation)
        values: dict[Hashable, np.ndarray] = {}
        for node in self._order:
            if node in interventions:
                values[node] = np.asarray([float(interventions[node])])
                continue
            parent_values = {p: values[p] for p in self.graph.parents(node)}
            values[node] = np.asarray(
                self.mechanisms[node].compute(parent_values, noises[node]),
                dtype=float,
            )
        return {node: float(column[0]) for node, column in values.items()}

    # ------------------------------------------------------------------
    def sample_matrix(
        self,
        n: int,
        node_order: Sequence[Hashable],
        *,
        interventions: Mapping[Hashable, float | np.ndarray] | None = None,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Like :meth:`sample` but stacked into an ``(n, len(node_order))``
        matrix in the given column order (handy for feeding models)."""
        columns = self.sample(
            n, interventions=interventions, random_state=random_state
        )
        return np.column_stack([columns[node] for node in node_order])
