"""Unit tests for the runtime's ledger (EvalStats) and memo cache."""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.runtime import CoalitionCache, EvalStats


# ---------------------------------------------------------------- stats
def test_wrap_predict_fn_counts_rows():
    stats = EvalStats()
    counted = stats.wrap_predict_fn(lambda X: X.sum(axis=1))
    X = np.ones((7, 3))
    out = counted(X)
    assert np.array_equal(out, X.sum(axis=1))
    counted(np.ones((5, 3)))
    assert stats.n_model_evals == 12


def test_cache_hit_rate_and_metadata_keys():
    stats = EvalStats(cache_hits=3, cache_misses=1)
    assert stats.cache_hit_rate == pytest.approx(0.75)
    metadata = stats.as_metadata()
    assert set(metadata) == {
        "n_model_evals",
        "cache_hit_rate",
        "cache_evictions",
        "wall_time_s",
        "rows_per_s",
        "n_pool_reuses",
        "n_serial_fallbacks",
    }
    assert EvalStats().cache_hit_rate == 0.0  # no lookups, no divide-by-zero


def test_timer_accumulates():
    stats = EvalStats()
    with stats.timer():
        pass
    first = stats.wall_time_s
    assert first >= 0.0
    with stats.timer():
        pass
    assert stats.wall_time_s >= first


def test_since_reports_per_call_deltas():
    stats = EvalStats(n_model_evals=10, cache_hits=4, cache_misses=2)
    snapshot = stats.copy()
    stats.n_model_evals += 5
    stats.cache_hits += 1
    delta = stats.since(snapshot)
    assert delta.n_model_evals == 5
    assert delta.cache_hits == 1
    assert delta.cache_misses == 0


def test_merge_folds_counters():
    total = EvalStats(n_model_evals=1, cache_hits=1)
    total.merge(EvalStats(n_model_evals=2, cache_misses=3))
    assert total.n_model_evals == 3
    assert total.cache_hits == 1
    assert total.cache_misses == 3


# ---------------------------------------------------------------- cache
def test_cache_scalar_roundtrip():
    cache = CoalitionCache(4)
    mask = np.array([True, False, True, False])
    assert cache.get(mask) is None
    cache.put(mask, 2.5)
    assert cache.get(mask) == 2.5
    # dtype- and layout-insensitive keying
    assert cache.get(np.array([1, 0, 1, 0], dtype=np.int64)) == 2.5
    assert len(cache) == 1
    cache.clear()
    assert cache.get(mask) is None


def test_cache_batch_lookup_reports_missing_rows():
    cache = CoalitionCache(3)
    known = np.array([True, False, False])
    cache.put(known, 1.0)
    masks = np.array(
        [[True, False, False], [False, True, False], [True, True, True]]
    )
    values, missing = cache.lookup_batch(masks)
    assert values[0] == 1.0
    assert np.isnan(values[1]) and np.isnan(values[2])
    assert missing.tolist() == [1, 2]

    cache.store_batch(masks[missing], np.array([4.0, 9.0]))
    values, missing = cache.lookup_batch(masks)
    assert missing.size == 0
    assert values.tolist() == [1.0, 4.0, 9.0]


def test_cache_validates_shapes():
    cache = CoalitionCache(3)
    with pytest.raises(ValidationError):
        cache.lookup_batch(np.zeros((2, 4), dtype=bool))
    with pytest.raises(ValidationError):
        cache.store_batch(np.zeros((2, 3), dtype=bool), np.zeros(3))
    with pytest.raises(ValidationError):
        CoalitionCache(0)
