import numpy as np
import pytest

from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.models import (
    RandomForestClassifier,
    RandomForestRegressor,
    accuracy,
    r2_score,
    roc_auc,
)


class TestRandomForestClassifier:
    def test_beats_chance(self, income):
        model = RandomForestClassifier(
            n_estimators=15, max_depth=5, random_state=0
        ).fit(income.dataset.X, income.dataset.y)
        assert roc_auc(
            income.dataset.y, model.predict_proba(income.dataset.X)[:, 1]
        ) > 0.75

    def test_deterministic_given_seed(self, income):
        a = RandomForestClassifier(n_estimators=5, random_state=7).fit(
            income.dataset.X, income.dataset.y
        )
        b = RandomForestClassifier(n_estimators=5, random_state=7).fit(
            income.dataset.X, income.dataset.y
        )
        assert np.array_equal(
            a.predict_proba(income.dataset.X[:20]),
            b.predict_proba(income.dataset.X[:20]),
        )

    def test_seed_changes_model(self, income):
        a = RandomForestClassifier(n_estimators=5, random_state=1).fit(
            income.dataset.X, income.dataset.y
        )
        b = RandomForestClassifier(n_estimators=5, random_state=2).fit(
            income.dataset.X, income.dataset.y
        )
        assert not np.array_equal(
            a.predict_proba(income.dataset.X), b.predict_proba(income.dataset.X)
        )

    def test_probabilities_valid(self, income_forest, income):
        proba = income_forest.predict_proba(income.dataset.X[:30])
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_no_bootstrap_with_full_features_reduces_variance_source(self, moons):
        model = RandomForestClassifier(
            n_estimators=3, bootstrap=False, max_features=2, random_state=0
        ).fit(moons.X, moons.y)
        # without bootstrap and with all features, trees are identical
        p = [t.predict_proba(moons.X[:5]) for t in model.estimators_]
        assert np.allclose(p[0], p[1])

    def test_rejects_zero_estimators(self):
        with pytest.raises(ValidationError):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict_proba(np.ones((1, 2)))

    def test_moons_nonlinear_boundary(self, moons):
        model = RandomForestClassifier(n_estimators=20, random_state=0).fit(
            moons.X, moons.y
        )
        assert accuracy(moons.y, model.predict(moons.X)) > 0.9


class TestRandomForestRegressor:
    def test_fits_nonlinear_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(X[:, 0] * 2) + X[:, 1] ** 2
        model = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.85

    def test_average_of_trees(self, regression_data):
        X, y, __ = regression_data
        model = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
        stacked = np.vstack([t.predict(X[:10]) for t in model.estimators_])
        assert np.allclose(model.predict(X[:10]), stacked.mean(axis=0))
