"""Debugging an ML pipeline end to end (tutorial §2.3 + §3).

Story: a data-preparation pipeline silently corrupts labels.  An analyst
notices a query over the model's predictions looks wrong and files a
complaint.  We then:

1. trace the complaint to training rows with influence functions (Rain),
2. trace those rows to the *pipeline stage* that touched them
   (provenance),
3. confirm with leave-one-stage-out ablation,
4. repair by deleting the blamed rows — incrementally, PrIU-style —
   and verify the query and accuracy recover.

Run:  python examples/debugging_pipeline.py
"""

import numpy as np

from xaidb.data import make_income
from xaidb.db import Complaint, ComplaintDebugger
from xaidb.incremental import IncrementalLogisticRegression
from xaidb.models import LogisticRegression, accuracy
from xaidb.pipelines import (
    ImputeMean,
    LabelFlipCorruption,
    PipelineDebugger,
    ProvenancePipeline,
    ScaleStandard,
)


def main() -> None:
    workload = make_income(800, random_state=0)
    X_raw = workload.dataset.X.copy()
    y_raw = workload.dataset.y.copy()
    X_raw[::25, 0] = np.nan  # some missing ages

    # --- the (faulty) preparation pipeline --------------------------------
    pipeline = ProvenancePipeline(
        [
            ImputeMean(),
            # the planted bug: 20% of negatives silently become positives
            LabelFlipCorruption(fraction=0.2, direction="up"),
            ScaleStandard(),
        ],
        random_state=0,
    )
    result = pipeline.run(X_raw, y_raw)
    flipped_rows = set(result.records[1].touched_rows)
    print(f"pipeline ran {len(result.records)} stages; "
          f"{len(flipped_rows)} labels were silently corrupted")

    model = LogisticRegression(l2=1e-2).fit(result.X, result.y)

    # --- the analyst's complaint -------------------------------------------
    debugger = ComplaintDebugger(model, result.X, result.y, result.X)
    complaint = Complaint(
        query_rows=np.arange(len(result.y)),
        direction=-1,
        description="the high-income rate in this report looks inflated",
    )
    print(f"\ncomplained-about query value: {debugger.query_value(complaint):.3f}")

    ranking = debugger.rank_training_points(complaint)
    k = len(flipped_rows)
    blamed = ranking[:k]
    flipped_outputs = {
        result.output_row_of(row)
        for row in flipped_rows
        if result.output_row_of(row) is not None
    }
    recall = len(set(blamed.tolist()) & flipped_outputs) / len(flipped_outputs)
    print(f"[influence] top-{k} blamed rows contain "
          f"{recall:.0%} of the truly corrupted rows")

    # --- provenance: which stage touched the blamed rows? --------------------
    stage_counts = PipelineDebugger(
        pipeline, LogisticRegression(l2=1e-2), accuracy
    ).blame_stages_for_rows(result, blamed[:20].tolist())
    print("\n[provenance] stages touching the 20 most-blamed rows:")
    for stage, count in stage_counts.items():
        print(f"  {stage:25s} touched {count}/20")

    # --- interventional confirmation ------------------------------------------
    fresh = workload.resample(500, random_state=9)
    attributions = PipelineDebugger(
        pipeline, LogisticRegression(l2=1e-2), accuracy
    ).stage_ablation(X_raw, y_raw, fresh.X, fresh.y)
    print("\n[ablation] validation-accuracy harm per stage "
          "(positive = stage hurts):")
    for attribution in attributions:
        print(f"  {attribution.stage_name:25s} harm {attribution.harm:+.3f}")
    print(f"=> the guilty stage is '{attributions[0].stage_name}'")

    # --- the incremental fix ----------------------------------------------------
    incremental = IncrementalLogisticRegression(l2=1e-2, refine_steps=3).fit(
        result.X, result.y
    )
    incremental.delete_rows(blamed.tolist())
    repaired_rate = float(
        np.mean(incremental.predict_proba(result.X)[:, 1])
    )
    # evaluate against *held-out uncorrupted* data, scaled like the
    # training pipeline output
    holdout = workload.resample(600, random_state=123)
    holdout_X = (holdout.X - np.nanmean(X_raw, axis=0)) / np.where(
        np.nanstd(X_raw, axis=0) > 0, np.nanstd(X_raw, axis=0), 1.0
    )
    before_acc = accuracy(holdout.y, model.predict(holdout_X))
    after_acc = accuracy(holdout.y, incremental.predict(holdout_X))
    print(f"\n[fix] query value after incremental deletion: "
          f"{repaired_rate:.3f}")
    print(f"[fix] held-out accuracy vs uncorrupted labels: "
          f"{before_acc:.3f} -> {after_acc:.3f}")
    reference = incremental.retrained_reference()
    gap = float(np.abs(incremental.theta_ - reference.theta_).max())
    print(f"[fix] parameter gap vs full retrain: {gap:.2e} "
          "(PrIU-style warm update)")


if __name__ == "__main__":
    main()
