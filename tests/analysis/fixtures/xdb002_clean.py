"""XDB002 clean fixture: explicit Generator threading."""

import numpy as np

from xaidb.utils.rng import RandomState, check_random_state

__all__ = ["sample"]


def sample(random_state: RandomState = None) -> float:
    rng: np.random.Generator = check_random_state(random_state)
    return float(rng.normal(size=3).sum())
