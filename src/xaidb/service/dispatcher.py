"""The batched explanation back-end: (model, explainer, config) → work.

The dispatcher owns two registries — models (by digest) and explainer
factories (by name) — and turns one coalesced micro-batch into exactly
one batched explainer call.  Backends are built once per
``(model, explainer, config digest)`` and cached, so a hot workload
pays explainer construction (quantile bins, perturbation statistics)
once, not per request; every backend's batch entry point is seeded
per instance, which keeps the batched results **bitwise identical** to
the per-request serial path (asserted in ``tests/service/`` and by
benchmark A12).

Built-in explainer names: ``"lime"``, ``"kernel_shap"``, ``"anchors"``,
``"tree_shap"``.  Custom backends register via
:meth:`Dispatcher.register_explainer` with a factory
``(entry, config) -> (instances, seeds) -> (results, stats)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.explainers.base import PredictFn
from xaidb.explainers.lime import LimeExplainer
from xaidb.explainers.shapley import KernelShapExplainer, TreeShapExplainer
from xaidb.rules.anchors import AnchorsExplainer
from xaidb.runtime.stats import EvalStats
from xaidb.service.types import (
    UnknownExplainerError,
    UnknownModelError,
    config_digest,
)

__all__ = ["ModelEntry", "Dispatcher", "BackendFn", "BackendFactory"]

#: A built backend: ``(instances, per-instance seeds) -> (results,
#: evaluation ledger or None)``.
BackendFn = Callable[
    [np.ndarray, list[int | None]], tuple[list[Any], EvalStats | None]
]
#: Builds a backend for one (model entry, explainer config) pair.
BackendFactory = Callable[["ModelEntry", dict[str, Any]], BackendFn]


@dataclass
class ModelEntry:
    """One served model: its prediction function plus the side inputs
    different explainer families need (training data for LIME/Anchors
    perturbation statistics, background rows for KernelSHAP, the fitted
    model object itself for TreeSHAP's structure traversal)."""

    digest: str
    predict_fn: PredictFn
    dataset: Dataset | None = None
    background: np.ndarray | None = None
    model: Any | None = None


# ----------------------------------------------------------- built-ins
#
# Every built-in backend has the same run shape — construct the
# explainer once from the entry's side inputs, then feed each coalesced
# batch to ``explain_batch`` with the per-instance seeds and return the
# shared ledger.  Only the construction differs, so built-ins are a
# *table of constructors* and one generic factory; the seed-threading
# closure is written once instead of once per family (the historical
# copy-paste drifted three times before ``tree_shap`` would have made
# it four).


def _require_dataset(entry: ModelEntry, need: str) -> Dataset:
    if entry.dataset is None:
        raise UnknownModelError(
            f"model {entry.digest!r} has no dataset; {need}"
        )
    return entry.dataset


def _resolve_background(entry: ModelEntry) -> np.ndarray:
    background = entry.background
    if background is None and entry.dataset is not None:
        background = entry.dataset.X
    if background is None:
        raise UnknownModelError(
            f"model {entry.digest!r} has neither background rows nor a "
            f"dataset; KernelSHAP needs a background"
        )
    return background


def _build_lime(entry: ModelEntry, config: dict[str, Any]):
    dataset = _require_dataset(
        entry, "LIME needs one for perturbation statistics"
    )
    return LimeExplainer(dataset, **config)


def _build_kernel_shap(entry: ModelEntry, config: dict[str, Any]):
    return KernelShapExplainer(
        entry.predict_fn, _resolve_background(entry), **config
    )


def _build_anchors(entry: ModelEntry, config: dict[str, Any]):
    dataset = _require_dataset(
        entry, "Anchors needs one for its perturbation distribution"
    )
    return AnchorsExplainer(entry.predict_fn, dataset, **config)


def _build_tree_shap(entry: ModelEntry, config: dict[str, Any]):
    if entry.model is None:
        raise UnknownModelError(
            f"model {entry.digest!r} has no fitted model object; "
            f"tree_shap traverses the tree structures themselves"
        )
    return TreeShapExplainer(entry.model, **config)


def _run_with_predict_fn(explainer, entry, instances, seeds):
    # LIME's batch entry point takes the prediction function per call
    return explainer.explain_batch(entry.predict_fn, instances, seeds=seeds)


def _run_plain(explainer, entry, instances, seeds):
    return explainer.explain_batch(instances, seeds=seeds)


@dataclass(frozen=True)
class _BuiltinSpec:
    """Declarative recipe for one built-in backend."""

    build: Callable[[ModelEntry, dict[str, Any]], Any]
    run: Callable[[Any, ModelEntry, np.ndarray, list], list] = _run_plain


_BUILTIN_SPECS: dict[str, _BuiltinSpec] = {
    "lime": _BuiltinSpec(build=_build_lime, run=_run_with_predict_fn),
    "kernel_shap": _BuiltinSpec(build=_build_kernel_shap),
    "anchors": _BuiltinSpec(build=_build_anchors),
    # seeds are accepted and ignored — TreeSHAP is deterministic, but
    # the dispatcher threads per-instance seeds uniformly
    "tree_shap": _BuiltinSpec(build=_build_tree_shap),
}


def _spec_factory(spec: _BuiltinSpec) -> BackendFactory:
    def factory(entry: ModelEntry, config: dict[str, Any]) -> BackendFn:
        explainer = spec.build(entry, config)

        def run(instances, seeds):
            results = spec.run(explainer, entry, instances, seeds)
            return results, getattr(explainer, "batch_stats_", None)

        return run

    return factory


_BUILTIN_FACTORIES: dict[str, BackendFactory] = {
    name: _spec_factory(spec) for name, spec in _BUILTIN_SPECS.items()
}


class Dispatcher:
    """Model + explainer registries with a per-batch-key backend cache.

    Thread-safety note: :meth:`dispatch` runs in worker threads (the
    server calls it via ``asyncio.to_thread``), but the server
    serialises dispatches *per batch key*, and the registries are
    written only at setup time — so no locking is needed as long as
    registration precedes serving.
    """

    def __init__(self) -> None:
        self._models: dict[str, ModelEntry] = {}
        self._factories: dict[str, BackendFactory] = dict(
            _BUILTIN_FACTORIES
        )
        self._backends: dict[tuple[str, str, str], BackendFn] = {}

    # ------------------------------------------------------------------
    def register_model(
        self,
        digest: str,
        predict_fn: PredictFn,
        *,
        dataset: Dataset | None = None,
        background: np.ndarray | None = None,
        model: Any | None = None,
    ) -> ModelEntry:
        """Register a served model under ``digest``; re-registering a
        digest replaces the entry and drops its cached backends.

        ``model`` is the fitted model object itself — required only by
        structure-walking backends (``tree_shap``); prediction-function
        backends never touch it.
        """
        entry = ModelEntry(
            digest=digest,
            predict_fn=predict_fn,
            dataset=dataset,
            background=(
                None
                if background is None
                else np.asarray(background, dtype=float)
            ),
            model=model,
        )
        self._models[digest] = entry
        self._backends = {
            key: backend
            for key, backend in self._backends.items()
            if key[0] != digest
        }
        return entry

    def register_explainer(self, name: str, factory: BackendFactory) -> None:
        """Register (or replace) an explainer factory under ``name``."""
        self._factories[name] = factory
        self._backends = {
            key: backend
            for key, backend in self._backends.items()
            if key[1] != name
        }

    @property
    def models(self) -> tuple[str, ...]:
        return tuple(self._models)

    @property
    def explainers(self) -> tuple[str, ...]:
        return tuple(self._factories)

    # ------------------------------------------------------------------
    def _backend(
        self, model: str, explainer: str, config: dict[str, Any]
    ) -> BackendFn:
        key = (model, explainer, config_digest(config))
        backend = self._backends.get(key)
        if backend is None:
            entry = self._models.get(model)
            if entry is None:
                raise UnknownModelError(
                    f"no model registered under digest {model!r}"
                )
            factory = self._factories.get(explainer)
            if factory is None:
                raise UnknownExplainerError(
                    f"no explainer registered under {explainer!r} "
                    f"(have: {sorted(self._factories)})"
                )
            backend = factory(entry, dict(config))
            self._backends[key] = backend
        return backend

    def dispatch(
        self,
        model: str,
        explainer: str,
        config: dict[str, Any],
        instances: np.ndarray,
        seeds: list[int | None],
    ) -> tuple[list[Any], EvalStats | None]:
        """Run one coalesced batch through its backend.

        Returns one result per instance (order-aligned) plus the
        backend's evaluation ledger for this batch, ready to fold into
        :attr:`~xaidb.service.stats.ServiceStats.runtime`.
        """
        backend = self._backend(model, explainer, config)
        return backend(np.asarray(instances, dtype=float), seeds)
