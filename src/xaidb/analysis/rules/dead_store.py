"""XDB013 — a local assigned and never read on any path.

Dead stores in hot paths are not just clutter: in numeric code the
orphaned right-hand side is usually an allocation or a model
evaluation whose result silently goes nowhere — either wasted work on
the critical path or, worse, a computation the author *believed* was
feeding the explanation (the E19/E20 failure mode where an explainer
quietly explains something other than what it claims).

The rule solves :class:`~xaidb.analysis.dataflow.ReachingDefinitions`
per function, replays every use against the fixpoint states, and flags
assignment-statement definitions no use can ever observe.  It is
deliberately narrow to stay quiet on idiomatic code:

- only plain assignments (``x = ...``, ``x += ...``, annotated and
  tuple-unpacked targets) are flagged — ``for`` targets, ``with ... as``
  and ``except ... as`` bindings are tracked for the dataflow but never
  reported, and underscore-prefixed names are the sanctioned "unused on
  purpose" spelling;
- names read inside nested functions/classes/lambdas are exempt
  (closure captures are invisible to an intraprocedural pass), as are
  ``global``/``nonlocal`` names and whole functions that call
  ``locals``/``vars``/``eval``/``exec``;
- scope: modules inside the ``xaidb`` package (the hot paths the
  ROADMAP cares about), every function and method body.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.cfg import function_cfg
from xaidb.analysis.dataflow import (
    Definition,
    ReachingDefinitions,
    State,
    calls_dynamic_scope,
    item_uses,
    iter_functions,
    names_read_in_nested_scopes,
    replay,
)
from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["DeadStoreRule"]

#: Definition-carrying statement types the rule is willing to flag.
_FLAGGABLE_ITEMS = (ast.Assign, ast.AnnAssign, ast.AugAssign)


def _declared_global_or_nonlocal(fn: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


def _is_assignment_target(definition: Definition) -> bool:
    """True when the definition's node sits in the statement's target
    list (a walrus binding inside the RHS is incidental, not a store
    the author wrote to keep)."""
    item = definition.item
    if isinstance(item, ast.Assign):
        targets: list[ast.AST] = list(item.targets)
    elif isinstance(item, (ast.AnnAssign, ast.AugAssign)):
        targets = [item.target]
    else:
        return False
    for target in targets:
        for sub in ast.walk(target):
            if sub is definition.node:
                return True
    return False


@register
class DeadStoreRule(FileRule):
    rule_id = "XDB013"
    symbol = "dead-store"
    description = (
        "A local variable is assigned but never read on any control-"
        "flow path: the store (and often the computation feeding it) "
        "is dead code, or a sign the wrong value is being used below."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_xaidb_package:
            return
        for fn in iter_functions(ctx.tree):
            if calls_dynamic_scope(fn):
                continue
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        cfg = function_cfg(fn)
        problem = ReachingDefinitions(cfg)
        if not problem.definitions:
            return
        exempt = names_read_in_nested_scopes(fn)
        exempt |= _declared_global_or_nonlocal(fn)
        in_states = problem.solve()
        used_labels: set[str] = set()

        def visit(item: ast.AST, state: State) -> None:
            for name_node in item_uses(item):
                used_labels.update(state.get(name_node.id, ()))

        replay(cfg, problem, in_states, visit)

        dead: list[Definition] = []
        for label, definition in problem.definitions.items():
            if label in used_labels:
                continue
            if not isinstance(definition.item, _FLAGGABLE_ITEMS):
                continue
            name = definition.name
            if name.startswith("_") or name in exempt:
                continue
            if not isinstance(definition.node, ast.Name):
                continue
            if not _is_assignment_target(definition):
                continue  # walrus bindings are incidental
            dead.append(definition)

        for definition in sorted(
            dead, key=lambda d: (d.node.lineno, d.node.col_offset)
        ):
            yield ctx.finding(
                self,
                definition.node,
                f"local {definition.name!r} in {fn.name!r} is assigned "
                f"here but never read on any path; drop the binding "
                f"(or prefix with '_' if the unpacking slot is "
                f"intentional)",
            )
