"""Clean fixture for XDB020: pooled tasks live at module level, so they
pickle by reference and actually run in the workers."""

from xaidb.runtime import parallel_map

__all__ = ["double_all", "offset_all"]


def _double_task(value):
    return value * 2


def _shift_task(task):
    value, offset = task
    return value + offset


def double_all(values):
    return parallel_map(_double_task, values)


def offset_all(values, offset):
    return parallel_map(_shift_task, [(v, offset) for v in values])
