"""Small linear-algebra helpers shared by models and influence functions."""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ConvergenceError

__all__ = [
    "solve_psd",
    "solve_psd_stacked",
    "conjugate_gradient",
    "batched_outer_sum",
    "logsumexp",
    "sigmoid",
]


def solve_psd(matrix: np.ndarray, rhs: np.ndarray, *, ridge: float = 0.0) -> np.ndarray:
    """Solve ``(matrix + ridge*I) x = rhs`` for a symmetric PSD ``matrix``.

    Tries a Cholesky solve first and falls back to least squares when the
    matrix is numerically singular, which keeps influence-function and
    closed-form regression code paths robust without hiding rank problems
    behind silent regularisation.
    """
    a = np.asarray(matrix, dtype=float)
    if ridge:
        a = a + ridge * np.eye(a.shape[0])
    try:
        chol = np.linalg.cholesky(a)
        y = np.linalg.solve(chol, rhs)
        return np.linalg.solve(chol.T, y)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(a, rhs, rcond=None)
        return solution


def solve_psd_stacked(
    matrix: np.ndarray, rhs_columns: np.ndarray, *, ridge: float = 0.0
) -> np.ndarray:
    """Solve ``(matrix + ridge*I) X = rhs_columns`` for many right-hand
    sides, factorizing once and substituting column by column.

    Column ``k`` of the result is **bitwise identical** to
    ``solve_psd(matrix, rhs_columns[:, k])``: the Cholesky factor of a
    given matrix is deterministic, and the per-column triangular solves
    replay exactly the single-RHS path.  The obvious one-shot
    multi-RHS ``np.linalg.solve(a, rhs_columns)`` is deliberately
    avoided — the blocked (gemm-based) BLAS kernels it dispatches to
    are *not* column-for-column identical to the vector path, so it
    would break the stacked-solve == per-instance-solve contract the
    batched KernelSHAP relies on.  The factorization is still shared,
    which is where the time goes.
    """
    a = np.asarray(matrix, dtype=float)
    if ridge:
        a = a + ridge * np.eye(a.shape[0])
    rhs = np.asarray(rhs_columns, dtype=float)
    out = np.empty((a.shape[0], rhs.shape[1]))
    try:
        chol = np.linalg.cholesky(a)
    except np.linalg.LinAlgError:
        for k in range(rhs.shape[1]):
            out[:, k] = np.linalg.lstsq(a, rhs[:, k], rcond=None)[0]
        return out
    for k in range(rhs.shape[1]):
        y = np.linalg.solve(chol, rhs[:, k])
        out[:, k] = np.linalg.solve(chol.T, y)
    return out


def conjugate_gradient(
    matvec,
    rhs: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> np.ndarray:
    """Solve ``A x = rhs`` given only the matrix-vector product ``matvec``.

    Used by influence functions to invert the Hessian implicitly (the
    "stochastic estimation" alternative of Koh & Liang 2017) — ablated
    against the exact solve in experiment E16.

    Raises :class:`ConvergenceError` if the residual does not drop below
    ``tol * ||rhs||`` within ``max_iter`` iterations.
    """
    rhs = np.asarray(rhs, dtype=float)
    x = np.zeros_like(rhs)
    residual = rhs - matvec(x)
    direction = residual.copy()
    rs_old = float(residual @ residual)
    threshold = tol * max(float(np.linalg.norm(rhs)), 1e-30)
    for _ in range(max_iter):
        if np.sqrt(rs_old) <= threshold:
            return x
        a_dir = matvec(direction)
        denom = float(direction @ a_dir)
        if denom <= 0:
            # Hessian not PSD along this direction; bail out with the
            # current iterate rather than diverging.
            return x
        alpha = rs_old / denom
        x = x + alpha * direction
        residual = residual - alpha * a_dir
        rs_new = float(residual @ residual)
        direction = residual + (rs_new / rs_old) * direction
        rs_old = rs_new
    if np.sqrt(rs_old) <= threshold:
        return x
    raise ConvergenceError(
        f"conjugate gradient did not converge in {max_iter} iterations "
        f"(residual {np.sqrt(rs_old):.3e}, threshold {threshold:.3e})"
    )


def batched_outer_sum(vectors: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Compute ``sum_i w_i * v_i v_i^T`` without materialising each outer
    product (the workhorse of Hessian assembly for GLMs)."""
    vectors = np.asarray(vectors, dtype=float)
    if weights is None:
        return vectors.T @ vectors
    weights = np.asarray(weights, dtype=float)
    return (vectors * weights[:, None]).T @ vectors


def logsumexp(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Numerically stable ``log(sum(exp(values)))``."""
    values = np.asarray(values, dtype=float)
    peak = np.max(values, axis=axis, keepdims=True)
    # xailint: disable=XDB024 (the peak shift leaves one term at exp(0) = 1, so the sum is >= 1)
    out = np.log(np.sum(np.exp(values - peak), axis=axis, keepdims=True)) + peak
    if axis is None:
        return out.reshape(())
    return np.squeeze(out, axis=axis)


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out
