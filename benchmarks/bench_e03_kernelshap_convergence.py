"""E3 — KernelSHAP converges to exact Shapley values (Lundberg & Lee 2017,
Fig. 3 shape).

Reproduced shape: as the coalition-sample budget grows, KernelSHAP's and
permutation sampling's mean absolute error against exact enumeration
decay; the exhaustive regime is exact to numerical precision.  The
DESIGN.md ablation — exact efficiency constraint vs penalised — is
implicit: our solver keeps the constraint exact at every budget (checked
by the additivity assertion).
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.shapley import (
    ExactShapleyExplainer,
    KernelShapExplainer,
    PermutationShapleyExplainer,
)
from xaidb.models import RandomForestClassifier

BUDGETS = [16, 32, 64, 126]  # 2^7-2 = 126 -> exhaustive for d=7


def compute_rows():
    workload = make_income(800, random_state=0)
    dataset = workload.dataset
    model = RandomForestClassifier(
        n_estimators=15, max_depth=5, random_state=0
    ).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)
    background = dataset.X[:12]
    x = dataset.X[5]
    exact = ExactShapleyExplainer(f, background).explain(x)
    rows = []
    for budget in BUDGETS:
        kernel = KernelShapExplainer(
            f, background, n_coalitions=budget
        ).explain(x, random_state=0)
        permutation = PermutationShapleyExplainer(
            f, background, n_permutations=max(2, budget // 7)
        ).explain(x, random_state=0)
        rows.append(
            (
                budget,
                float(np.abs(kernel.values - exact.values).mean()),
                float(np.abs(permutation.values - exact.values).mean()),
                kernel.additive_check(atol=1e-8),
            )
        )
    return rows, exact


def test_e03_kernelshap_convergence(benchmark):
    rows, exact = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E3: estimator error vs exact Shapley (paper: Kernel converges, "
        "efficiency exact)",
        ["budget", "KernelSHAP MAE", "permutation MAE", "efficiency exact"],
        rows,
    )
    errors = [row[1] for row in rows]
    # shape: error decreases with budget; exhaustive budget is ~exact
    assert errors[-1] < errors[0]
    assert errors[-1] < 1e-8
    # efficiency holds at every budget (our constrained-WLS design choice)
    assert all(row[3] for row in rows)
