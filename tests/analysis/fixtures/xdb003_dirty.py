"""XDB003 dirty fixture: explain/fit methods that mutate their inputs."""

import numpy as np

__all__ = ["ImpureExplainer"]


class ImpureExplainer:
    def explain(self, x: np.ndarray) -> np.ndarray:
        x[0] = 0.0  # subscript store into a parameter
        x += 1.0  # augmented assignment mutates ndarrays in place
        return x

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ImpureExplainer":
        X = np.asarray(X)  # no-copy passthrough keeps the alias
        np.log1p(X, out=X)  # out= writes into the caller's buffer
        self.y_ = y
        return self
