"""Protocol typestate over the dataflow framework (summary pass F).

The serving stack carries lifecycle contracts that nothing dynamic
checks until production traffic does: a :class:`~xaidb.runtime.parallel.
WorkerPool` must not ``map()`` after ``close()`` (its worker processes
and shared arenas are gone), an :class:`~xaidb.service.server.
ExplanationServer` must not ``submit()`` outside ``start()``/``stop()``,
a :class:`~xaidb.service.batcher.MicroBatcher` must not accept requests
after ``drain_nowait()``, and an estimator must be ``fit()`` before
``predict``/``explain``.  This module turns each contract into a small
deterministic automaton (:class:`Protocol` — a Strom/Yemini-style
typestate DFA declared as a data table) and tracks every abstract
object through it with the PR 3 forward-dataflow framework.

The abstract domain rides the standard map lattice: a local variable
maps to a set of *object identities* (``obj:<line>:<col>`` for a
constructor call, ``obj:param:<name>`` for a parameter), and a pseudo
variable per identity maps to a set of labels ``proto|s_in|s_cur`` —
"interpreting this object under protocol ``proto``, entered in state
``s_in``, it is now in state ``s_cur``".  Join is pointwise union, so a
state set answers *may* questions; the rules (XDB028/XDB029) fire only
on **must** proofs: every label of the object makes the invoked method
illegal.  Three escape hatches keep that sound:

- *poisoning* — an object that reaches unknown code (unresolved call,
  attribute/subscript store, starred/keyword splat, container literal)
  moves to the absorbing pseudo-state :data:`ESCAPED`, which is never
  illegal, so a one-branch escape blocks every later proof;
- *refutation* — calling a method a protocol's alphabet does not
  contain deletes that protocol's labels: a real object of the protocol
  class would have crashed with ``AttributeError``, so every claim
  under that protocol is vacuous from here on;
- *⊤ fallback* — parameters read by nested scopes or declared
  ``global``/``nonlocal`` are never seeded at all.

Interprocedural transport (pass F proper) exports three fact families
per function into :class:`~xaidb.analysis.summaries.FunctionSummary`:
which parameters stay *tracked* to every exit, the *state-transition
relation* the body applies to them, and conditional *obligations* —
"entered with ``param`` in state ``s``, line ``L`` performs an illegal
``method``" — which caller frames consume (firing XDB028/XDB029 with a
cross-function witness) or re-export transitively over the
SCC-condensed call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from xaidb.analysis.callgraph import CallGraph, FunctionNode, dotted_name
from xaidb.analysis.cfg import CFG
from xaidb.analysis.dataflow import (
    State,
    ValueTaint,
    function_params,
    item_exprs,
    names_read_in_nested_scopes,
)

__all__ = [
    "ESCAPED",
    "OBJ_PREFIX",
    "PSEUDO_PREFIX",
    "RETURNS_SELF",
    "Protocol",
    "PROTOCOLS",
    "PROTOCOL_BY_NAME",
    "ProtocolIndex",
    "protocol_index",
    "TypestateAnalysis",
    "TypestateFacts",
    "Violation",
    "state_label",
    "parse_label",
    "join_states",
    "step_label",
    "tracked_pairs",
    "transition_relation",
    "obligation_index",
]

#: Absorbing pseudo-state for objects that escaped to unknown code: it
#: survives joins and is never illegal, so must-proofs cannot fire.
ESCAPED = "!"

#: Object-identity label prefixes (``obj:12:4`` / ``obj:param:pool``).
OBJ_PREFIX = "obj:"

#: A pseudo variable ``~obj:...`` holds the object's typestate labels.
PSEUDO_PREFIX = "~"

#: Methods whose return value is the receiver (``est.fit(X).predict``
#: chains keep the object identity flowing).
RETURNS_SELF = frozenset({"fit", "partial_fit"})


@dataclass(frozen=True)
class Protocol:
    """One lifecycle contract as a data-table DFA.

    ``transitions`` maps ``(state, method)`` to the successor state;
    a method in the alphabet with no entry for the current state is a
    self-loop (calling it does not move the automaton).  ``illegal``
    maps ``(method, state)`` to ``(kind, advice)`` with ``kind`` either
    ``"before"`` (the enabling call has not happened yet — XDB028) or
    ``"after"`` (a terminal call already happened — XDB029).  Classes
    are matched *structurally*: every method in ``requires`` plus at
    least one of ``any_of`` (when non-empty) must exist on the class.
    """

    name: str
    object_kind: str  # human phrase for messages ("worker pool")
    states: tuple[str, ...]
    initial: str
    transitions: dict[tuple[str, str], str]
    illegal: dict[tuple[str, str], tuple[str, str]]
    neutral: frozenset[str] = frozenset()
    requires: frozenset[str] = frozenset()
    any_of: frozenset[str] = frozenset()

    @property
    def alphabet(self) -> frozenset[str]:
        return (
            frozenset(m for _s, m in self.transitions)
            | frozenset(m for m, _s in self.illegal)
            | self.neutral
        )

    def matches(self, methods: frozenset[str]) -> bool:
        if not self.requires <= methods:
            return False
        return not self.any_of or bool(self.any_of & methods)


#: Estimator methods that require a fitted model.
_ESTIMATOR_USES = (
    "predict",
    "predict_proba",
    "predict_log_proba",
    "decision_function",
    "transform",
    "score",
    "explain",
    "explain_batch",
    "explain_instance",
    "staged_raw_scores",
)

_CTX_NEUTRAL = frozenset({"__enter__", "__aenter__"})

PROTOCOLS: tuple[Protocol, ...] = (
    Protocol(
        name="pool",
        object_kind="worker pool",
        states=("open", "closed"),
        initial="open",
        transitions={
            ("open", "close"): "closed",
            ("closed", "close"): "closed",
        },
        illegal={
            ("map", "closed"): (
                "after",
                "close() already shut its workers down and unlinked "
                "the shared arenas",
            ),
            ("share", "closed"): (
                "after",
                "close() already unlinked the shared arenas",
            ),
            ("retrack_segments", "closed"): (
                "after",
                "close() already unlinked the shared arenas",
            ),
        },
        neutral=_CTX_NEUTRAL | {"n_shared_arrays"},
        requires=frozenset({"close"}),
        any_of=frozenset({"map", "share"}),
    ),
    Protocol(
        name="server",
        object_kind="explanation server",
        states=("new", "running", "stopped"),
        initial="new",
        transitions={
            ("new", "start"): "running",
            ("new", "__aenter__"): "running",
            ("running", "stop"): "stopped",
            ("running", "__aexit__"): "stopped",
        },
        illegal={
            ("submit", "new"): (
                "before",
                "call start() (or enter the async context) first",
            ),
            ("submit", "stopped"): (
                "after",
                "stop() already drained the batcher and failed "
                "pending requests",
            ),
        },
        neutral=frozenset({"__enter__"}),
        requires=frozenset({"start", "stop", "submit"}),
    ),
    Protocol(
        name="batcher",
        object_kind="micro-batcher",
        states=("accepting", "drained"),
        initial="accepting",
        transitions={
            ("accepting", "drain_nowait"): "drained",
            ("drained", "drain_nowait"): "drained",
        },
        illegal={
            ("put_nowait", "drained"): (
                "after",
                "drain_nowait() is the shutdown path; enqueueing "
                "after it strands the request forever",
            ),
        },
        neutral=_CTX_NEUTRAL | {"next_batch", "depth"},
        requires=frozenset({"put_nowait", "drain_nowait"}),
    ),
    Protocol(
        name="estimator",
        object_kind="estimator",
        states=("unfitted", "fitted"),
        initial="unfitted",
        transitions={
            ("unfitted", "fit"): "fitted",
            ("fitted", "fit"): "fitted",
            ("unfitted", "partial_fit"): "fitted",
            ("fitted", "partial_fit"): "fitted",
        },
        illegal={
            (use, "unfitted"): (
                "before",
                "call fit() before requesting predictions or "
                "explanations",
            )
            for use in _ESTIMATOR_USES
        },
        neutral=_CTX_NEUTRAL | {"get_params", "set_params"},
        requires=frozenset({"fit"}),
        any_of=frozenset(_ESTIMATOR_USES),
    ),
)

PROTOCOL_BY_NAME: dict[str, Protocol] = {p.name: p for p in PROTOCOLS}


# ---------------------------------------------------------------------------
# label algebra (the lattice the property tests exercise)
# ---------------------------------------------------------------------------


def state_label(proto: str, s_in: str, s_cur: str) -> str:
    return f"{proto}|{s_in}|{s_cur}"


def parse_label(label: str) -> tuple[str, str, str]:
    proto, s_in, s_cur = label.split("|")
    return proto, s_in, s_cur


def join_states(a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
    """The lattice join — pointwise set union, exactly what the map
    lattice of :func:`~xaidb.analysis.dataflow.solve_forward` applies;
    exported as a named function so the property tests can pin
    commutativity/associativity/idempotence against the real join."""
    return a | b


def step_label(label: str, method: str) -> str | None:
    """One DFA step on one label: ``None`` = refuted (method outside
    the protocol's alphabet), :data:`ESCAPED` is absorbing, a method
    with no transition entry for the current state self-loops."""
    proto_name, s_in, s_cur = parse_label(label)
    proto = PROTOCOL_BY_NAME.get(proto_name)
    if proto is None:
        return None
    if s_cur == ESCAPED:
        return label
    if method not in proto.alphabet:
        return None
    return state_label(
        proto_name, s_in, proto.transitions.get((s_cur, method), s_cur)
    )


def step_states(labels: frozenset[str], method: str) -> frozenset[str]:
    """The transfer of one method call on one object's label set —
    monotone in ``labels``, which the property tests verify."""
    out = set()
    for label in labels:
        stepped = step_label(label, method)
        if stepped is not None:
            out.add(stepped)
    return frozenset(out)


# ---------------------------------------------------------------------------
# summary-fact codecs (FunctionSummary stores plain string tuples)
# ---------------------------------------------------------------------------


def tracked_pairs(summary) -> frozenset[str]:
    """``{"param|proto", ...}`` a summary claims to track to exit."""
    return frozenset(summary.typestate_tracked)


def transition_relation(
    summary,
) -> dict[tuple[str, str, str], frozenset[str]]:
    """``(param, proto, s_in) -> out states`` (identity entries are
    omitted from the encoding and default at lookup time)."""
    relation: dict[tuple[str, str, str], frozenset[str]] = {}
    for entry in summary.typestate_transitions:
        try:
            param, proto, s_in, outs = entry.split("|")
        except ValueError:
            continue
        relation[(param, proto, s_in)] = frozenset(outs.split(","))
    return relation


def obligation_index(
    summary,
) -> dict[tuple[str, str, str], list[tuple[str, int, str]]]:
    """``(param, proto, s_in) -> [(method, line, kind), ...]``."""
    index: dict[tuple[str, str, str], list[tuple[str, int, str]]] = {}
    for entry in summary.typestate_obligations:
        try:
            param, proto, s_in, method, line, kind = entry.split("|")
            line_no = int(line)
        except ValueError:
            continue
        index.setdefault((param, proto, s_in), []).append(
            (method, line_no, kind)
        )
    return index


# ---------------------------------------------------------------------------
# structural protocol matching over the corpus class hierarchy
# ---------------------------------------------------------------------------


class ProtocolIndex:
    """Which corpus classes speak which protocols, plus constructor
    resolution (``WorkerPool(...)`` / package re-exports like
    ``xaidb.models.LogisticRegression``).  Built once per call graph
    and memoised on it."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        own_methods: dict[str, set[str]] = {}
        for qualname in graph.functions:
            owner, _, method = qualname.rpartition(".")
            if owner in graph.class_bases:
                own_methods.setdefault(owner, set()).add(method)
        self._matched: dict[str, tuple[Protocol, ...]] = {}
        for class_fq in graph.class_bases:
            methods: set[str] = set()
            stack = [class_fq]
            seen: set[str] = set()
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                methods |= own_methods.get(current, set())
                stack.extend(graph.class_bases.get(current, []))
            matched = tuple(
                p for p in PROTOCOLS if p.matches(frozenset(methods))
            )
            if matched:
                self._matched[class_fq] = matched

    def protocols_for_class(self, class_fq: str) -> tuple[Protocol, ...]:
        return self._matched.get(class_fq, ())

    def resolve_constructed(
        self, module: str, call: ast.Call
    ) -> tuple[str, tuple[Protocol, ...]]:
        """``(class_fq, protocols)`` when ``call`` constructs a
        protocol-matched corpus class, else ``("", ())``.  Handles one
        hop of package re-export (``xaidb.models.LogisticRegression``
        resolving through ``xaidb/models/__init__``'s from-imports)."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return "", ()
        candidates = []
        if "." not in dotted:
            candidates.append(f"{module}.{dotted}")
        head, _, tail = dotted.partition(".")
        target = self.graph.aliases.get(module, {}).get(head)
        if target is not None:
            candidates.append(f"{target}.{tail}" if tail else target)
        for class_fq in candidates:
            if class_fq in self._matched:
                return class_fq, self._matched[class_fq]
            # one re-export hop: pkg.Name -> pkg/__init__'s alias map
            package, _, name = class_fq.rpartition(".")
            for init_module in (package, f"{package}.__init__"):
                real = self.graph.aliases.get(init_module, {}).get(name)
                if real is not None and real in self._matched:
                    return real, self._matched[real]
        return "", ()


def protocol_index(graph: CallGraph) -> ProtocolIndex:
    index = getattr(graph, "_typestate_index", None)
    if index is None:
        index = ProtocolIndex(graph)
        graph._typestate_index = index
    return index


# ---------------------------------------------------------------------------
# the dataflow problem
# ---------------------------------------------------------------------------


@dataclass
class Violation:
    """One must-proven protocol violation inside a function body."""

    node: ast.AST  # the offending call (finding anchor)
    kind: str  # "before" | "after"
    proto: Protocol
    method: str
    origin: str  # "constructed at line N" / "parameter 'pool'"
    advice: str
    states: tuple[str, ...]
    #: Set for obligation-consumption firings: the callee frame and the
    #: line inside it where the illegal operation actually happens.
    callee: str = ""
    callee_line: int = 0


@dataclass
class TypestateFacts:
    """Pass F's caller-visible facts plus this frame's violations."""

    tracked: tuple[str, ...] = ()
    transitions: tuple[str, ...] = ()
    obligations: tuple[str, ...] = ()
    violations: list[Violation] = field(default_factory=list)


def _join_into(acc: State, other: State) -> None:
    for name, labels in other.items():
        existing = acc.get(name)
        acc[name] = labels if existing is None else existing | labels


class TypestateAnalysis(ValueTaint):
    """Forward typestate propagation for one function.

    Unlike the base :class:`ValueTaint`, expression evaluation here is
    *strict* — only identity-preserving positions (names, ternaries,
    walrus, ``await``, constructor calls, :data:`RETURNS_SELF` method
    chains) propagate object identities; everything else evaluates to
    the empty set, and any identity that surfaces in a non-propagating
    position is poisoned.  Call subexpressions are processed in Python
    evaluation order (receiver, then arguments, then the call's own
    effect), so ``Ridge().fit(X).predict(X)`` steps the automaton in
    the order the interpreter would.
    """

    def __init__(
        self,
        fnode: FunctionNode,
        graph: CallGraph,
        summaries: dict,
    ) -> None:
        self.fnode = fnode
        self.graph = graph
        self.summaries = summaries
        self.index = protocol_index(graph)
        self.module = fnode.module
        fn = fnode.node
        unsafe = names_read_in_nested_scopes(fn)
        for node in ast.walk(fn):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                unsafe.update(node.names)
        args = fn.args
        wide = {a.arg for a in (args.vararg, args.kwarg) if a is not None}
        entry: State = {}
        self._param_objids: dict[str, str] = {}
        #: Objects whose concrete class is known (constructor results,
        #: ``self`` of a protocol-matched class).  Their labels are
        #: facts, not hypotheses, so an out-of-alphabet method call
        #: escapes them instead of refuting them.
        self._known: set[str] = set()
        #: objid -> (anchor node or None, class_fq or param name)
        self.origins: dict[str, tuple[ast.AST | None, str]] = {}
        for name in function_params(fn):
            if name == "cls" or name in unsafe or name in wide:
                continue
            known = False
            if name == "self":
                if fnode.class_name is None:
                    continue
                protos = self.index.protocols_for_class(
                    f"{fnode.module}.{fnode.class_name}"
                )
                known = True
            else:
                protos = PROTOCOLS
            if not protos:
                continue
            objid = f"{OBJ_PREFIX}param:{name}"
            if known:
                self._known.add(objid)
            entry[name] = frozenset({objid})
            entry[PSEUDO_PREFIX + objid] = frozenset(
                state_label(p.name, s, s)
                for p in protos
                for s in p.states
            )
            self._param_objids[name] = objid
            self.origins[objid] = (None, name)
        super().__init__(entry=entry)
        self._unsafe_names = unsafe
        self._recording = False
        self._violations: list[Violation] = []
        self._obligations: set[str] = set()
        self._facts: TypestateFacts | None = None

    # -- strict expression semantics ---------------------------------

    def eval_expr(
        self, expr: ast.AST | None, state: State
    ) -> frozenset[str]:
        """Pure identity lookup (no effects) — only sound on state the
        transfers have already processed; the transfer itself goes
        through :meth:`_process_expr`."""
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.NamedExpr):
            return self.eval_expr(expr.value, state)
        if isinstance(expr, ast.Await):
            return self.eval_expr(expr.value, state)
        if isinstance(expr, ast.IfExp):
            return self.eval_expr(expr.body, state) | self.eval_expr(
                expr.orelse, state
            )
        return frozenset()

    # -- effectful expression processing (evaluation order) ----------

    def _process_expr(
        self, expr: ast.AST | None, state: State
    ) -> frozenset[str]:
        if expr is None or isinstance(expr, (ast.Constant,)):
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.NamedExpr):
            ids = self._process_expr(expr.value, state)
            self._bind_name(expr.target.id, ids, state)
            return ids
        if isinstance(expr, ast.Await):
            return self._process_expr(expr.value, state)
        if isinstance(expr, ast.IfExp):
            self._process_expr(expr.test, state)
            return self._process_expr(
                expr.body, state
            ) | self._process_expr(expr.orelse, state)
        if isinstance(expr, ast.Call):
            return self._process_call(expr, state)
        if isinstance(expr, ast.Attribute):
            # reading an attribute does not leak the *base* object —
            # unless the attribute is a protocol method (a bound-method
            # extraction defers a transition we cannot see)
            for objid in self._process_expr(expr.value, state):
                labels = state.get(PSEUDO_PREFIX + objid, frozenset())
                if any(
                    expr.attr
                    in PROTOCOL_BY_NAME[parse_label(label)[0]].alphabet
                    for label in labels
                ):
                    self._poison(objid, state)
            return frozenset()
        if isinstance(expr, ast.Subscript):
            self._process_expr(expr.value, state)
            self._process_expr(expr.slice, state)
            return frozenset()
        if isinstance(expr, ast.Lambda):
            return frozenset()  # body runs later, in its own scope
        # any other shape: children evaluate, and an identity surfacing
        # here (tuple/list display, boolop, yield, f-string, subscript
        # read of a container of pools, ...) is beyond tracking
        escaped: frozenset[str] = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                escaped |= self._process_expr(child, state)
        for objid in escaped:
            self._poison(objid, state)
        return frozenset()

    def _process_call(
        self, call: ast.Call, state: State
    ) -> frozenset[str]:
        func = call.func
        site = self.graph.callsites.get(id(call))
        candidates = site.candidates if site is not None else ()

        method: str | None = None
        recv_ids: frozenset[str] = frozenset()
        if isinstance(func, ast.Attribute):
            recv_ids = self._process_expr(func.value, state)
            method = func.attr
        elif not isinstance(func, ast.Name):
            for objid in self._process_expr(func, state):
                self._poison(objid, state)

        arg_ids: list[frozenset[str]] = []
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                for objid in self._process_expr(arg.value, state):
                    self._poison(objid, state)
                arg_ids.append(frozenset())
            else:
                arg_ids.append(self._process_expr(arg, state))
        kw_ids: list[frozenset[str]] = []
        for keyword in call.keywords:
            ids = self._process_expr(keyword.value, state)
            if keyword.arg is None:  # **splat
                for objid in ids:
                    self._poison(objid, state)
                ids = frozenset()
            kw_ids.append(ids)

        class_fq, protos = self.index.resolve_constructed(
            self.module, call
        )
        if protos:
            objid = f"{OBJ_PREFIX}{call.lineno}:{call.col_offset}"
            self._known.add(objid)
            # strong update: a loop re-executing the constructor makes
            # a *fresh* object, so the old labels do not carry over
            state[PSEUDO_PREFIX + objid] = frozenset(
                state_label(p.name, p.initial, p.initial)
                for p in protos
            )
            self.origins.setdefault(objid, (call, class_fq))
            for ids in arg_ids + kw_ids:
                for other in ids:  # identities fed to a constructor
                    self._poison(other, state)  # escape into the instance
            return frozenset({objid})

        if method is not None and recv_ids:
            if self._recording:
                self._record_method(call, method, recv_ids, state)
            for objid in recv_ids:
                self._apply_method(objid, method, state, call=call)
            self._route_args(call, site, candidates, arg_ids, kw_ids, state)
            return recv_ids if method in RETURNS_SELF else frozenset()

        self._route_args(call, site, candidates, arg_ids, kw_ids, state)
        return frozenset()

    # -- object-level operations -------------------------------------

    def _poison(self, objid: str, state: State) -> None:
        pseudo = PSEUDO_PREFIX + objid
        labels = state.get(pseudo)
        if not labels:
            return
        state[pseudo] = frozenset(
            state_label(*parse_label(label)[:2], ESCAPED)
            for label in labels
        )

    def _apply_method(
        self,
        objid: str,
        method: str,
        state: State,
        call: ast.Call | None = None,
    ) -> None:
        pseudo = PSEUDO_PREFIX + objid
        labels = state.get(pseudo)
        if not labels:
            return
        known = objid in self._known
        out: set[str] = set()
        for label in labels:
            proto_name, s_in, s_cur = parse_label(label)
            proto = PROTOCOL_BY_NAME.get(proto_name)
            if proto is None:
                continue
            if s_cur == ESCAPED:
                out.add(label)
                continue
            if method in proto.alphabet:
                out.add(
                    state_label(
                        proto_name,
                        s_in,
                        proto.transitions.get((s_cur, method), s_cur),
                    )
                )
                continue
            if not known:
                continue  # hypothesis refuted: the class lacks `method`
            # the class genuinely has this method; its body may move
            # the automaton, so consult its summary relation for self
            outs = self._receiver_relation(call, proto_name, s_cur)
            if outs is None:
                out.add(state_label(proto_name, s_in, ESCAPED))
            else:
                out.update(
                    state_label(proto_name, s_in, s) for s in outs
                )
        if out:
            state[pseudo] = frozenset(out)
        else:
            state.pop(pseudo, None)  # every protocol refuted

    def _receiver_relation(
        self, call: ast.Call | None, proto: str, s_cur: str
    ) -> frozenset[str] | None:
        """What a resolved out-of-alphabet method does to its receiver
        (``None`` = unprovable, the caller escapes the label)."""
        if call is None:
            return None
        site = self.graph.callsites.get(id(call))
        if site is None or not site.candidates:
            return None
        outs: set[str] = set()
        for qualname in site.candidates:
            summary = self.summaries.get(qualname)
            if (
                summary is None
                or f"self|{proto}" not in tracked_pairs(summary)
            ):
                return None
            outs |= transition_relation(summary).get(
                ("self", proto, s_cur), frozenset({s_cur})
            )
        return frozenset(outs)

    def _bind_name(
        self, name: str, ids: frozenset[str], state: State
    ) -> None:
        if name in self._unsafe_names:
            # a nested scope reads this name: the binding escapes
            for objid in ids:
                self._poison(objid, state)
            ids = frozenset()
        state[name] = ids

    def _bind_target(
        self,
        target: ast.AST,
        ids: frozenset[str],
        state: State,
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, ids, state)
            return
        # attribute/subscript stores and unpacking put the object where
        # other frames (or other elements) can reach it
        for objid in ids:
            self._poison(objid, state)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, frozenset(), state)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, frozenset(), state)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._process_expr(target.value, state)
            if isinstance(target, ast.Subscript):
                self._process_expr(target.slice, state)

    # -- callsite routing through callee summaries -------------------

    def _route_args(
        self,
        call: ast.Call,
        site,
        candidates: tuple[str, ...],
        arg_ids: list[frozenset[str]],
        kw_ids: list[frozenset[str]],
        state: State,
    ) -> None:
        """Push tracked identities through a callee's transition
        relation, or poison them when nothing is provable about the
        callee.  The receiver of a bound method call is *not* routed —
        its DFA step already happened in :meth:`_process_call`."""
        slots: list[tuple[int | str, frozenset[str]]] = []
        for position, ids in enumerate(arg_ids):
            if ids:
                slots.append((position, ids))
        kw_index = 0
        for keyword in call.keywords:
            if keyword.arg is not None and kw_ids[kw_index]:
                slots.append((keyword.arg, kw_ids[kw_index]))
            kw_index += 1
        if not slots:
            return
        summaries = [self.summaries.get(q) for q in candidates]
        if not candidates or any(s is None for s in summaries):
            for _slot, ids in slots:
                for objid in ids:
                    self._poison(objid, state)
            return
        for slot, ids in slots:
            per_candidate = [
                (summary, _param_for_slot(summary, site, slot))
                for summary in summaries
            ]
            for objid in ids:
                if self._recording:
                    self._consume_obligations(
                        call, objid, per_candidate, state
                    )
                self._apply_relation(objid, per_candidate, state)

    def _apply_relation(
        self, objid: str, per_candidate, state: State
    ) -> None:
        pseudo = PSEUDO_PREFIX + objid
        labels = state.get(pseudo)
        if not labels:
            return
        out: set[str] = set()
        for label in labels:
            proto, s_in, s_cur = parse_label(label)
            if s_cur == ESCAPED:
                out.add(label)
                continue
            states: set[str] = set()
            poisoned = False
            for summary, param in per_candidate:
                if (
                    param is None
                    or f"{param}|{proto}" not in tracked_pairs(summary)
                ):
                    poisoned = True
                    break
                relation = transition_relation(summary)
                states |= relation.get(
                    (param, proto, s_cur), frozenset({s_cur})
                )
            if poisoned:
                out.add(state_label(proto, s_in, ESCAPED))
            else:
                out.update(state_label(proto, s_in, s) for s in states)
        state[pseudo] = frozenset(out)

    # -- transfer ----------------------------------------------------

    def transfer(self, item: ast.AST, state: State) -> None:
        if isinstance(item, ast.Assign):
            ids = self._process_expr(item.value, state)
            for target in item.targets:
                self._bind_target(target, ids, state)
        elif isinstance(item, ast.AnnAssign):
            if item.value is not None:
                ids = self._process_expr(item.value, state)
                self._bind_target(item.target, ids, state)
        elif isinstance(item, ast.AugAssign):
            for objid in self._process_expr(item.value, state):
                self._poison(objid, state)
            if isinstance(item.target, ast.Name):
                ids = state.get(item.target.id, frozenset())
                for objid in ids:
                    self._poison(objid, state)
                self._bind_name(item.target.id, frozenset(), state)
        elif isinstance(item, (ast.For, ast.AsyncFor)):
            self._process_expr(item.iter, state)
            self._bind_target(item.target, frozenset(), state)
        elif isinstance(item, (ast.With, ast.AsyncWith)):
            enter = (
                "__aenter__"
                if isinstance(item, ast.AsyncWith)
                else "__enter__"
            )
            for with_item in item.items:
                ids = self._process_expr(with_item.context_expr, state)
                for objid in ids:
                    self._apply_method(objid, enter, state)
                if with_item.optional_vars is not None:
                    self._bind_target(with_item.optional_vars, ids, state)
        elif isinstance(
            item,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.Import,
                ast.ImportFrom,
            ),
        ):
            for root in item_exprs(item):
                self._process_expr(root, state)
            for name, _node in _item_bound_names(item):
                state[name] = frozenset()
        elif isinstance(item, ast.ExceptHandler):
            if item.name:
                state[item.name] = frozenset()
        elif isinstance(item, ast.Delete):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
                else:
                    self._process_expr(target, state)
        else:
            # If/While tests, Expr statements, Return/Raise/Assert
            # values, Match subjects: evaluate for effects; the root
            # value position itself does not leak the identity
            for root in item_exprs(item):
                self._process_expr(root, state)

    # -- recording: violations and obligation export/consumption -----

    def _record_method(
        self,
        call: ast.Call,
        method: str,
        recv_ids: frozenset[str],
        state: State,
    ) -> None:
        for objid in recv_ids:
            labels = state.get(PSEUDO_PREFIX + objid)
            if not labels:
                continue
            is_param = objid.startswith(OBJ_PREFIX + "param:")
            by_group: dict[tuple[str, str], set[str]] = {}
            for label in labels:
                proto, s_in, s_cur = parse_label(label)
                by_group.setdefault((proto, s_in), set()).add(s_cur)
            by_proto: dict[str, set[str]] = {}
            for (proto, _s_in), current in by_group.items():
                by_proto.setdefault(proto, set()).update(current)
            if is_param:
                # conditional on the entry state: export obligations
                param = objid[len(OBJ_PREFIX + "param:"):]
                for (proto_name, s_in), current in by_group.items():
                    proto = PROTOCOL_BY_NAME[proto_name]
                    verdicts = [
                        proto.illegal.get((method, s)) for s in current
                    ]
                    if ESCAPED in current or not all(verdicts):
                        continue
                    kinds = {kind for kind, _advice in verdicts}
                    if len(kinds) == 1:
                        self._obligations.add(
                            f"{param}|{proto_name}|{s_in}|{method}|"
                            f"{call.lineno}|{kinds.pop()}"
                        )
                continue
            for proto_name, current in by_proto.items():
                proto = PROTOCOL_BY_NAME[proto_name]
                verdicts = [
                    proto.illegal.get((method, s)) for s in current
                ]
                if ESCAPED in current or not all(verdicts):
                    continue
                kinds = {kind for kind, _advice in verdicts}
                if len(kinds) != 1:
                    continue  # mixed before/after: no single story
                self._violations.append(
                    Violation(
                        node=call,
                        kind=kinds.pop(),
                        proto=proto,
                        method=method,
                        origin=self._origin_of(objid),
                        advice=verdicts[0][1],
                        states=tuple(sorted(current)),
                    )
                )

    def _consume_obligations(
        self, call: ast.Call, objid: str, per_candidate, state: State
    ) -> None:
        labels = state.get(PSEUDO_PREFIX + objid)
        if not labels:
            return
        is_param = objid.startswith(OBJ_PREFIX + "param:")
        indexes = [
            (param, obligation_index(summary))
            for summary, param in per_candidate
            if param is not None
        ]
        if len(indexes) != len(per_candidate) or not indexes:
            return

        def matches(proto: str, s_cur: str):
            """The obligation every candidate proves for this state
            (``None`` when any candidate has none)."""
            found: tuple[str, int, str] | None = None
            for param, index in indexes:
                entries = index.get((param, proto, s_cur))
                if not entries:
                    return None
                found = found or entries[0]
            return found

        by_group: dict[tuple[str, str], set[str]] = {}
        for label in labels:
            proto, s_in, s_cur = parse_label(label)
            by_group.setdefault((proto, s_in), set()).add(s_cur)
        if is_param:
            param = objid[len(OBJ_PREFIX + "param:"):]
            for (proto, s_in), current in by_group.items():
                if ESCAPED in current:
                    continue
                found = [matches(proto, s) for s in sorted(current)]
                if not all(found):
                    continue
                kinds = {kind for _m, _l, kind in found}
                if len(kinds) == 1:
                    method, _line, kind = found[0]
                    self._obligations.add(
                        f"{param}|{proto}|{s_in}|{method}|"
                        f"{call.lineno}|{kinds.pop()}"
                    )
            return
        by_proto: dict[str, set[str]] = {}
        for (proto, _s_in), current in by_group.items():
            by_proto.setdefault(proto, set()).update(current)
        for proto_name, current in by_proto.items():
            if ESCAPED in current:
                continue
            found = [matches(proto_name, s) for s in sorted(current)]
            if not all(found):
                continue
            kinds = {kind for _m, _l, kind in found}
            if len(kinds) != 1:
                continue
            method, line, kind = found[0]
            proto = PROTOCOL_BY_NAME[proto_name]
            advice_key = next(
                (
                    (method, s)
                    for s in sorted(current)
                    if (method, s) in proto.illegal
                ),
                None,
            )
            advice = (
                proto.illegal[advice_key][1]
                if advice_key is not None
                else "the callee performs an operation this state forbids"
            )
            callee = next(
                s.qualname for s, _p in per_candidate if _p is not None
            )
            self._violations.append(
                Violation(
                    node=call,
                    kind=kind,
                    proto=proto,
                    method=method,
                    origin=self._origin_of(objid),
                    advice=advice,
                    states=tuple(sorted(current)),
                    callee=callee,
                    callee_line=line,
                )
            )

    def _origin_of(self, objid: str) -> str:
        anchor, detail = self.origins.get(objid, (None, ""))
        if objid.startswith(OBJ_PREFIX + "param:"):
            return f"parameter '{detail}'"
        class_name = detail.rpartition(".")[2] or "object"
        line = getattr(anchor, "lineno", "?")
        return f"{class_name} constructed at line {line}"

    # -- facts: one recording replay + exit-state export -------------

    def facts(
        self, cfg: CFG, in_states: dict[int, State]
    ) -> TypestateFacts:
        if self._facts is not None:
            return self._facts
        self._recording = True
        self._violations = []
        self._obligations = set()
        exits: State = {}
        for block in cfg.reachable():
            state = dict(in_states.get(block.id, {}))
            for item in block.items:
                self.transfer(item, state)
                if isinstance(item, ast.Return):
                    _join_into(exits, state)
            if not block.succs:
                _join_into(exits, state)
        self._recording = False
        tracked: list[str] = []
        transitions: list[str] = []
        for name, objid in sorted(self._param_objids.items()):
            labels = exits.get(PSEUDO_PREFIX + objid, frozenset())
            by_proto: dict[str, dict[str, set[str]]] = {}
            for label in labels:
                proto, s_in, s_cur = parse_label(label)
                by_proto.setdefault(proto, {}).setdefault(
                    s_in, set()
                ).add(s_cur)
            for proto, groups in sorted(by_proto.items()):
                if any(
                    ESCAPED in outs for outs in groups.values()
                ):
                    continue
                tracked.append(f"{name}|{proto}")
                for s_in, outs in sorted(groups.items()):
                    if outs != {s_in}:
                        transitions.append(
                            f"{name}|{proto}|{s_in}|"
                            + ",".join(sorted(outs))
                        )
        self._facts = TypestateFacts(
            tracked=tuple(tracked),
            transitions=tuple(transitions),
            obligations=tuple(sorted(self._obligations)),
            violations=self._violations,
        )
        return self._facts


def _item_bound_names(item: ast.AST) -> list[tuple[str, ast.AST]]:
    from xaidb.analysis.dataflow import item_defs

    return item_defs(item)


def _param_for_slot(summary, site, slot) -> str | None:
    """The callee parameter a positional index / keyword name maps to
    (mirrors :func:`~xaidb.analysis.summaries.map_arguments`, receiver
    binding included, ``None`` past a ``*args`` boundary)."""
    params = list(summary.params)
    if isinstance(slot, str):
        return slot if slot in params else None
    offset = 0
    if params and params[0] in ("self", "cls"):
        if site is not None and site.binds_receiver:
            offset = 1
        elif summary.qualname.endswith(".__init__"):
            call = site.call if site is not None else None
            name = ""
            if call is not None:
                func = call.func
                if isinstance(func, ast.Attribute):
                    name = func.attr
                elif isinstance(func, ast.Name):
                    name = func.id
            if name != "__init__":
                offset = 1
        positional = params[offset:]
    else:
        positional = params
    if slot < len(positional):
        return positional[slot]
    return None
