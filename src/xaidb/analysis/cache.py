"""Commit-speed incremental scanning: the xailint result cache.

A full repo scan parses ~230 files and runs several fixpoint analyses
per function; on a pre-commit hook that cost lands on every keystroke-
to-commit cycle.  Almost all of it is redundant — file rules are pure
functions of one file's bytes and the rule set — so the cache persists,
per file, the raw (pre-suppression) findings and the parsed
suppression entries, keyed by:

- the SHA-256 of the file's bytes (content, not mtime: builds and
  checkouts must not fake invalidation either way), and
- a *rule-set digest* covering the active rule ids **and the source of
  the analysis package itself**, so editing any rule, the engine, or
  this file invalidates everything — a linter must never serve stale
  verdicts of an older self.

Cross-module (project) rules see the whole corpus, so their findings
are cached under a corpus digest (every file's path + digest) and
invalidated wholesale by any file change, as are all rules' results on
a rule-set change.  Suppression filtering and the XDB012 accounting
run fresh on every scan from the cached entries — cheap, and it keeps
cached and uncached runs finding-for-finding identical.

The on-disk format is one JSON document (``.xailint_cache.json`` by
default, CLI flag ``--no-cache`` to bypass); an unreadable or
version-skewed cache is discarded, never trusted.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from xaidb.analysis.findings import Finding
from xaidb.analysis.suppressions import Suppression

__all__ = ["LintCache", "ruleset_digest", "file_digest", "CACHE_VERSION"]

#: Bumped whenever the cached document schema changes shape — v3 added
#: numeric summary fields (``return_ranges``/``param_preconditions``),
#: v4 added the typestate (pass F) and may-raise (pass G) fields
#: (``typestate_*``/``raises_named``/``raises_top``).
CACHE_VERSION = 4


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def ruleset_digest(rule_ids: list[str]) -> str:
    """Digest of the active rule ids plus the analysis package source.

    Hashing the package's own files means any change to a rule, the
    engine, the dataflow layer or the cache logic invalidates every
    cached verdict — content-addressed, so a mere ``touch`` does not.
    """
    hasher = hashlib.sha256()
    hasher.update(",".join(sorted(rule_ids)).encode())
    package_dir = Path(__file__).resolve().parent
    for path in sorted(package_dir.rglob("*.py")):
        hasher.update(str(path.relative_to(package_dir)).encode())
        try:
            hasher.update(path.read_bytes())
        except OSError:  # unreadable rule source: treat as changed
            hasher.update(b"?")
    return hasher.hexdigest()


def _finding_to_json(finding: Finding) -> dict:
    return asdict(finding)


def _finding_from_json(data: dict) -> Finding:
    return Finding(
        path=data["path"],
        line=int(data["line"]),
        col=int(data["col"]),
        rule_id=data["rule_id"],
        symbol=data["symbol"],
        message=data["message"],
        severity=data.get("severity", "error"),
    )


class LintCache:
    """Content-hash-keyed store of per-file and project-rule results."""

    def __init__(self, path: Path, active_ruleset: str) -> None:
        self.path = Path(path)
        self.ruleset = active_ruleset
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict] = {}
        self._project: dict | None = None
        self._summaries: dict[str, list] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(document, dict):
            return
        if document.get("version") != CACHE_VERSION:
            return
        if document.get("ruleset") != self.ruleset:
            # rule set or analysis source changed: wholesale invalidation
            self._dirty = True
            return
        files = document.get("files")
        if isinstance(files, dict):
            self._files = files
        project = document.get("project")
        if isinstance(project, dict):
            self._project = project
        summaries = document.get("summaries")
        if isinstance(summaries, dict):
            self._summaries = {
                key: value
                for key, value in summaries.items()
                if isinstance(value, list)
            }

    # -- per-file results --------------------------------------------

    def lookup_file(
        self, relpath: str, digest: str
    ) -> tuple[list[Finding], list[Suppression]] | None:
        """Cached (raw file-rule findings, suppression entries) for
        ``relpath`` at ``digest``, or ``None`` on a miss."""
        entry = self._files.get(relpath)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            findings = [
                _finding_from_json(f) for f in entry["findings"]
            ]
            suppressions = [
                Suppression.from_dict(s) for s in entry["suppressions"]
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, suppressions

    def store_file(
        self,
        relpath: str,
        digest: str,
        findings: list[Finding],
        suppressions: list[Suppression],
    ) -> None:
        self._files[relpath] = {
            "digest": digest,
            "findings": [_finding_to_json(f) for f in findings],
            "suppressions": [s.to_dict() for s in suppressions],
        }
        self._dirty = True

    def prune(self, keep_relpaths: set[str]) -> None:
        """Drop entries for files no longer in the scan set."""
        stale = set(self._files) - keep_relpaths
        for relpath in stale:
            del self._files[relpath]
            self._dirty = True

    # -- project-rule results ----------------------------------------

    def corpus_digest(self, files: list[tuple[str, str]]) -> str:
        """Digest of the whole corpus: any file change invalidates the
        cross-module results wholesale."""
        hasher = hashlib.sha256()
        for relpath, digest in sorted(files):
            hasher.update(relpath.encode())
            hasher.update(digest.encode())
        return hasher.hexdigest()

    def lookup_project(self, corpus: str) -> list[Finding] | None:
        if self._project is None or self._project.get("corpus") != corpus:
            return None
        try:
            return [
                _finding_from_json(f) for f in self._project["findings"]
            ]
        except (KeyError, TypeError, ValueError):
            return None

    def store_project(
        self, corpus: str, findings: list[Finding]
    ) -> None:
        self._project = {
            "corpus": corpus,
            "findings": [_finding_to_json(f) for f in findings],
        }
        self._dirty = True

    # -- interprocedural function summaries --------------------------

    def lookup_summaries(self, scc_key: str) -> list[dict] | None:
        """Cached summary dicts for the SCC with Merkle key
        ``scc_key``, or ``None`` (callers validate the payload)."""
        entry = self._summaries.get(scc_key)
        if entry is None or not all(
            isinstance(item, dict) for item in entry
        ):
            return None
        return entry

    def store_summaries(
        self, scc_key: str, summaries: list[dict]
    ) -> None:
        self._summaries[scc_key] = summaries
        self._dirty = True

    def prune_summaries(self, keep_keys: set[str]) -> None:
        """Drop summary entries whose SCC key was not used this run
        (stale content-addressed entries otherwise accumulate across
        edits forever)."""
        stale = set(self._summaries) - keep_keys
        for key in stale:
            del self._summaries[key]
            self._dirty = True

    # -- persistence -------------------------------------------------

    def save(self) -> None:
        if not self._dirty:
            return
        document = {
            "version": CACHE_VERSION,
            "ruleset": self.ruleset,
            "files": self._files,
            "project": self._project,
            "summaries": self._summaries,
        }
        try:
            self.path.write_text(
                json.dumps(document, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            return  # a read-only checkout still lints, just cold
        self._dirty = False
