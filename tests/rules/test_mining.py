import pytest

from xaidb.data import TransactionDatabase, make_transactions
from xaidb.exceptions import ValidationError
from xaidb.rules import apriori, association_rules, fp_growth


@pytest.fixture()
def toy_db():
    return TransactionDatabase(
        [
            {"bread", "milk"},
            {"bread", "diapers", "beer", "eggs"},
            {"milk", "diapers", "beer", "cola"},
            {"bread", "milk", "diapers", "beer"},
            {"bread", "milk", "diapers", "cola"},
        ]
    )


class TestApriori:
    def test_textbook_example(self, toy_db):
        frequent = apriori(toy_db, 0.6)
        # classic Han & Kamber example results at support 3/5
        assert frequent[frozenset({"bread"})] == 4
        assert frequent[frozenset({"milk"})] == 4
        assert frequent[frozenset({"diapers"})] == 4
        assert frequent[frozenset({"beer"})] == 3
        assert frequent[frozenset({"diapers", "beer"})] == 3
        assert frozenset({"beer", "milk"}) not in frequent  # support 2

    def test_downward_closure(self, toy_db):
        frequent = apriori(toy_db, 0.4)
        for itemset in frequent:
            for item in itemset:
                assert itemset - {item} == frozenset() or (
                    itemset - {item} in frequent
                )

    def test_max_length(self, toy_db):
        frequent = apriori(toy_db, 0.4, max_length=1)
        assert all(len(itemset) == 1 for itemset in frequent)

    def test_support_one_returns_universal_items(self, toy_db):
        frequent = apriori(toy_db, 1.0)
        assert frequent == {}

    def test_empty_db_rejected(self):
        with pytest.raises(ValidationError):
            apriori(TransactionDatabase([]), 0.5)

    def test_support_out_of_range(self, toy_db):
        with pytest.raises(ValidationError):
            apriori(toy_db, 1.5)


class TestFpGrowth:
    def test_agrees_with_apriori(self, toy_db):
        for support in (0.2, 0.4, 0.6, 0.8):
            assert fp_growth(toy_db, support) == apriori(toy_db, support)

    def test_agrees_on_synthetic_workload(self):
        db = make_transactions(300, n_items=25, random_state=0)
        assert fp_growth(db, 0.15) == apriori(db, 0.15)

    def test_max_length(self, toy_db):
        frequent = fp_growth(toy_db, 0.4, max_length=2)
        assert max(len(itemset) for itemset in frequent) <= 2
        reference = {
            k: v for k, v in apriori(toy_db, 0.4).items() if len(k) <= 2
        }
        assert frequent == reference

    def test_counts_are_supports(self, toy_db):
        frequent = fp_growth(toy_db, 0.4)
        for itemset, count in frequent.items():
            assert count == toy_db.support_count(itemset)


class TestAssociationRules:
    def test_confidence_and_lift(self, toy_db):
        frequent = apriori(toy_db, 0.4)
        rules = association_rules(frequent, len(toy_db), min_confidence=0.7)
        by_key = {
            (rule.antecedent, rule.consequent): rule for rule in rules
        }
        rule = by_key[(frozenset({"beer"}), frozenset({"diapers"}))]
        assert rule.confidence == pytest.approx(1.0)
        assert rule.lift == pytest.approx(1.0 / (4 / 5))
        assert rule.support == pytest.approx(3 / 5)

    def test_min_confidence_filters(self, toy_db):
        frequent = apriori(toy_db, 0.4)
        strict = association_rules(frequent, len(toy_db), min_confidence=0.95)
        loose = association_rules(frequent, len(toy_db), min_confidence=0.5)
        assert len(strict) < len(loose)
        assert all(rule.confidence >= 0.95 for rule in strict)

    def test_sorted_by_confidence(self, toy_db):
        frequent = apriori(toy_db, 0.4)
        rules = association_rules(frequent, len(toy_db), min_confidence=0.5)
        confidences = [rule.confidence for rule in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_rejects_bad_args(self, toy_db):
        frequent = apriori(toy_db, 0.4)
        with pytest.raises(ValidationError):
            association_rules(frequent, 0)
