"""Clean fixture for XDB022: every acquisition either releases in a
finally block or hands the segment to a long-lived owner."""

import numpy as np
from multiprocessing import shared_memory

__all__ = ["checksum_block", "stage_into"]

_ARENA = {}


def checksum_block(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        view = np.ndarray((nbytes,), dtype=np.uint8, buffer=segment.buf)
        return float(view.sum())
    finally:
        segment.close()  # every way out releases the mapping
        segment.unlink()


def stage_into(name, data):
    segment = shared_memory.SharedMemory(create=True, size=data.nbytes)
    _ARENA[name] = segment  # ownership transfer: the arena releases later
    return name
