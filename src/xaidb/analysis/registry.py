"""Rule registry for xailint.

Rules come in two flavours:

- :class:`FileRule` — sees one parsed module at a time (an AST plus its
  source context) and yields findings local to that file;
- :class:`ProjectRule` — runs after every file has been parsed and sees
  the whole corpus, for cross-module invariants (e.g. "every concrete
  explainer subclasses the base interface").

Concrete rules self-register at import time via :func:`register`; the
engine asks :func:`all_rules` for the active set.  Registration keys on
the rule id, so re-importing a rule module is idempotent but two
*different* rules claiming one id is a programming error.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Type

from xaidb.analysis.findings import Finding

__all__ = [
    "FileContext",
    "ProjectContext",
    "Rule",
    "FileRule",
    "ProjectRule",
    "register",
    "all_rules",
    "rules_by_id",
]


@dataclass
class FileContext:
    """Everything a per-file rule may need about one module."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    #: True when the module lives inside the ``xaidb`` package proper
    #: (``src/xaidb/...``), where API-surface rules apply.
    in_xaidb_package: bool = False
    #: Dotted module name best-effort derived from the path
    #: (``xaidb.explainers.lime``); empty for scripts.
    module_name: str = ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` in this file."""
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule.rule_id,
            symbol=rule.symbol,
            message=message,
            severity=rule.severity,
        )


@dataclass
class ProjectContext:
    """The whole parsed corpus, for cross-module rules."""

    files: list[FileContext] = field(default_factory=list)
    #: relpath -> content digest, for the interprocedural summary cache
    #: (empty when the engine runs cache-less, e.g. ``lint_source``).
    file_digests: dict[str, str] = field(default_factory=dict)
    #: The scan's :class:`~xaidb.analysis.cache.LintCache`, or ``None``.
    summary_cache: object | None = None
    _interproc: object | None = field(
        default=None, init=False, repr=False
    )

    def modules_under(self, package_prefix: str) -> list[FileContext]:
        """File contexts whose dotted name starts with ``package_prefix``."""
        return [
            ctx
            for ctx in self.files
            if ctx.module_name == package_prefix
            or ctx.module_name.startswith(package_prefix + ".")
        ]

    def interproc(self):
        """The corpus's :class:`~xaidb.analysis.summaries.\
InterprocAnalysis`, built on first use and shared by every
        interprocedural rule in the scan."""
        if self._interproc is None:
            from xaidb.analysis.summaries import InterprocAnalysis

            self._interproc = InterprocAnalysis(
                self.files,
                file_digests=self.file_digests,
                cache=self.summary_cache,
            )
        return self._interproc

    def interproc_if_built(self):
        """The shared analysis if some rule already forced it."""
        return self._interproc


class Rule:
    """Base class carrying rule metadata; never registered directly."""

    #: Stable id, e.g. ``"XDB002"``.  Used in reports and suppressions.
    rule_id: str = ""
    #: Kebab-case short name, e.g. ``"unseeded-randomness"``.
    symbol: str = ""
    #: One-line description shown by ``xailint --list-rules``.
    description: str = ""
    severity: str = "error"


class FileRule(Rule):
    """A rule evaluated once per parsed module."""

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated once over the whole corpus."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding an instance of ``rule_cls`` to the registry."""
    rule = rule_cls()
    if not rule.rule_id or not rule.symbol:
        raise ValueError(
            f"{rule_cls.__name__} must define rule_id and symbol"
        )
    existing = _REGISTRY.get(rule.rule_id)
    if existing is not None and type(existing) is not rule_cls:
        raise ValueError(
            f"duplicate rule id {rule.rule_id}: "
            f"{type(existing).__name__} vs {rule_cls.__name__}"
        )
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules(only: Iterable[str] | None = None) -> list[Rule]:
    """The active rule set, sorted by id.

    Importing :mod:`xaidb.analysis.rules` (done lazily here) triggers
    registration of the built-in rule pack.

    Parameters
    ----------
    only:
        Optional whitelist of rule ids; unknown ids raise ``ValueError``
        so typos in ``--rules`` fail loudly.
    """
    import xaidb.analysis.rules  # noqa: F401  (registration side effect)

    rules = [_REGISTRY[rid] for rid in sorted(_REGISTRY)]
    if only is None:
        return rules
    wanted = set(only)
    known = {r.rule_id for r in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [r for r in rules if r.rule_id in wanted]


def rules_by_id() -> dict[str, Rule]:
    """Mapping of rule id to rule instance for the full registry."""
    return {rule.rule_id: rule for rule in all_rules()}
