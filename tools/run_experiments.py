"""Regenerate the experiment tables (E1..E20, A1..A6) outside of CI.

Thin wrapper over pytest so the tables print directly to the terminal:

    python tools/run_experiments.py            # everything
    python tools/run_experiments.py e04 a05    # selected experiments
"""

from __future__ import annotations

import pathlib
import subprocess
import sys


def main(argv: list[str]) -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    targets: list[str]
    if argv:
        targets = []
        for token in argv:
            matches = sorted(root.glob(f"benchmarks/bench_{token}*.py"))
            if not matches:
                print(f"no benchmark matches {token!r}", file=sys.stderr)
                return 2
            targets.extend(str(m) for m in matches)
    else:
        targets = ["benchmarks/"]
    command = [
        sys.executable,
        "-m",
        "pytest",
        *targets,
        "--benchmark-only",
        "-s",
        "-q",
        "--benchmark-disable-gc",
    ]
    return subprocess.call(command, cwd=root)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
