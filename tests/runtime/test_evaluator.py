"""GameRuntime invariants: memoisation is invisible in the values,
chunking is invisible in the values, and the ledger adds up."""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers.shapley.games import MarginalImputationGame
from xaidb.runtime import EvalStats, GameRuntime, RuntimeConfig

D = 6


def _game():
    rng = np.random.default_rng(3)
    weights = rng.normal(size=D)
    instance = rng.normal(size=D)
    background = rng.normal(size=(11, D))
    # row-independent linear model: chunk boundaries cannot shift sums
    return MarginalImputationGame(
        lambda X: X @ weights, instance, background
    )


def _mask_batch(n: int, duplicates: bool = True) -> np.ndarray:
    rng = np.random.default_rng(0)
    masks = rng.random((n, D)) < 0.5
    if duplicates:
        masks[n // 2 :] = masks[: n - n // 2]  # force repeated masks
    return masks


def test_cache_on_equals_cache_off_bitwise():
    masks = _mask_batch(24)
    cached = GameRuntime(_game(), config=RuntimeConfig(cache=True))
    uncached = GameRuntime(_game(), config=RuntimeConfig(cache=False))
    assert np.array_equal(
        cached.values_batch(masks), uncached.values_batch(masks)
    )
    # and a second pass over the same masks is served entirely from cache
    again = cached.values_batch(masks)
    assert np.array_equal(again, uncached.values_batch(masks))


def test_chunked_equals_unchunked_bitwise():
    masks = _mask_batch(24, duplicates=False)
    one_shot = GameRuntime(
        _game(), config=RuntimeConfig(cache=False, max_batch_rows=None)
    )
    chunked = GameRuntime(
        _game(), config=RuntimeConfig(cache=False, max_batch_rows=13)
    )
    assert np.array_equal(
        one_shot.values_batch(masks), chunked.values_batch(masks)
    )


def test_chunking_bounds_peak_rows_per_model_call():
    peak = {"rows": 0}
    rng = np.random.default_rng(3)
    weights = rng.normal(size=D)

    def predict(X):
        peak["rows"] = max(peak["rows"], X.shape[0])
        return X @ weights

    game = MarginalImputationGame(
        predict, rng.normal(size=D), rng.normal(size=(11, D))
    )
    max_batch_rows = 44  # 4 coalitions x 11 background rows
    runtime = GameRuntime(
        game, config=RuntimeConfig(max_batch_rows=max_batch_rows)
    )
    runtime.values_batch(_mask_batch(24, duplicates=False))
    assert 0 < peak["rows"] <= max_batch_rows


def test_ledger_accounts_for_dedupe_and_hits():
    masks = _mask_batch(20)  # 20 rows, half of them duplicated
    n_unique = len({m.tobytes() for m in masks})
    runtime = GameRuntime(_game())
    runtime.values_batch(masks)
    assert runtime.stats.n_coalition_evals == n_unique
    assert runtime.n_cached == n_unique
    assert runtime.stats.cache_misses == n_unique
    assert runtime.stats.cache_hits == 20 - n_unique

    before = runtime.stats.copy()
    runtime.values_batch(masks)  # fully warm
    delta = runtime.stats.since(before)
    assert delta.n_coalition_evals == 0
    assert delta.cache_hits == 20
    assert delta.n_model_evals == 0


def test_scalar_value_path_is_cached_and_counted():
    runtime = GameRuntime(_game())
    first = runtime.value([0, 2])
    second = runtime.value([0, 2])
    assert first == second
    assert runtime.stats.cache_hits == 1
    assert runtime.stats.cache_misses == 1
    assert runtime.grand_value() == runtime.value(range(D))
    assert runtime.empty_value() == runtime.value(())


def test_shared_external_stats_ledger():
    stats = EvalStats()
    runtime = GameRuntime(_game(), stats=stats)
    runtime.values_batch(_mask_batch(8, duplicates=False))
    assert stats.n_model_evals > 0
    assert stats is runtime.stats


def test_validation():
    runtime = GameRuntime(_game())
    with pytest.raises(ValidationError):
        runtime.values_batch(np.zeros((2, D + 1), dtype=bool))
    with pytest.raises(ValidationError):
        runtime.value([D + 3])
    with pytest.raises(ValidationError):
        RuntimeConfig(max_batch_rows=0)
    with pytest.raises(ValidationError):
        RuntimeConfig(n_jobs=0)
