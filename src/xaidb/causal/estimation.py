"""Fitting structural causal models from data (given a causal graph).

The causal explainers (causal/asymmetric Shapley, Shapley flow, LEWIS)
need an SCM.  In the synthetic experiments the generating SCM is known;
on real data the analyst typically knows (or assumes) only the *graph*.
:func:`fit_linear_gaussian_scm` estimates a linear-Gaussian SCM — each
node regressed on its parents, residual variance as the noise scale —
which is the standard parametric baseline, and enough for the
do-calculus-style sampling the explainers perform.  Binary (0/1) columns
are detected and fitted as logistic Bernoulli mechanisms so abduction
stays exact.

The A4 benchmark quantifies how close causal Shapley values computed on
the *fitted* SCM come to those on the *true* SCM.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from xaidb.causal.graph import CausalGraph
from xaidb.causal.scm import (
    AdditiveNoiseMechanism,
    BernoulliMechanism,
    Mechanism,
    StructuralCausalModel,
)
from xaidb.exceptions import ValidationError
from xaidb.models.linear import LinearRegression
from xaidb.models.logistic import LogisticRegression
from xaidb.utils.linalg import sigmoid
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["fit_linear_gaussian_scm", "mechanism_goodness_of_fit"]


def _is_binary(column: np.ndarray) -> bool:
    return set(np.unique(column)) <= {0.0, 1.0}


def _linear_mechanism(
    parents: Sequence[Hashable],
    coef: np.ndarray,
    intercept: float,
    noise_scale: float,
) -> Mechanism:
    parent_list = list(parents)
    weights = np.asarray(coef, dtype=float)

    def func(parent_values: Mapping[Hashable, np.ndarray]) -> np.ndarray:
        if not parent_list:
            length = 1
            for value in parent_values.values():
                length = len(value)
                break
            return np.full(length, intercept) if parent_values else intercept
        total = np.full(len(parent_values[parent_list[0]]), intercept)
        for weight, parent in zip(weights, parent_list):
            total = total + weight * np.asarray(parent_values[parent])
        return total

    return AdditiveNoiseMechanism(func, noise_scale=noise_scale)


def _logistic_mechanism(
    parents: Sequence[Hashable], coef: np.ndarray, intercept: float
) -> Mechanism:
    parent_list = list(parents)
    weights = np.asarray(coef, dtype=float)

    def prob(parent_values: Mapping[Hashable, np.ndarray]) -> np.ndarray:
        if not parent_list:
            return sigmoid(np.asarray([intercept]))
        logits = np.full(len(parent_values[parent_list[0]]), intercept)
        for weight, parent in zip(weights, parent_list):
            logits = logits + weight * np.asarray(parent_values[parent])
        return sigmoid(logits)

    return BernoulliMechanism(prob)


def fit_linear_gaussian_scm(
    graph: CausalGraph,
    data: Mapping[Hashable, np.ndarray],
) -> StructuralCausalModel:
    """Fit mechanisms for every node of ``graph`` from observed columns.

    - continuous nodes: OLS on the parents, Gaussian noise with the
      residual standard deviation (roots become ``mean + noise``);
    - binary 0/1 nodes: logistic regression on the parents (roots become
      Bernoulli with the empirical rate).

    ``data`` must provide one equal-length column per graph node.
    """
    missing = [node for node in graph.nodes if node not in data]
    if missing:
        raise ValidationError(f"data is missing columns for {missing}")
    columns = {
        node: check_array(data[node], name=str(node), ndim=1)
        for node in graph.nodes
    }
    lengths = [(str(node), column) for node, column in columns.items()]
    check_matching_lengths(*lengths)

    mechanisms: dict[Hashable, Mechanism] = {}
    for node in graph.nodes:
        y = columns[node]
        parents = graph.parents(node)
        if _is_binary(y):
            if not parents:
                rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
                intercept = float(np.log(rate / (1 - rate)))
                mechanisms[node] = _logistic_mechanism([], np.empty(0), intercept)
            else:
                design = np.column_stack([columns[p] for p in parents])
                try:
                    model = LogisticRegression(l2=1e-3).fit(design, y)
                    coef, intercept = model.coef_, model.intercept_
                except ValidationError:
                    # single-class column: constant mechanism
                    rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
                    coef = np.zeros(len(parents))
                    intercept = float(np.log(rate / (1 - rate)))
                mechanisms[node] = _logistic_mechanism(parents, coef, intercept)
        else:
            if not parents:
                mechanisms[node] = _linear_mechanism(
                    [], np.empty(0), float(y.mean()), float(y.std())
                )
            else:
                design = np.column_stack([columns[p] for p in parents])
                model = LinearRegression().fit(design, y)
                residuals = y - model.predict(design)
                mechanisms[node] = _linear_mechanism(
                    parents,
                    model.coef_,
                    float(model.intercept_),
                    float(max(residuals.std(), 1e-9)),
                )
    return StructuralCausalModel(graph, mechanisms)


def mechanism_goodness_of_fit(
    scm: StructuralCausalModel,
    data: Mapping[Hashable, np.ndarray],
    *,
    n_samples: int = 2000,
    random_state=None,
) -> dict[Hashable, float]:
    """Per-node comparison of fitted-SCM marginals to the data: the
    absolute difference of means in units of the data's std (0 = perfect).
    A coarse but dependency-free diagnostic for E/A-bench sanity checks.
    """
    sampled = scm.sample(n_samples, random_state=random_state)
    out: dict[Hashable, float] = {}
    for node in scm.graph.nodes:
        observed = np.asarray(data[node], dtype=float)
        simulated = sampled[node]
        scale = max(float(observed.std()), 1e-9)
        out[node] = abs(float(simulated.mean()) - float(observed.mean())) / scale
    return out
