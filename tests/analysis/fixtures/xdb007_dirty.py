"""XDB007 dirty fixture: mutable default argument values."""

__all__ = ["accumulate", "keyword_cache"]


def accumulate(value: int, bucket: list = []) -> list:
    bucket.append(value)
    return bucket


def keyword_cache(key: str, *, cache: dict = {}) -> dict:
    cache[key] = True
    return cache
