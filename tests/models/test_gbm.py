import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.models import (
    GradientBoostedClassifier,
    GradientBoostedRegressor,
    log_loss,
    r2_score,
    roc_auc,
)
from xaidb.utils.linalg import sigmoid


class TestGradientBoostedRegressor:
    def test_training_error_decreases_with_stages(self, regression_data):
        X, y, __ = regression_data
        model = GradientBoostedRegressor(
            n_estimators=30, random_state=0
        ).fit(X, y)
        staged = model.staged_raw_scores(X)
        errors = [float(np.mean((y - stage) ** 2)) for stage in staged]
        assert errors[-1] < errors[0] * 0.2
        # monotone non-increasing (squared loss + small learning rate)
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_init_score_is_mean(self, regression_data):
        X, y, __ = regression_data
        model = GradientBoostedRegressor(n_estimators=1).fit(X, y)
        assert model.init_score_ == pytest.approx(float(y.mean()))

    def test_fits_nonlinear_signal(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = X[:, 0] * X[:, 1]
        model = GradientBoostedRegressor(
            n_estimators=100, learning_rate=0.2, random_state=0
        ).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_prediction_is_sum_of_trees(self, small_gbr, regression_data):
        X, __, __ = regression_data
        total = np.full(10, small_gbr.init_score_)
        for tree in small_gbr.trees_:
            total += small_gbr.learning_rate * tree.predict(X[:10])
        assert np.allclose(total, small_gbr.predict(X[:10]))

    def test_subsample_records_rows(self, regression_data):
        X, y, __ = regression_data
        model = GradientBoostedRegressor(
            n_estimators=5, subsample=0.5, random_state=0
        ).fit(X, y)
        for rows in model.tree_train_rows_:
            assert len(rows) == int(round(0.5 * len(y)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            GradientBoostedRegressor(n_estimators=0)
        with pytest.raises(ValidationError):
            GradientBoostedRegressor(learning_rate=0.0)
        with pytest.raises(ValidationError):
            GradientBoostedRegressor(subsample=0.0)


class TestGradientBoostedClassifier:
    def test_logloss_decreases(self, income):
        X, y = income.dataset.X, income.dataset.y
        model = GradientBoostedClassifier(
            n_estimators=30, random_state=0
        ).fit(X, y)
        staged = model.staged_raw_scores(X)
        losses = [log_loss(y, sigmoid(stage)) for stage in staged]
        assert losses[-1] < losses[0]

    def test_beats_chance(self, income_gbm, income):
        auc = roc_auc(
            income.dataset.y, income_gbm.predict_proba(income.dataset.X)[:, 1]
        )
        assert auc > 0.8

    def test_margin_matches_proba(self, income_gbm, income):
        X = income.dataset.X[:20]
        assert np.allclose(
            sigmoid(income_gbm.decision_function(X)),
            income_gbm.predict_proba(X)[:, 1],
        )

    def test_init_score_is_log_odds(self, income):
        X, y = income.dataset.X, income.dataset.y
        model = GradientBoostedClassifier(n_estimators=1, random_state=0).fit(X, y)
        p = y.mean()
        assert model.init_score_ == pytest.approx(np.log(p / (1 - p)))

    def test_rejects_multiclass(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.asarray([0.0, 1.0, 2.0] * 10)
        with pytest.raises(ValidationError, match="binary"):
            GradientBoostedClassifier().fit(X, y)

    def test_label_values_preserved(self, income):
        X, y = income.dataset.X, income.dataset.y
        model = GradientBoostedClassifier(n_estimators=5, random_state=0).fit(
            X, y * 2 + 3  # labels 3, 5
        )
        assert set(model.predict(X)) <= {3.0, 5.0}
