"""Resource-tracker bookkeeping across the serial-fallback path.

Under the ``fork`` start method workers share the creator's resource
tracker daemon, so a worker's attach (which unregisters the segment to
avoid double-unlink warnings) also strips the *creator's* registration.
``WorkerPool.close`` re-registers before unlinking, but a map that dies
mid-flight and falls back to serial used to leave the arena untracked —
a process that then exited without ``close()`` orphaned its segments in
``/dev/shm`` forever.  ``parallel_map`` now calls
``retrack_segments()`` on the fallback path; these tests pin the fix by
running the scenario in a real subprocess and watching the segment
disappear (or the tracker stay quiet).
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

# The scenario script reproduces the exact sequence under which a fork
# worker's attach strips the creator's registration — every step is
# load-bearing:
#
# 1. share a first array, so the tracker daemon exists BEFORE any
#    worker is forked (workers inherit its pipe fd; a daemon spawned
#    later would be private to each worker and the books stay
#    separate);
# 2. run a warm-up map, forking the workers (they inherit the attach
#    cache holding array #1, so they will never untrack *it*);
# 3. share a second array — registered with the shared daemon but
#    absent from the workers' inherited attach cache;
# 4. run a map over array #2: each worker attaches (cache miss) and
#    untracks — sending the shared daemon an unregister that strips
#    the CREATOR's registration — then dies (OSError is a
#    pool-fallback failure, so the map retries serially in the
#    parent, where the pid check passes).
#
# ``crash`` mode then exits without close(): from that point only the
# resource tracker can reap segment #2, and it only can if the
# fallback path re-registered it.  The task functions live at module
# level behind no guard so spawn-mode children can import them; the
# parent pid travels in the payload because a module global would be
# re-evaluated (wrongly) on spawn re-import.
SCENARIO = '''\
import os
import sys

import numpy as np

from xaidb.runtime.parallel import WorkerPool, parallel_map, resolve_shared


def _warm(x):
    return x


def _attach_then_die(task):
    payload, parent = task
    total = float(resolve_shared(payload).sum())
    if os.getpid() != parent:
        raise OSError("simulated worker death after attach")
    return total


if __name__ == "__main__":
    method, mode = sys.argv[1], sys.argv[2]
    os.environ["XAIDB_POOL_START_METHOD"] = method
    pool = WorkerPool.get()
    pool.share(np.ones(8))  # spawns the tracker daemon pre-fork
    assert parallel_map(_warm, [1, 2, 3, 4], n_jobs=2) == [1, 2, 3, 4]
    array = np.arange(64, dtype=float)
    ref = pool.share(array)  # post-fork: workers must attach to see it
    tasks = [(ref, os.getpid())] * 4
    results = parallel_map(_attach_then_die, tasks, n_jobs=2)
    assert results == [float(array.sum())] * 4, results
    print(ref.name, flush=True)
    if mode == "crash":
        # die without close(): shut the (broken) workers down so they
        # cannot outlive us, then skip every atexit hook
        pool._executor.shutdown(wait=True)
        os._exit(0)
    WorkerPool.close_global()
'''


def _run_scenario(tmp_path, method: str, mode: str):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable here")
    script = tmp_path / "tracker_scenario.py"
    script.write_text(SCENARIO, encoding="utf-8")
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    proc = subprocess.run(
        [sys.executable, str(script), method, mode],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    segment_name = proc.stdout.strip().splitlines()[-1]
    return segment_name, proc.stderr


def _wait_gone(path: Path, seconds: float = 10.0) -> bool:
    deadline = time.monotonic() + seconds
    while path.exists():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.05)
    return True


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a visible /dev/shm"
)
def test_fork_fallback_then_crash_segment_is_reaped(tmp_path):
    """The regression: fork workers untrack the creator's segment, the
    map falls back to serial, the process dies without close() — the
    tracker must still reap the segment from /dev/shm."""
    name, _stderr = _run_scenario(tmp_path, "fork", "crash")
    segment = Path("/dev/shm") / name
    reaped = _wait_gone(segment)
    if not reaped:  # clean up the orphan before failing the test
        segment.unlink()
    assert reaped, f"segment {name} leaked in /dev/shm"


def test_spawn_fallback_clean_exit_leaves_nothing_tracked(tmp_path):
    """Spawn workers own a private tracker, so their attach/untrack is
    self-balancing — after the fallback (which now re-registers) and a
    normal close(), no segment survives and no tracker warns."""
    name, stderr = _run_scenario(tmp_path, "spawn", "clean")
    if os.path.isdir("/dev/shm"):
        assert not (Path("/dev/shm") / name).exists()
    assert "leaked shared_memory" not in stderr
    assert "resource_tracker" not in stderr, stderr
