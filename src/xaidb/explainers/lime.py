"""LIME: Local Interpretable Model-agnostic Explanations (Ribeiro 2016).

The pipeline, exactly as the tutorial (§2.1.1) describes it:

1. perturb the instance using training-data statistics
   (:class:`~xaidb.data.perturbation.LimeTabularSampler`);
2. weight perturbations by an exponential locality kernel on their
   distance to the instance;
3. fit a weighted ridge surrogate on the interpretable representation —
   standardised raw values for numeric features (as in reference LIME
   with ``discretize_continuous=False``) and match/no-match indicators
   for categorical features;
4. read the surrogate's coefficients as the explanation.

The surrogate's weighted R^2 is reported so callers can see when the
"surrogate models the complex model well enough" assumption (which the
tutorial flags as an attack surface) fails.
"""

from __future__ import annotations

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.data.perturbation import LimeTabularSampler
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.runtime import EvalStats, WorkerPool, parallel_map, resolve_shared
from xaidb.utils.kernels import exponential_kernel
from xaidb.utils.linalg import solve_psd
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array, check_positive

__all__ = ["LimeExplanation", "LimeExplainer"]


def _explain_one(task) -> "LimeExplanation":
    """One seeded single-instance explanation — the process-pool work
    unit for :meth:`LimeExplainer.explain_batch`.  The instance batch
    arrives as a :class:`~xaidb.runtime.SharedArrayRef` on the pooled
    path (attached once per worker), or as the plain array serially."""
    explainer, predict_fn, instances, index, seed = task
    instance = np.asarray(resolve_shared(instances)[index])
    return explainer.explain(predict_fn, instance, random_state=seed)


class LimeExplanation(FeatureAttribution):
    """A :class:`FeatureAttribution` whose metadata carries the surrogate
    fit quality (``score``: weighted R^2), the local intercept, and the
    number of perturbation samples used."""


def _weighted_ridge(
    Z: np.ndarray, target: np.ndarray, weights: np.ndarray, l2: float
) -> tuple[np.ndarray, float]:
    """Solve weighted ridge regression; returns (coefficients, intercept)."""
    design = np.column_stack([Z, np.ones(Z.shape[0])])
    weighted = design * weights[:, None]
    gram = weighted.T @ design
    penalty = np.eye(design.shape[1]) * l2
    penalty[-1, -1] = 0.0
    theta = solve_psd(gram + penalty, weighted.T @ target)
    return theta[:-1], float(theta[-1])


class LimeExplainer(Explainer):
    """Tabular LIME.

    Parameters
    ----------
    dataset:
        Training data used for perturbation statistics.
    kernel_width:
        Locality kernel width in standardised-distance units; defaults to
        ``0.75 * sqrt(n_features)`` as in the reference implementation.
    n_samples:
        Number of perturbations per explanation.
    l2:
        Ridge penalty for the surrogate.
    n_features_to_show:
        If set, keep only the strongest features by forward selection;
        ``None`` keeps all.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        kernel_width: float | None = None,
        n_samples: int = 1000,
        l2: float = 1.0,
        n_features_to_show: int | None = None,
    ) -> None:
        if n_samples < 10:
            raise ValidationError("n_samples must be at least 10")
        self.dataset = dataset
        self.kernel_width = (
            0.75 * np.sqrt(dataset.n_features)
            if kernel_width is None
            else check_positive(kernel_width, name="kernel_width")
        )
        self.n_samples = n_samples
        self.l2 = l2
        self.n_features_to_show = n_features_to_show
        self.sampler = LimeTabularSampler(dataset)
        #: Ledger of the most recent :meth:`explain_batch` call
        #: (throughput + warm-pool reuse across repeated batches).
        self.batch_stats_: EvalStats | None = None

    # ------------------------------------------------------------------
    def explain(
        self,
        predict_fn: PredictFn,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> LimeExplanation:
        """Explain ``predict_fn`` at ``instance``."""
        instance = check_array(instance, name="instance", ndim=1)
        rng = check_random_state(random_state)
        stats = EvalStats()
        counted_fn = stats.wrap_predict_fn(predict_fn)
        with stats.timer():
            perturbed, binary = self.sampler.sample(
                instance, self.n_samples, random_state=rng
            )
            predictions = np.asarray(counted_fn(perturbed), dtype=float)
            if predictions.shape != (self.n_samples,):
                raise ValidationError(
                    "predict_fn must return one scalar per row; got shape "
                    f"{predictions.shape}"
                )
            distances = self.sampler.standardised_distances(
                instance, perturbed
            )
            weights = exponential_kernel(distances, self.kernel_width)

            # interpretable representation: standardised raw values for
            # numeric columns, match indicators for categorical columns
            design_full = (
                perturbed - self.sampler.column_means[None, :]
            ) / self.sampler.column_stds[None, :]
            for col in self.dataset.categorical_indices:
                design_full[:, col] = binary[:, col]

            selected = self._select_features(
                design_full, predictions, weights
            )
            coefficients = np.zeros(self.dataset.n_features)
            coef_sel, intercept = _weighted_ridge(
                design_full[:, selected], predictions, weights, self.l2
            )
            coefficients[selected] = coef_sel

            fitted = design_full[:, selected] @ coef_sel + intercept
            score = _weighted_r2(predictions, fitted, weights)
        return LimeExplanation(
            feature_names=self.dataset.feature_names,
            values=coefficients,
            base_value=intercept,
            prediction=float(predictions[0]),
            metadata={
                "score": score,
                "n_samples": self.n_samples,
                "kernel_width": self.kernel_width,
                "selected_features": [int(i) for i in selected],
                **stats.as_metadata(),
            },
        )

    # ------------------------------------------------------------------
    def explain_batch(
        self,
        predict_fn: PredictFn,
        instances: np.ndarray,
        *,
        random_state: RandomState = None,
        seeds: list[int | None] | None = None,
        n_jobs: int | None = None,
    ) -> list[LimeExplanation]:
        """Explain many instances, optionally across worker processes.

        Each instance's explanation derives all randomness from its own
        spawned child seed, so the result list is bit-identical for
        every ``n_jobs`` under a fixed ``random_state`` (a ``predict_fn``
        the pool cannot pickle — e.g. a lambda adapter — transparently
        degrades to the serial path).  On the pooled path the instance
        batch is shipped once through the worker pool's shared-memory
        arena rather than pickled per task; :attr:`batch_stats_` records
        the run, including warm-pool reuse across repeated calls.

        ``seeds`` overrides the spawned child seeds with one explicit
        per-instance seed each — the serving dispatcher's entry point,
        which must reproduce ``explain(instance, random_state=seed)``
        bitwise for every coalesced request.
        """
        instances = check_array(instances, name="instances", ndim=2)
        if seeds is None:
            seeds = spawn_seeds(random_state, instances.shape[0])
        elif len(seeds) != instances.shape[0]:
            raise ValidationError(
                f"got {len(seeds)} seeds for {instances.shape[0]} instances"
            )
        self.batch_stats_ = EvalStats()
        payload = instances
        if n_jobs is not None and n_jobs > 1:
            payload = WorkerPool.get().share(instances)
        with self.batch_stats_.timer():
            explanations = parallel_map(
                _explain_one,
                [
                    (self, predict_fn, payload, i, seeds[i])
                    for i in range(instances.shape[0])
                ],
                n_jobs=n_jobs,
                stats=self.batch_stats_,
            )
        for explanation in explanations:
            self.batch_stats_.count_rows(
                explanation.metadata.get("n_model_evals", 0)
            )
        return explanations

    # ------------------------------------------------------------------
    def _select_features(
        self, Z: np.ndarray, target: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Greedy forward selection on weighted residual reduction.

        Mirrors LIME's ``forward_selection`` option; with
        ``n_features_to_show=None`` every feature is kept.
        """
        n_features = Z.shape[1]
        budget = self.n_features_to_show
        if budget is None or budget >= n_features:
            return np.arange(n_features)
        selected: list[int] = []
        remaining = set(range(n_features))
        for _ in range(budget):
            best_feature, best_score = None, -np.inf
            for candidate in remaining:
                columns = selected + [candidate]
                coef, intercept = _weighted_ridge(
                    Z[:, columns], target, weights, self.l2
                )
                fitted = Z[:, columns] @ coef + intercept
                score = _weighted_r2(target, fitted, weights)
                if score > best_score:
                    best_feature, best_score = candidate, score
            selected.append(best_feature)
            remaining.discard(best_feature)
        return np.asarray(sorted(selected), dtype=int)


def _weighted_r2(
    target: np.ndarray, fitted: np.ndarray, weights: np.ndarray
) -> float:
    """Weighted coefficient of determination."""
    mean = float(np.average(target, weights=weights))
    ss_res = float(np.average((target - fitted) ** 2, weights=weights))
    ss_tot = float(np.average((target - mean) ** 2, weights=weights))
    # xailint: disable=XDB006 (exact-zero denominator guard)
    if ss_tot == 0.0:
        # xailint: disable=XDB006 (exact-zero numerator of the degenerate R^2 case)
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
