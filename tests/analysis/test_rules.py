"""Per-rule fixture tests: each rule fires on its dirty fixture and
stays silent on its clean one (ISSUE acceptance criterion)."""

from __future__ import annotations

from pathlib import Path

import pytest

from xaidb.analysis import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

# (rule id, extra lint_source kwargs). XDB004 only applies inside the
# xaidb package; XDB008/XDB009 only inside xaidb.explainers;
# XDB010/XDB013 (the flow-sensitive tier) only inside xaidb;
# XDB014-XDB017 (the interprocedural tier) and XDB018-XDB022 (the
# concurrency tier) additionally need a module name, since call-graph
# qualnames derive from it.
CASES = [
    ("XDB001", {}),
    ("XDB002", {}),
    ("XDB003", {}),
    ("XDB004", {"in_xaidb_package": True}),
    ("XDB005", {}),
    ("XDB006", {}),
    ("XDB007", {}),
    ("XDB008", {"module_name": "xaidb.explainers.fixture"}),
    ("XDB009", {"module_name": "xaidb.explainers.fixture"}),
    ("XDB010", {"in_xaidb_package": True}),
    ("XDB011", {}),
    ("XDB012", {}),
    ("XDB013", {"in_xaidb_package": True}),
    ("XDB014", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB015", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB016", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB017", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB018", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB019", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB020", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB021", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB022", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB023", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB024", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB025", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB026", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB027", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB028", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB029", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB030", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB031", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
    ("XDB032", {"in_xaidb_package": True, "module_name": "xaidb.fx"}),
]


def _lint_fixture(rule_id: str, variant: str, kwargs: dict) -> list:
    path = FIXTURES / f"{rule_id.lower()}_{variant}.py"
    result = lint_source(
        path.read_text(),
        filename=path.name,
        **kwargs,
    )
    return [f for f in result.findings if f.rule_id == rule_id]


@pytest.mark.parametrize("rule_id,kwargs", CASES)
def test_rule_fires_on_dirty_fixture(rule_id, kwargs):
    findings = _lint_fixture(rule_id, "dirty", kwargs)
    assert findings, f"{rule_id} did not fire on its dirty fixture"
    for finding in findings:
        assert finding.rule_id == rule_id
        assert finding.line >= 1
        assert finding.message


@pytest.mark.parametrize("rule_id,kwargs", CASES)
def test_rule_silent_on_clean_fixture(rule_id, kwargs):
    findings = _lint_fixture(rule_id, "clean", kwargs)
    assert not findings, [f.message for f in findings]


def test_dirty_fixture_finding_counts():
    """Pin the exact violation counts so rules neither over- nor
    under-report as they evolve."""
    expected = {
        "XDB001": 3,  # two import statements + one from-import
        "XDB002": 5,  # import random, seed, normal, choice, random()
        "XDB003": 3,  # subscript store, augmented assign, out=
        "XDB004": 1,
        "XDB005": 2,  # bare except + except Exception
        "XDB006": 2,
        "XDB007": 2,
        "XDB008": 2,  # not-a-subclass + missing abstract method
        "XDB009": 2,  # for-loop call + listcomp over self.predict_fn
        "XDB010": 2,  # literal-seed sink + taint through a copy chain
        "XDB011": 2,  # view-chain return + asarray passthrough return
        "XDB012": 3,  # stale + reason-less + dangling suppression
        "XDB013": 2,  # overwritten-before-use + unused unpack slot
        "XDB014": 2,  # matmul + concatenate, shapes through a summary
        "XDB015": 2,  # float32 cast + int/int division reaching return
        "XDB016": 2,  # two sinks fed by a generator two levels down
        "XDB017": 2,  # callee mutation + view-through-callee return
        "XDB018": 2,  # direct in-place write + mutation via a helper
        "XDB019": 2,  # np.random module state + wall clock via helper
        "XDB020": 2,  # lambda task + nested-function task
        "XDB021": 2,  # direct time.sleep + blocking .fit via helper
        "XDB022": 2,  # early-return leak + raise-path leak
        "XDB023": 3,  # sum + len denominators + callsite precondition
        "XDB024": 2,  # log reaching 0 + sqrt reaching below 0
        "XDB025": 2,  # empty mean + ddof == sample count
        "XDB026": 2,  # predict_proba return + negative p= weights
        "XDB027": 2,  # weak-updated counts + unguarded len()
        "XDB028": 2,  # direct predict-before-fit + via helper witness
        "XDB029": 2,  # map after close + share-after-close via helper
        "XDB030": 2,  # local async def + asyncio builtin, both bare
        "XDB031": 2,  # KeyError via create_task + ValueError via ensure_future
        "XDB032": 2,  # except Exception: pass + bare except discard
    }
    for (rule_id, kwargs) in CASES:
        findings = _lint_fixture(rule_id, "dirty", kwargs)
        assert len(findings) == expected[rule_id], (
            rule_id,
            [f.message for f in findings],
        )


def test_xdb009_silent_outside_explainer_packages():
    """The runtime rule is scoped: the same loops in, say, benchmarks or
    xaidb.utils are not explainer hot paths and must not fire."""
    findings = _lint_fixture(
        "XDB009", "dirty", {"module_name": "xaidb.utils.fixture"}
    )
    assert not findings, [f.message for f in findings]


def test_xdb010_and_xdb013_silent_outside_xaidb_package():
    """The flow-sensitive tier is scoped to the library: the same code
    in scripts/benchmarks (literal module-level seeds, scratch locals)
    is idiomatic and must not fire."""
    for rule_id in ("XDB010", "XDB013"):
        findings = _lint_fixture(rule_id, "dirty", {})
        assert not findings, [f.message for f in findings]


def test_interproc_tier_silent_outside_xaidb_package():
    """XDB014-XDB027 are scoped to the library like the rest of the
    flow-sensitive tier."""
    for rule_id in (
        "XDB014",
        "XDB015",
        "XDB016",
        "XDB017",
        "XDB018",
        "XDB019",
        "XDB020",
        "XDB021",
        "XDB022",
        "XDB023",
        "XDB024",
        "XDB025",
        "XDB026",
        "XDB027",
    ):
        findings = _lint_fixture(
            rule_id, "dirty", {"module_name": "scripts.fx"}
        )
        assert not findings, [f.message for f in findings]


def test_concurrency_tier_messages_carry_witnesses():
    """XDB018/XDB019/XDB021 findings must say *where* the effect comes
    from — the witness line the effect vector recorded."""
    kwargs = {"in_xaidb_package": True, "module_name": "xaidb.fx"}
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB018", "dirty", kwargs)
    )
    assert "writes into a shared array at line" in messages
    assert "which mutates it, at line" in messages
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB019", "dirty", kwargs)
    )
    assert "calls numpy.random.normal() at line" in messages
    assert "via xaidb.fx._stamp_helper at line" in messages
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB021", "dirty", kwargs)
    )
    assert "calls time.sleep() at line" in messages
    assert "model-evaluation path .fit()" in messages


def test_typestate_tier_messages_carry_witnesses():
    """The interprocedural XDB028/XDB029 findings name the helper and
    the line the illegal call actually lives on; XDB031 names the raise
    site the may-raise summary recorded."""
    kwargs = {"in_xaidb_package": True, "module_name": "xaidb.fx"}
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB028", "dirty", kwargs)
    )
    assert "provably still in state 'unfitted'" in messages
    assert "the illegal call is inside xaidb.fx._score_all:" in messages
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB029", "dirty", kwargs)
    )
    assert "provably already in state 'closed'" in messages
    assert "the illegal call is inside xaidb.fx._reuse:" in messages
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB031", "dirty", kwargs)
    )
    assert "raised at xaidb.fx._flaky_refresh:" in messages
    assert "raised at xaidb.fx._flaky_evict:" in messages


def test_xdb016_findings_cross_two_call_boundaries():
    """The dirty fixture builds its generator two helpers down; the
    message must carry the measured depth."""
    findings = _lint_fixture(
        "XDB016",
        "dirty",
        {"in_xaidb_package": True, "module_name": "xaidb.fx"},
    )
    assert findings
    for finding in findings:
        assert "2 call levels away" in finding.message


def test_xdb014_message_names_the_witness_shapes():
    findings = _lint_fixture(
        "XDB014",
        "dirty",
        {"in_xaidb_package": True, "module_name": "xaidb.fx"},
    )
    messages = " | ".join(f.message for f in findings)
    assert "float64(3, 3) vs float64(4, 5)" in messages
    assert "concatenate()" in messages


def test_numeric_tier_messages_carry_interval_witnesses():
    """XDB023-XDB027 findings must cite the proven interval that
    supports them — the silent-unless-provable contract made visible."""
    kwargs = {"in_xaidb_package": True, "module_name": "xaidb.fx"}
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB023", "dirty", kwargs)
    )
    assert "proven range [0, inf]" in messages
    assert "xaidb.fx._rescale divides by it" in messages
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB025", "dirty", kwargs)
    )
    assert "proven length [0, 0]" in messages
    assert "n - ddof reaches 0" in messages
    messages = " | ".join(
        f.message for f in _lint_fixture("XDB026", "dirty", kwargs)
    )
    assert "proven range [2, inf]" in messages
    assert "proven range [-0.125, -0.125]" in messages


def test_xdb012_messages_distinguish_failure_modes():
    findings = _lint_fixture("XDB012", "dirty", {})
    messages = " | ".join(f.message for f in findings)
    assert "never matched a finding" in messages
    assert "no parenthesised reason" in messages
    assert "not followed by any code line" in messages


def test_xdb008_messages_distinguish_failure_modes():
    findings = _lint_fixture(
        "XDB008", "dirty", {"module_name": "xaidb.explainers.fixture"}
    )
    messages = " | ".join(f.message for f in findings)
    assert "does not subclass" in messages
    assert "does not implement abstract method 'explain'" in messages
