"""E7 — Shapley flow assigns credit to causal-graph edges, unifying the
set-based views (Wang, Wiens & Lundberg 2021).

Workload: the loans SCM (employment -> income -> debt_to_income, plus
direct edges into the decision).  Reproduced shape:

- flow conservation: credit into the model sink equals f(x) - f(baseline);
- inflow equals outflow at every internal node;
- edge credits reveal *both* the direct edge income -> output and the
  mediated path income -> debt_to_income -> output, which no single
  set-based attribution exposes simultaneously.
"""

import numpy as np
import pytest

from benchmarks._tables import print_table
from xaidb.data import make_loans
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.shapley import ShapleyFlowExplainer
from xaidb.models import LogisticRegression

SINK = "__output__"


def compute_rows():
    workload = make_loans(1500, random_state=0)
    dataset = workload.dataset
    features = [spec.name for spec in dataset.features]
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)

    explainer = ShapleyFlowExplainer(
        f, workload.scm, features, n_orderings=60
    )
    foreground = dict(zip(features, dataset.X[3]))
    baseline = {name: 0.0 for name in features}
    credits = explainer.explain(foreground, baseline, random_state=0)

    rows = [
        (f"{source} -> {target}", credit)
        for (source, target), credit in sorted(
            credits.items(), key=lambda kv: -abs(kv[1])
        )
    ]
    f_x = float(f(np.asarray([[foreground[n] for n in features]]))[0])
    f_b = float(f(np.zeros((1, len(features))))[0])
    return rows, credits, f_x - f_b


def test_e07_shapley_flow(benchmark):
    rows, credits, delta_f = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "E7: Shapley-flow edge credits on the loans SCM "
        "(paper: flow conservation + boundary consistency)",
        ["edge", "credit"],
        rows,
    )
    print(f"f(x) - f(baseline) = {delta_f:.4f}")
    into_sink = sum(v for (s, t), v in credits.items() if t == SINK)
    # efficiency at the sink boundary
    assert into_sink == pytest.approx(delta_f, abs=1e-9)
    # flow conservation at the income node
    inflow = credits[("employment_years", "income")]
    outflow = (
        credits[("income", "debt_to_income")] + credits[("income", SINK)]
    )
    assert inflow == pytest.approx(outflow, abs=1e-9)
