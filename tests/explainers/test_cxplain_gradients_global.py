import numpy as np
import pytest

from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.explainers import (
    CXPlainExplainer,
    granger_importance_targets,
    integrated_gradients,
    predict_positive_proba,
    smoothgrad,
)
from xaidb.explainers.shapley import (
    KernelShapExplainer,
    global_shap_importance,
    shap_matrix,
    shap_summary,
    supervised_clustering,
)
from xaidb.models import MLPClassifier


class TestGrangerTargets:
    def test_normalised_per_row(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        targets = granger_importance_targets(
            f, income.dataset.X[:30], income.dataset.X.mean(axis=0)
        )
        assert np.allclose(targets.sum(axis=1), 1.0)
        assert np.all(targets >= 0)

    def test_dummy_feature_low_importance(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        targets = granger_importance_targets(
            f, income.dataset.X[:50], income.dataset.X.mean(axis=0)
        )
        dummy = income.dataset.feature_index("random_noise")
        strongest = targets.mean(axis=0).max()
        assert targets[:, dummy].mean() < 0.5 * strongest

    def test_constant_model_gives_uniform(self, income):
        constant = lambda X: np.full(X.shape[0], 0.5)
        targets = granger_importance_targets(
            constant, income.dataset.X[:10], income.dataset.X.mean(axis=0)
        )
        assert np.allclose(targets, 1.0 / income.dataset.n_features)


class TestCXPlain:
    @pytest.fixture(scope="class")
    def fitted(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        return CXPlainExplainer(
            f, feature_names=income.dataset.feature_names, ensemble_size=4
        ).fit(income.dataset.X[:200], random_state=0)

    def test_explains_in_one_pass(self, fitted, income):
        attribution = fitted.explain(income.dataset.X[0])
        assert len(attribution.values) == income.dataset.n_features
        assert attribution.values.sum() == pytest.approx(1.0, abs=1e-6)

    def test_agrees_with_direct_targets(self, fitted, income, income_logistic):
        """On a training point, the learned explainer should be close to
        the directly computed masking importances."""
        f = predict_positive_proba(income_logistic)
        x = income.dataset.X[0]
        direct = granger_importance_targets(
            f, x[None, :], income.dataset.X[:200].mean(axis=0)
        )[0]
        learned = fitted.explain(x).values
        assert np.corrcoef(direct, learned)[0, 1] > 0.8

    def test_uncertainty_reported(self, fitted, income):
        attribution = fitted.explain(income.dataset.X[3])
        uncertainty = np.asarray(attribution.metadata["uncertainty"])
        assert uncertainty.shape == attribution.values.shape
        assert np.all(uncertainty >= 0)

    def test_single_member_has_zero_uncertainty(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        explainer = CXPlainExplainer(f, ensemble_size=1).fit(
            income.dataset.X[:60], random_state=1
        )
        attribution = explainer.explain(income.dataset.X[0])
        assert np.allclose(attribution.metadata["uncertainty"], 0.0)

    def test_unfitted_raises(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        with pytest.raises(NotFittedError):
            CXPlainExplainer(f).explain(income.dataset.X[0])


class TestIntegratedGradients:
    @pytest.fixture(scope="class")
    def mlp(self, moons):
        return MLPClassifier(hidden_sizes=(12,), max_iter=400, random_state=0).fit(
            moons.X, moons.y
        )

    def test_completeness(self, mlp, moons):
        baseline = moons.X.mean(axis=0)
        attribution = integrated_gradients(
            mlp, moons.X[0], baseline=baseline, n_steps=200
        )
        assert attribution.values.sum() == pytest.approx(
            attribution.prediction - attribution.base_value, abs=1e-3
        )

    def test_more_steps_tighter_completeness(self, mlp, moons):
        baseline = moons.X.mean(axis=0)

        def gap(n_steps):
            attribution = integrated_gradients(
                mlp, moons.X[1], baseline=baseline, n_steps=n_steps
            )
            return abs(
                attribution.values.sum()
                - (attribution.prediction - attribution.base_value)
            )

        assert gap(400) <= gap(4) + 1e-12

    def test_zero_displacement_zero_attribution(self, mlp, moons):
        x = moons.X[0]
        attribution = integrated_gradients(mlp, x, baseline=x.copy())
        assert np.allclose(attribution.values, 0.0)

    def test_step_validation(self, mlp, moons):
        with pytest.raises(ValidationError):
            integrated_gradients(mlp, moons.X[0], n_steps=1)


class TestSmoothgrad:
    @pytest.fixture(scope="class")
    def mlp(self, moons):
        return MLPClassifier(hidden_sizes=(12,), max_iter=400, random_state=0).fit(
            moons.X, moons.y
        )

    def test_nonnegative_and_deterministic(self, mlp, moons):
        a = smoothgrad(mlp, moons.X[0], random_state=5)
        b = smoothgrad(mlp, moons.X[0], random_state=5)
        assert np.all(a.values >= 0)
        assert np.allclose(a.values, b.values)

    def test_less_fragile_than_raw_saliency(self, mlp, moons):
        """SmoothGrad's purpose: attributions vary less across tiny input
        perturbations than raw saliency does."""
        from xaidb.evaluation import attribution_lipschitz
        from xaidb.explainers import saliency

        x = moons.X[5]
        raw = attribution_lipschitz(
            lambda z: saliency(mlp, z).values, x,
            radius=0.05, n_samples=15, random_state=0,
        )
        smooth = attribution_lipschitz(
            lambda z: smoothgrad(mlp, z, n_samples=30, random_state=1).values,
            x, radius=0.05, n_samples=15, random_state=0,
        )
        assert smooth <= raw + 1e-9


class TestGlobalSummaries:
    @pytest.fixture(scope="class")
    def matrix(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        explainer = KernelShapExplainer(
            f, income.dataset.X[:12], feature_names=income.dataset.feature_names
        )
        return shap_matrix(
            lambda x: explainer.explain(x, random_state=0),
            income.dataset.X[:15],
        )

    def test_matrix_shape(self, matrix, income):
        assert matrix.shape == (15, income.dataset.n_features)

    def test_global_importance_top_matches_model(self, matrix, income, income_logistic):
        """Mean |SHAP| of a linear-ish model tracks |coefficient| x feature
        spread, so the global top feature must be the model's top by that
        product (not by raw coefficient)."""
        importance = global_shap_importance(matrix, income.dataset.feature_names)
        top = importance.top(1)[0][0]
        effect = np.abs(income_logistic.coef_) * income.dataset.X.std(axis=0)
        model_top = income.dataset.feature_names[int(np.argmax(effect))]
        assert top == model_top
        # and the known dummy feature must rank at the bottom half
        ranked = [name for name, __ in importance.ranked()]
        assert ranked.index("random_noise") >= len(ranked) // 2

    def test_summary_direction_matches_coefficient_sign(self, matrix, income, income_logistic):
        rows = shap_summary(matrix, income.dataset.X[:15], income.dataset.feature_names)
        by_name = {row["feature"]: row for row in rows}
        for j, name in enumerate(income.dataset.feature_names):
            coefficient = income_logistic.coef_[j]
            direction = by_name[name]["value_direction"]
            if abs(coefficient) > 0.3:  # skip weak/noisy features
                assert np.sign(direction) == np.sign(coefficient)

    def test_summary_sorted_by_importance(self, matrix, income):
        rows = shap_summary(matrix, income.dataset.X[:15], income.dataset.feature_names)
        values = [row["mean_abs_shap"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_supervised_clustering_partitions(self, matrix):
        labels, medoids = supervised_clustering(matrix, 3, random_state=0)
        assert labels.shape == (15,)
        assert set(labels.tolist()) <= {0, 1, 2}
        assert len(medoids) == 3

    def test_clustering_deterministic(self, matrix):
        a, __ = supervised_clustering(matrix, 2, random_state=7)
        b, __ = supervised_clustering(matrix, 2, random_state=7)
        assert np.array_equal(a, b)

    def test_cluster_count_validated(self, matrix):
        with pytest.raises(ValidationError):
            supervised_clustering(matrix, 0)
        with pytest.raises(ValidationError):
            supervised_clustering(matrix, 999)
