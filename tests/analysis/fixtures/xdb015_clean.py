"""Clean fixture for XDB015: narrowing that never reaches the return,
and float arithmetic end-to-end, stay silent."""

import numpy as np

__all__ = ["scores_for", "Explainer"]


def scores_for(X):
    return np.zeros((8,), dtype=np.float64)


class Explainer:
    def explain(self, X):
        att = scores_for(X)
        preview = att.astype(np.float32)  # narrowed copy is local
        self.preview_ = preview  # ... and stored, not returned
        return att  # the full-precision values are what escapes

    def explain_scaled(self, X):
        att = scores_for(X)
        return att / 2.0  # float64 / float: no degradation
