"""Output formats for xailint results.

Two reporters ship: a human-oriented text format (one
``path:line:col: RULE message`` line per finding, grouped summary) and
a machine-oriented JSON document with a versioned, stable schema that
``tests/analysis`` pins down::

    {
      "schema_version": 1,
      "files_scanned": 12,
      "ok": false,
      "findings": [
        {"path": "...", "line": 3, "col": 0, "rule": "XDB001",
         "symbol": "banned-import", "message": "...", "severity": "error"}
      ],
      "suppressed_count": 2,
      "summary": {"XDB001": 1}
    }
"""

from __future__ import annotations

import json

from xaidb.analysis.findings import Finding, LintResult
from xaidb.analysis.registry import rules_by_id

__all__ = [
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "SARIF_SCHEMA_URI",
    "render_text",
    "render_json",
    "render_sarif",
    "render_github",
    "render_stats",
    "finding_to_dict",
]

JSON_SCHEMA_VERSION = 1

#: The SARIF spec level the CI reporter targets (pinned by tests).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def finding_to_dict(finding: Finding) -> dict[str, object]:
    """The stable JSON representation of one finding."""
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "symbol": finding.symbol,
        "message": finding.message,
        "severity": finding.severity,
    }


def render_text(result: LintResult) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} [{f.symbol}] {f.message}"
        for f in result.findings
    ]
    counts = result.counts_by_rule()
    if counts:
        lines.append("")
        for rule_id, count in counts.items():
            lines.append(f"{rule_id}: {count} finding(s)")
    noun = "file" if result.files_scanned == 1 else "files"
    status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    suffix = (
        f", {len(result.suppressed)} suppressed"
        if result.suppressed
        else ""
    )
    lines.append(
        f"xailint: {result.files_scanned} {noun} scanned, {status}{suffix}"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report with a pinned schema version."""
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "ok": result.ok,
        "findings": [finding_to_dict(f) for f in result.findings],
        "suppressed_count": len(result.suppressed),
        "summary": result.counts_by_rule(),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 document for CI annotation (GitHub code scanning).

    One run, one driver (``xailint``), the full registered rule pack in
    ``tool.driver.rules`` (so viewers can show descriptions even for
    rules with zero results), one ``result`` per finding.
    """
    registry = rules_by_id()
    rule_ids = sorted(registry)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    sarif_rules = [
        {
            "id": rule_id,
            "name": registry[rule_id].symbol,
            "shortDescription": {"text": registry[rule_id].description},
            "defaultConfiguration": {
                "level": registry[rule_id].severity
            },
        }
        for rule_id in rule_ids
    ]
    results = []
    for finding in result.findings:
        entry: dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": (
                finding.severity
                if finding.severity in ("error", "warning")
                else "error"
            ),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            # SARIF columns are 1-based
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            entry["ruleIndex"] = rule_index[finding.rule_id]
        results.append(entry)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "xailint",
                        "informationUri": (
                            "https://github.com/xaidb/xaidb/blob/main/"
                            "docs/LINTING.md"
                        ),
                        "rules": sarif_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _github_escape_data(text: str) -> str:
    """Escape a workflow-command message per GitHub's data rules."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _github_escape_property(text: str) -> str:
    """Escape a workflow-command property value (file=, etc.)."""
    return (
        _github_escape_data(text).replace(":", "%3A").replace(",", "%2C")
    )


def render_github(result: LintResult) -> str:
    """GitHub Actions workflow commands, one annotation per finding.

    ``::warning file=...,line=...,col=...::message`` lines surface
    inline on the PR diff when printed inside a workflow run — no SARIF
    upload step or code-scanning permission needed.  Severities other
    than ``warning`` map to ``error``; columns are 1-based like SARIF.
    """
    lines = []
    for finding in result.findings:
        level = "warning" if finding.severity == "warning" else "error"
        lines.append(
            f"::{level} "
            f"file={_github_escape_property(finding.path)},"
            f"line={finding.line},"
            f"col={finding.col + 1},"
            f"title={_github_escape_property(finding.rule_id)}"
            f"::{_github_escape_data(f'[{finding.symbol}] {finding.message}')}"
        )
    noun = "file" if result.files_scanned == 1 else "files"
    status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"xailint: {result.files_scanned} {noun} scanned, {status}"
    )
    return "\n".join(lines)


def render_stats(result: LintResult) -> str:
    """The ``--stats`` table: cache effectiveness and per-rule time."""
    stats = result.stats
    lines = [
        "scan statistics:",
        f"  files scanned     {stats.files_scanned}",
        f"  cache hits        {stats.cache_hits}",
        f"  cache misses      {stats.cache_misses}",
        f"  cache hit rate    {stats.hit_rate:.1%}",
        "  project rules     "
        + ("cached" if stats.project_from_cache else "executed"),
        f"  summary hits      {stats.summary_hits}",
        f"  summary misses    {stats.summary_misses}",
        f"  summary hit rate  {stats.summary_hit_rate:.1%}",
        f"  parse time        {stats.parse_seconds * 1e3:8.1f} ms",
        f"  total time        {stats.total_seconds * 1e3:8.1f} ms",
    ]
    if stats.pass_seconds:
        lines.append("  per-pass time (function summaries):")
        for pass_name, seconds in sorted(
            stats.pass_seconds.items(),
            key=lambda pair: pair[1],
            reverse=True,
        ):
            lines.append(
                f"    {pass_name:<10} {seconds * 1e3:8.1f} ms"
            )
    if stats.rule_seconds:
        lines.append("  per-rule time:")
        for rule_id, seconds in sorted(
            stats.rule_seconds.items(),
            key=lambda pair: pair[1],
            reverse=True,
        ):
            lines.append(f"    {rule_id}    {seconds * 1e3:8.1f} ms")
    return "\n".join(lines)
