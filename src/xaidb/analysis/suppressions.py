"""Inline suppression handling for xailint.

A finding can be silenced with a comment of the form::

    risky_line()  # xailint: disable=XDB002 (seeding handled by caller)
    other_line()  # xailint: disable=XDB002,XDB006 (both are intentional)

The comment silences the named rules on its own physical line.  A
comment that is the *only* content of its line silences the named rules
on the next non-blank line instead, so long statements can carry a
suppression without exceeding line-length budgets::

    # xailint: disable=XDB006 (exact-zero denominator guard)
    if ss_tot == 0.0:
        ...

The parenthesised reason string is mandatory by this repo's convention
(docs/LINTING.md) and enforced by XDB012, which also reports
suppressions that no longer match any finding — the engine records,
per :class:`Suppression` entry and rule id, whether it actually fired.
A standalone comment with no following code line (end of file, or
trailed only by comments) keeps ``target_line = None`` and is always
reported as unused instead of silently vanishing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "SuppressionIndex", "parse_suppressions"]

_DISABLE_RE = re.compile(
    r"#\s*xailint:\s*disable=(?P<ids>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)


@dataclass
class Suppression:
    """One ``# xailint: disable=`` comment."""

    #: Physical line the comment sits on.
    comment_line: int
    #: Line whose findings it silences (the comment's own line, or the
    #: next code line for standalone comments); ``None`` when a
    #: standalone comment has no following code line.
    target_line: int | None
    rule_ids: frozenset[str]
    #: The parenthesised why; ``None`` when absent (an XDB012 finding).
    reason: str | None = None
    #: Rule ids that actually silenced a finding, filled by the engine.
    fired: set[str] = field(default_factory=set)

    def unused_ids(self) -> list[str]:
        return sorted(self.rule_ids - self.fired)

    def to_dict(self) -> dict[str, object]:
        """JSON form for the incremental cache."""
        return {
            "comment_line": self.comment_line,
            "target_line": self.target_line,
            "rule_ids": sorted(self.rule_ids),
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Suppression":
        return cls(
            comment_line=int(data["comment_line"]),
            target_line=(
                int(data["target_line"])
                if data["target_line"] is not None
                else None
            ),
            rule_ids=frozenset(str(r) for r in data["rule_ids"]),
            reason=(
                str(data["reason"]) if data["reason"] is not None else None
            ),
        )


class SuppressionIndex:
    """All suppression comments of one file, with usage accounting."""

    def __init__(self, entries: list[Suppression] | None = None) -> None:
        self.entries: list[Suppression] = list(entries or [])

    def add(self, entry: Suppression) -> None:
        self.entries.append(entry)

    def match(self, line: int, rule_id: str) -> Suppression | None:
        """The entry suppressing ``rule_id`` at ``line``, if any.

        The caller records the hit in ``entry.fired`` so XDB012 can
        report entries that never matched anything.
        """
        for entry in self.entries:
            if entry.target_line == line and rule_id in entry.rule_ids:
                return entry
        return None

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """Pure query form of :meth:`match` (no usage accounting)."""
        return self.match(line, rule_id) is not None

    def __len__(self) -> int:
        return len(self.entries)


def parse_suppressions(source: str) -> SuppressionIndex:
    """Scan ``source`` for ``# xailint: disable=...`` comments.

    Uses :mod:`tokenize` rather than a per-line regex so comments inside
    string literals do not count as suppressions.
    """
    index = SuppressionIndex()
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index

    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(tok.string)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group("ids").split(",")
        )
        reason = match.group("reason")
        if reason is not None:
            reason = reason.strip() or None
        line_no = tok.start[0]
        line_text = lines[line_no - 1] if line_no <= len(lines) else ""
        if line_text.strip().startswith("#"):
            # standalone: applies to the next non-blank, non-comment
            # line; no such line leaves target_line None (reported
            # unused by XDB012 rather than silently dropped)
            target: int | None = None
            candidate = line_no + 1
            while candidate <= len(lines):
                stripped = lines[candidate - 1].strip()
                if stripped and not stripped.startswith("#"):
                    target = candidate
                    break
                candidate += 1
            index.add(
                Suppression(
                    comment_line=line_no,
                    target_line=target,
                    rule_ids=ids,
                    reason=reason,
                )
            )
        else:
            index.add(
                Suppression(
                    comment_line=line_no,
                    target_line=line_no,
                    rule_ids=ids,
                    reason=reason,
                )
            )
    return index
