"""An ndarray shape/dtype abstract domain for the dataflow framework.

XDB014/XDB015 need to *prove* facts about arrays — "these two operands
can never broadcast", "this value is float64 before the cast" — without
running any numpy.  This module provides the abstract domain those
proofs live in, evaluated on the existing
:mod:`xaidb.analysis.dataflow` map lattice by encoding each abstract
array as a string label, so a variable's state is a frozenset of its
possible abstract values and join stays pointwise set union.

The domain
----------

An :class:`AbstractArray` is ``(shape, dtype)``:

- ``shape`` is a tuple of *dims* — a decimal literal (``"3"``), a
  symbol naming the in-scope variable it came from (``"n"``, never
  provably unequal to anything), or ``"?"`` (unknown) — or ``None``
  for unknown rank;
- ``dtype`` is one of ``float64 float32 int64 int32 bool ?``.

⊤ (no information) is the singleton ``{"?[*]"}`` — the abstract value
of unknown rank and unknown dtype.  Making ⊤ an explicit *member* of
the set (rather than the empty set) keeps the pointwise-union join
sound: joining an unknown path into a known one leaves the unknown
value in the set, and a consumer that demands a proof from *every*
member of the set can never prove anything past it.  The empty set (⊥)
only arises transiently and is also treated as unprovable.

Incompatibility is only ever *proved* between two literal dims — a
symbolic dim is compatible with everything — which keeps XDB014 free of
false positives by construction: the analysis can stay silent, but when
it speaks ("(…,3) @ (4,…) cannot multiply"), the program is wrong on
every path that reaches the operation.

Transfer functions cover the ~25 numpy entry points the corpus actually
uses (constructors, ``matmul``/``dot``, ``reshape``/``transpose``/
``ravel``, the axis reductions, ``concatenate``/``stack`` and friends,
elementwise arithmetic with broadcasting, ``astype``); everything else
falls back to ⊤.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable

from xaidb.analysis.dataflow import State, ValueTaint

__all__ = [
    "AbstractArray",
    "INCOMPATIBLE",
    "UNKNOWN_DIM",
    "broadcast_shapes",
    "matmul_shapes",
    "concat_shapes",
    "promote_dtypes",
    "dtype_from_node",
    "encode",
    "decode",
    "sanitize",
    "ShapeState",
    "ShapeAnalysis",
]

#: Unknown dim marker (compatible with everything).
UNKNOWN_DIM = "?"

#: Sentinel for a *provable* shape conflict (never enters a state).
INCOMPATIBLE = "INCOMPATIBLE"

_FLOAT_DTYPES = ("float64", "float32")
_INT_DTYPES = ("int64", "int32")
_KNOWN_DTYPES = _FLOAT_DTYPES + _INT_DTYPES + ("bool", UNKNOWN_DIM)

#: Bound on abstract-value sets per variable; beyond it collapse to ⊤.
_MAX_VALUES = 4


@dataclass(frozen=True)
class AbstractArray:
    """One abstract ndarray value: symbolic shape plus dtype."""

    shape: tuple[str, ...] | None  # None = unknown rank
    dtype: str = UNKNOWN_DIM

    def rank(self) -> int | None:
        return None if self.shape is None else len(self.shape)


#: Alias used in signatures: a set of possible abstract values.
ShapeState = frozenset[str]

#: ⊤ — the encoded unknown value (see module docstring).
TOP: ShapeState = frozenset({f"{UNKNOWN_DIM}[*]"})


def encode(value: AbstractArray) -> str:
    shape = "*" if value.shape is None else ",".join(value.shape)
    return f"{value.dtype}[{shape}]"


def decode(label: str) -> AbstractArray:
    dtype, _, rest = label.partition("[")
    body = rest[:-1]
    if body == "*":
        return AbstractArray(shape=None, dtype=dtype)
    if body == "":
        return AbstractArray(shape=(), dtype=dtype)
    return AbstractArray(shape=tuple(body.split(",")), dtype=dtype)


def sanitize(value: AbstractArray) -> AbstractArray:
    """Strip function-local symbols for export across a call boundary:
    a symbolic dim names a *local* variable, meaningless to callers."""
    if value.shape is None:
        return value
    shape = tuple(
        dim if _is_literal(dim) else UNKNOWN_DIM for dim in value.shape
    )
    return AbstractArray(shape=shape, dtype=value.dtype)


def _is_literal(dim: str) -> bool:
    return dim.isdigit()


def _dims_provably_differ(a: str, b: str) -> bool:
    return _is_literal(a) and _is_literal(b) and a != b


def _join_dim(a: str, b: str) -> str:
    return a if a == b else UNKNOWN_DIM


# ---------------------------------------------------------------------------
# shape algebra
# ---------------------------------------------------------------------------


def broadcast_shapes(
    a: tuple[str, ...] | None, b: tuple[str, ...] | None
) -> tuple[str, ...] | None | str:
    """Numpy broadcasting of two shapes.

    Returns the result shape, ``None`` when unknown, or
    :data:`INCOMPATIBLE` when two literal dims can never broadcast.
    """
    if a is None or b is None:
        return None
    if len(a) < len(b):
        a, b = b, a
    padded = ("1",) * (len(a) - len(b)) + tuple(b)
    out: list[str] = []
    for dim_a, dim_b in zip(a, padded):
        if dim_a == "1":
            out.append(dim_b)
        elif dim_b == "1":
            out.append(dim_a)
        elif dim_a == dim_b:
            out.append(dim_a)
        elif _dims_provably_differ(dim_a, dim_b):
            return INCOMPATIBLE
        else:
            out.append(UNKNOWN_DIM)
    return tuple(out)


def matmul_shapes(
    a: tuple[str, ...] | None, b: tuple[str, ...] | None
) -> tuple[str, ...] | None | str:
    """``a @ b`` shape semantics (inner dims must agree; no broadcast
    of the core dims; 1-D operands get the numpy prepend/append
    treatment)."""
    if a is None or b is None:
        return None
    if len(a) == 0 or len(b) == 0:
        return INCOMPATIBLE  # matmul of a scalar is a TypeError
    inner_a = a[-1]
    inner_b = b[-2] if len(b) >= 2 else b[-1]
    if _dims_provably_differ(inner_a, inner_b):
        return INCOMPATIBLE
    if len(a) == 1 and len(b) == 1:
        return ()
    if len(a) == 1:
        return tuple(b[:-2]) + (b[-1],)
    if len(b) == 1:
        return tuple(a[:-1])
    batch = broadcast_shapes(a[:-2], b[:-2])
    if batch is INCOMPATIBLE:
        return INCOMPATIBLE
    if batch is None:
        return None
    return tuple(batch) + (a[-2], b[-1])


def concat_shapes(
    shapes: list[tuple[str, ...] | None], axis: int | None
) -> tuple[str, ...] | None | str:
    """``np.concatenate`` semantics: equal ranks, every non-axis dim
    provably equal; the axis dim sums (literal only when all are)."""
    if axis is None or any(s is None for s in shapes) or not shapes:
        return None
    ranks = {len(s) for s in shapes}  # type: ignore[arg-type]
    if len(ranks) > 1:
        return INCOMPATIBLE
    rank = ranks.pop()
    if rank == 0 or not -rank <= axis < rank:
        return INCOMPATIBLE
    axis %= rank
    out: list[str] = []
    for position in range(rank):
        dims = [s[position] for s in shapes]  # type: ignore[index]
        if position == axis:
            if all(_is_literal(d) for d in dims):
                out.append(str(sum(int(d) for d in dims)))
            else:
                out.append(UNKNOWN_DIM)
            continue
        merged = dims[0]
        for dim in dims[1:]:
            if _dims_provably_differ(merged, dim):
                return INCOMPATIBLE
            merged = _join_dim(merged, dim)
        out.append(merged)
    return tuple(out)


def promote_dtypes(a: str, b: str) -> str:
    """Binary-arithmetic result dtype (coarse numpy promotion)."""
    if a == UNKNOWN_DIM or b == UNKNOWN_DIM:
        return UNKNOWN_DIM
    if "float64" in (a, b):
        return "float64"
    if a in _FLOAT_DTYPES or b in _FLOAT_DTYPES:
        # float32 survives only against float32/bool; against 32/64-bit
        # ints numpy widens to float64
        other = b if a in _FLOAT_DTYPES else a
        return "float32" if other in ("float32", "bool") else "float64"
    if a in _INT_DTYPES or b in _INT_DTYPES:
        return "int64" if "int64" in (a, b) else "int32"
    return "bool"


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------


def _literal_dim(node: ast.AST) -> str:
    """Abstract dim of one entry of a shape argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return str(node.value) if node.value >= 0 else UNKNOWN_DIM
    if isinstance(node, ast.Name):
        return node.id  # symbolic: provably equal only to itself
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return UNKNOWN_DIM  # reshape(-1, …) wildcards
    return UNKNOWN_DIM


def _shape_from_arg(node: ast.AST | None) -> tuple[str, ...] | None:
    """Shape tuple from a constructor's shape argument
    (``np.zeros((n, 3))``, ``np.zeros(5)``)."""
    if node is None:
        return None
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_literal_dim(element) for element in node.elts)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return (str(node.value),)
    if isinstance(node, ast.Name):
        return (node.id,)
    return None


def _dims_from_args(args: list[ast.expr]) -> tuple[str, ...] | None:
    """Shape from varargs-style dims (``x.reshape(n, 3)``) or a single
    tuple argument (``x.reshape((n, 3))``)."""
    if len(args) == 1:
        return _shape_from_arg(args[0])
    if not args:
        return None
    return tuple(_literal_dim(a) for a in args)


def dtype_from_node(node: ast.AST | None) -> str:
    """Abstract dtype named by a ``dtype=`` argument or cast target."""
    if node is None:
        return UNKNOWN_DIM
    name: str | None = None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    elif isinstance(node, ast.Attribute):
        name = node.attr  # np.float32
    elif isinstance(node, ast.Name):
        name = node.id  # bare float / int / float32 from-import
    if name in ("float", "float_", "double"):
        return "float64"
    if name in ("int", "int_", "long"):
        return "int64"
    if name in _KNOWN_DTYPES:
        return name
    return UNKNOWN_DIM


def _keyword(call: ast.Call, name: str) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _axis_from(call: ast.Call, position: int) -> int | None:
    node = _keyword(call, "axis")
    if node is None and len(call.args) > position:
        node = call.args[position]
    if node is None:
        return 0 if _keyword(call, "axis") is None else None
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _literal_array_shape(node: ast.AST) -> tuple[str, ...] | None:
    """Shape of a rectangular nested list/tuple literal."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return ()  # a scalar leaf
    child_shapes = {_literal_array_shape(e) for e in node.elts}
    if len(child_shapes) != 1:
        return None  # ragged or unknown: no provable shape
    child = child_shapes.pop()
    if child is None:
        return None
    return (str(len(node.elts)),) + child


def _literal_array_dtype(node: ast.AST) -> str:
    kinds: set[str] = set()
    for leaf in ast.walk(node):
        if isinstance(leaf, ast.Constant):
            if isinstance(leaf.value, bool):
                kinds.add("bool")
            elif isinstance(leaf.value, int):
                kinds.add("int64")
            elif isinstance(leaf.value, float):
                kinds.add("float64")
            else:
                return UNKNOWN_DIM
        elif not isinstance(leaf, (ast.List, ast.Tuple, ast.UnaryOp,
                                   ast.USub, ast.UAdd)):
            return UNKNOWN_DIM
    if "float64" in kinds:
        return "float64"
    if "int64" in kinds:
        return "int64"
    if kinds == {"bool"}:
        return "bool"
    return UNKNOWN_DIM


#: Reductions: name -> dtype override ("" keeps the input dtype).
_REDUCTIONS = {
    "sum": "",
    "prod": "",
    "min": "",
    "max": "",
    "amin": "",
    "amax": "",
    "mean": "float",
    "std": "float",
    "var": "float",
    "median": "float",
    "all": "bool",
    "any": "bool",
    "argmin": "int64",
    "argmax": "int64",
}

#: Elementwise unary numpy functions: name -> dtype override.
_ELEMENTWISE = {
    "abs": "",
    "absolute": "",
    "negative": "",
    "clip": "",
    "exp": "float",
    "log": "float",
    "log2": "float",
    "log10": "float",
    "sqrt": "float",
    "sin": "float",
    "cos": "float",
    "tanh": "float",
    "sign": "",
    "floor": "float",
    "ceil": "float",
    "isnan": "bool",
    "isfinite": "bool",
}

_CONSTRUCTORS = {"zeros", "ones", "empty", "full"}
_LIKE_CONSTRUCTORS = {
    "zeros_like", "ones_like", "empty_like", "full_like",
}
_PASSTHROUGH = {"asarray", "asanyarray", "ascontiguousarray", "copy",
                "asfortranarray"}
_STACKERS = {"stack", "vstack", "hstack", "column_stack", "row_stack"}


class ShapeAnalysis(ValueTaint):
    """Abstract interpretation of shapes/dtypes on the map lattice.

    A variable's labels are encoded :class:`AbstractArray` values (its
    *possible* shapes); ⊤ is the singleton :data:`TOP` (see the module
    docstring).  ``callee_returns`` hooks
    interprocedural knowledge in: given a call node it may return the
    abstract values of the callee's return (from its function summary),
    or ``None`` to fall back to the numpy transfer functions.
    """

    def __init__(
        self,
        entry: State | None = None,
        callee_returns: Callable[
            [ast.Call], Iterable[AbstractArray] | None
        ] | None = None,
    ) -> None:
        super().__init__(entry=entry)
        self._callee_returns = callee_returns

    # -- expression semantics ----------------------------------------

    def eval_expr(self, expr: ast.AST | None, state: State) -> ShapeState:
        if expr is None:
            return TOP
        if isinstance(expr, ast.Constant):
            return self._constant(expr)
        if isinstance(expr, ast.Name):
            return state.get(expr.id, TOP)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, state)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr, state)
        if isinstance(expr, ast.UnaryOp):
            return self.eval_expr(expr.operand, state)
        if isinstance(expr, ast.Compare):
            return self._compare(expr, state)
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T":
                return _cap({
                    AbstractArray(
                        shape=None if v.shape is None
                        else tuple(reversed(v.shape)),
                        dtype=v.dtype,
                    )
                    for v in self._decode(
                        self.eval_expr(expr.value, state)
                    )
                })
            return TOP
        if isinstance(expr, ast.IfExp):
            return _cap_labels(
                self.eval_expr(expr.body, state)
                | self.eval_expr(expr.orelse, state)
            )
        if isinstance(expr, ast.NamedExpr):
            return self.eval_expr(expr.value, state)
        if isinstance(expr, (ast.List, ast.Tuple)):
            return TOP  # containers are not arrays until np.array(...)
        return TOP

    def eval_call(self, call: ast.Call, state: State) -> ShapeState:
        if self._callee_returns is not None:
            summary = self._callee_returns(call)
            if summary is not None:
                return _cap(set(summary))
        values = _numpy_call(self, call, state)
        return _cap(values) if values is not None else TOP

    # -- statement semantics -----------------------------------------

    def transfer(self, item: ast.AST, state: State) -> None:
        # iterating an array yields its rows, not the array itself
        if isinstance(item, (ast.For, ast.AsyncFor)):
            element = self._element_labels(
                self.eval_expr(item.iter, state)
            )
            super().transfer(item, state)
            for name in _loop_target_names(item.target):
                state[name] = element
            return
        # x += v is the binop, not the union of both operands' shapes
        if isinstance(item, ast.AugAssign) and isinstance(
            item.target, ast.Name
        ):
            state[item.target.id] = self._combine(
                item.op,
                state.get(item.target.id, TOP),
                self.eval_expr(item.value, state),
            )
            return
        super().transfer(item, state)

    def _element_labels(self, labels: ShapeState) -> ShapeState:
        out: set[AbstractArray] = set()
        for value in self._decode(labels):
            if value.shape is None or len(value.shape) == 0:
                return TOP
            out.add(AbstractArray(value.shape[1:], value.dtype))
        return _cap(out)

    # -- helpers -----------------------------------------------------

    def _decode(self, labels: ShapeState) -> set[AbstractArray]:
        return {decode(label) for label in labels}

    def _constant(self, node: ast.Constant) -> ShapeState:
        if isinstance(node.value, bool):
            return frozenset({encode(AbstractArray((), "bool"))})
        if isinstance(node.value, int):
            return frozenset({encode(AbstractArray((), "int64"))})
        if isinstance(node.value, float):
            return frozenset({encode(AbstractArray((), "float64"))})
        return TOP

    def _binop(self, expr: ast.BinOp, state: State) -> ShapeState:
        return self._combine(
            expr.op,
            self.eval_expr(expr.left, state),
            self.eval_expr(expr.right, state),
        )

    def _combine(
        self, op: ast.operator, left: ShapeState, right: ShapeState
    ) -> ShapeState:
        left_values = self._decode(left)
        right_values = self._decode(right)
        if not left_values or not right_values:
            return TOP
        out: set[AbstractArray] = set()
        for a in left_values:
            for b in right_values:
                result = binop_result(op, a, b)
                if result is None:
                    return TOP
                if result is not INCOMPATIBLE:
                    out.add(result)
        return _cap(out)

    def _compare(self, expr: ast.Compare, state: State) -> ShapeState:
        if len(expr.comparators) != 1:
            return TOP
        left = self._decode(self.eval_expr(expr.left, state))
        right = self._decode(
            self.eval_expr(expr.comparators[0], state)
        )
        if not left or not right:
            return TOP
        out: set[AbstractArray] = set()
        for a in left:
            for b in right:
                shape = broadcast_shapes(a.shape, b.shape)
                if shape is INCOMPATIBLE:
                    continue
                out.add(AbstractArray(shape=shape, dtype="bool"))
        return _cap(out)


def binop_result(
    op: ast.operator, a: AbstractArray, b: AbstractArray
) -> AbstractArray | None | str:
    """Abstract result of ``a <op> b`` (INCOMPATIBLE on provable
    broadcast/matmul conflicts, ``None`` when nothing is known)."""
    if isinstance(op, ast.MatMult):
        shape = matmul_shapes(a.shape, b.shape)
        if shape is INCOMPATIBLE:
            return INCOMPATIBLE
        return AbstractArray(
            shape=shape, dtype=promote_dtypes(a.dtype, b.dtype)
        )
    if isinstance(
        op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
             ast.Mod, ast.Pow)
    ):
        shape = broadcast_shapes(a.shape, b.shape)
        if shape is INCOMPATIBLE:
            return INCOMPATIBLE
        if isinstance(op, ast.Div):
            # true division never yields ints: int/int -> float64
            dtype = promote_dtypes(a.dtype, b.dtype)
            if dtype in _INT_DTYPES or dtype == "bool":
                dtype = "float64"
            elif dtype == UNKNOWN_DIM:
                dtype = UNKNOWN_DIM
            return AbstractArray(shape=shape, dtype=dtype)
        return AbstractArray(
            shape=shape, dtype=promote_dtypes(a.dtype, b.dtype)
        )
    return None


def _float_of(dtype: str) -> str:
    """The float dtype a ``mean``-style reduction yields."""
    if dtype == "float32":
        return "float32"
    if dtype == UNKNOWN_DIM:
        return UNKNOWN_DIM
    return "float64"


def _reduce_shape(
    value: AbstractArray, call: ast.Call
) -> tuple[str, ...] | None:
    axis_node = _keyword(call, "axis")
    keepdims = _keyword(call, "keepdims")
    keep = (
        isinstance(keepdims, ast.Constant) and keepdims.value is True
    )
    if axis_node is None:
        return ("1",) * len(value.shape) if keep and value.shape else ()
    if value.shape is None:
        return None
    if isinstance(axis_node, ast.Constant) and isinstance(
        axis_node.value, int
    ):
        axis = axis_node.value
        rank = len(value.shape)
        if rank == 0:
            return None
        if not -rank <= axis < rank:
            return None
        axis %= rank
        if keep:
            return tuple(
                "1" if i == axis else dim
                for i, dim in enumerate(value.shape)
            )
        return tuple(
            dim for i, dim in enumerate(value.shape) if i != axis
        )
    return None


def _numpy_call(
    analysis: ShapeAnalysis, call: ast.Call, state: State
) -> set[AbstractArray] | None:
    """Transfer function for a numpy-style call; ``None`` = unknown."""
    func = call.func
    name: str | None = None
    receiver: ast.AST | None = None
    if isinstance(func, ast.Attribute):
        name = func.attr
        receiver = func.value
    elif isinstance(func, ast.Name):
        name = func.id
    if name is None:
        return None

    def arg_values(node: ast.AST) -> set[AbstractArray]:
        return analysis._decode(analysis.eval_expr(node, state))

    # -- constructors ------------------------------------------------
    if name in _CONSTRUCTORS:
        shape = _shape_from_arg(call.args[0] if call.args else None)
        dtype = dtype_from_node(_keyword(call, "dtype"))
        if dtype == UNKNOWN_DIM:
            if name == "full" and len(call.args) > 1:
                fills = {
                    v.dtype for v in arg_values(call.args[1])
                }
                dtype = fills.pop() if len(fills) == 1 else UNKNOWN_DIM
            else:
                dtype = "float64"  # the numpy default
        return {AbstractArray(shape=shape, dtype=dtype)}
    if name in _LIKE_CONSTRUCTORS and call.args:
        dtype_override = dtype_from_node(_keyword(call, "dtype"))
        return {
            AbstractArray(
                shape=v.shape,
                dtype=(
                    dtype_override
                    if dtype_override != UNKNOWN_DIM
                    else v.dtype
                ),
            )
            for v in arg_values(call.args[0])
        } or None
    if name == "eye" and call.args:
        dim = _literal_dim(call.args[0])
        dtype = dtype_from_node(_keyword(call, "dtype"))
        return {
            AbstractArray(
                shape=(dim, dim),
                dtype="float64" if dtype == UNKNOWN_DIM else dtype,
            )
        }
    if name == "arange":
        dtype = "int64"
        for node in list(call.args) + [
            kw.value for kw in call.keywords
        ]:
            if isinstance(node, ast.Constant) and isinstance(
                node.value, float
            ):
                dtype = "float64"
        if len(call.args) == 1 and isinstance(
            call.args[0], ast.Constant
        ) and isinstance(call.args[0].value, int):
            return {
                AbstractArray((str(call.args[0].value),), dtype)
            }
        return {AbstractArray((UNKNOWN_DIM,), dtype)}
    if name == "linspace":
        num = _keyword(call, "num")
        if num is None and len(call.args) > 2:
            num = call.args[2]
        dim = _literal_dim(num) if num is not None else "50"
        return {AbstractArray((dim,), "float64")}
    if name == "array" and call.args:
        shape = _literal_array_shape(call.args[0])
        dtype = dtype_from_node(_keyword(call, "dtype"))
        if shape == ():  # not a literal list: adopt the operand
            inner = arg_values(call.args[0])
            if inner:
                return {
                    AbstractArray(
                        shape=v.shape,
                        dtype=(
                            dtype if dtype != UNKNOWN_DIM else v.dtype
                        ),
                    )
                    for v in inner
                }
            return None
        if dtype == UNKNOWN_DIM:
            dtype = _literal_array_dtype(call.args[0])
        return {AbstractArray(shape=shape, dtype=dtype)}
    if name in _PASSTHROUGH and (call.args or receiver is not None):
        source = call.args[0] if call.args else receiver
        values = arg_values(source)
        return values or None

    # -- linear algebra ----------------------------------------------
    if name in ("matmul", "dot") and len(call.args) >= 2:
        out: set[AbstractArray] = set()
        for a in arg_values(call.args[0]):
            for b in arg_values(call.args[1]):
                result = binop_result(ast.MatMult(), a, b)
                if result is not None and result is not INCOMPATIBLE:
                    out.add(result)
        return out or None
    if name == "outer" and len(call.args) >= 2:
        return {
            AbstractArray((UNKNOWN_DIM, UNKNOWN_DIM), UNKNOWN_DIM)
        }

    # -- shape manipulation ------------------------------------------
    if name == "reshape":
        if receiver is not None and not call.args:
            return None
        if receiver is not None and not _looks_like_module(receiver):
            shape = _dims_from_args(list(call.args))
            dtypes = {v.dtype for v in arg_values(receiver)}
            dtype = dtypes.pop() if len(dtypes) == 1 else UNKNOWN_DIM
            return {AbstractArray(shape=shape, dtype=dtype)}
        if len(call.args) >= 2:  # np.reshape(x, shape)
            shape = _shape_from_arg(call.args[1])
            dtypes = {v.dtype for v in arg_values(call.args[0])}
            dtype = dtypes.pop() if len(dtypes) == 1 else UNKNOWN_DIM
            return {AbstractArray(shape=shape, dtype=dtype)}
        return None
    if name in ("ravel", "flatten"):
        source = (
            receiver
            if receiver is not None and not _looks_like_module(receiver)
            else (call.args[0] if call.args else None)
        )
        if source is None:
            return None
        out = set()
        for v in arg_values(source):
            if v.shape is not None and all(
                _is_literal(d) for d in v.shape
            ):
                size = 1
                for d in v.shape:
                    size *= int(d)
                out.add(AbstractArray((str(size),), v.dtype))
            else:
                out.add(AbstractArray((UNKNOWN_DIM,), v.dtype))
        return out or None
    if name == "transpose":
        source = (
            receiver
            if receiver is not None and not _looks_like_module(receiver)
            else (call.args[0] if call.args else None)
        )
        if source is None:
            return None
        has_axes = bool(
            (receiver is None or _looks_like_module(receiver))
            and len(call.args) > 1
        ) or bool(
            receiver is not None
            and not _looks_like_module(receiver)
            and call.args
        )
        out = set()
        for v in arg_values(source):
            if v.shape is None or has_axes:
                out.add(AbstractArray(None, v.dtype))
            else:
                out.add(
                    AbstractArray(tuple(reversed(v.shape)), v.dtype)
                )
        return out or None
    if name == "expand_dims" and call.args:
        return None  # rank changes at a dynamic axis: stay ⊤
    if name == "squeeze":
        return None

    # -- joining -----------------------------------------------------
    if name == "concatenate" and call.args:
        parts = call.args[0]
        if not isinstance(parts, (ast.Tuple, ast.List)):
            return None
        axis = _axis_from(call, 1)
        options: list[set[AbstractArray]] = [
            arg_values(p) for p in parts.elts
        ]
        if any(not opts for opts in options):
            return None
        out = set()
        for combo in _combinations(options):
            shape = concat_shapes([v.shape for v in combo], axis)
            if shape is INCOMPATIBLE:
                continue
            dtype = combo[0].dtype
            for v in combo[1:]:
                dtype = promote_dtypes(dtype, v.dtype)
            out.add(
                AbstractArray(
                    shape=None if shape is None else tuple(shape),
                    dtype=dtype,
                )
            )
        return out or None
    if name in _STACKERS:
        return None  # rank growth is rarely load-bearing: stay ⊤

    # -- reductions and elementwise ----------------------------------
    if name in _REDUCTIONS:
        source = (
            receiver
            if receiver is not None and not _looks_like_module(receiver)
            else (call.args[0] if call.args else None)
        )
        if source is None:
            return None
        override = _REDUCTIONS[name]
        out = set()
        for v in arg_values(source):
            shape = _reduce_shape(v, call)
            if override == "float":
                dtype = _float_of(v.dtype)
            elif override:
                dtype = override
            else:
                dtype = v.dtype
            out.add(AbstractArray(shape=shape, dtype=dtype))
        return out or None
    if name in _ELEMENTWISE:
        source = (
            receiver
            if receiver is not None and not _looks_like_module(receiver)
            else (call.args[0] if call.args else None)
        )
        if source is None:
            return None
        override = _ELEMENTWISE[name]
        out = set()
        for v in arg_values(source):
            if override == "float":
                dtype = _float_of(v.dtype)
            elif override:
                dtype = override
            else:
                dtype = v.dtype
            out.add(AbstractArray(shape=v.shape, dtype=dtype))
        return out or None
    if name == "where" and len(call.args) == 3:
        out = set()
        for a in arg_values(call.args[1]):
            for b in arg_values(call.args[2]):
                shape = broadcast_shapes(a.shape, b.shape)
                if shape is INCOMPATIBLE:
                    continue
                out.add(
                    AbstractArray(
                        shape=None if shape is None else tuple(shape),
                        dtype=promote_dtypes(a.dtype, b.dtype),
                    )
                )
        return out or None

    # -- casts -------------------------------------------------------
    if name == "astype" and receiver is not None and call.args:
        dtype = dtype_from_node(call.args[0])
        return {
            AbstractArray(shape=v.shape, dtype=dtype)
            for v in arg_values(receiver)
        } or {AbstractArray(shape=None, dtype=dtype)}
    if name in ("float32", "float64", "int32", "int64") and call.args:
        values = arg_values(call.args[0])
        return {
            AbstractArray(shape=v.shape, dtype=name) for v in values
        } or {AbstractArray(shape=None, dtype=name)}

    return None


def _looks_like_module(node: ast.AST) -> bool:
    """Heuristic: ``np.x(...)`` / ``numpy.x(...)`` receiver vs an array
    method receiver — module aliases are plain names used only as
    qualifiers, and the corpus convention is ``np``/``numpy``."""
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


def _combinations(
    options: list[set[AbstractArray]],
) -> list[tuple[AbstractArray, ...]]:
    """Cartesian product with a hard cap (abstract sets are tiny)."""
    combos: list[tuple[AbstractArray, ...]] = [()]
    for opts in options:
        combos = [
            combo + (value,)
            for combo in combos
            for value in sorted(opts, key=encode)
        ]
        if len(combos) > 16:
            return combos[:16]
    return combos


def _loop_target_names(target: ast.AST) -> list[str]:
    """Plain names a ``for`` target binds (tuple targets recursed)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _loop_target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_loop_target_names(element))
        return names
    return []


def _cap(values: set[AbstractArray]) -> ShapeState:
    if not values or len(values) > _MAX_VALUES:
        return TOP
    return frozenset(encode(v) for v in values)


def _cap_labels(labels: frozenset[str]) -> ShapeState:
    if len(labels) > _MAX_VALUES:
        return TOP
    return labels
