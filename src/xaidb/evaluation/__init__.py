"""Evaluation of explanations (tutorial §3 "User study and evaluation"):
faithfulness (deletion/insertion), surrogate fidelity, stability indices,
robustness to input perturbation, and sanity checks via parameter
randomisation."""

from xaidb.evaluation.faithfulness import (
    deletion_curve,
    deletion_auc,
    insertion_curve,
)
from xaidb.evaluation.fidelity import local_fidelity, rank_correlation
from xaidb.evaluation.recourse_fairness import (
    GroupRecourseStats,
    recourse_cost_disparity,
)
from xaidb.evaluation.robustness import attribution_lipschitz
from xaidb.evaluation.sanity import parameter_randomization_check
from xaidb.evaluation.stability import (
    coefficient_stability_index,
    variable_stability_index,
)

__all__ = [
    "deletion_curve",
    "insertion_curve",
    "deletion_auc",
    "local_fidelity",
    "rank_correlation",
    "variable_stability_index",
    "coefficient_stability_index",
    "attribution_lipschitz",
    "parameter_randomization_check",
    "GroupRecourseStats",
    "recourse_cost_disparity",
]
