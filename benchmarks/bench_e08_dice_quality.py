"""E8 — DiCE: valid, proximate, diverse counterfactual sets
(Mothilal, Sharma & Tan 2020, Tables 1-2 shape).

Reproduced shape: across k in {1, 2, 4, 8}, validity stays ~1.0 while
diversity grows with k (more counterfactuals to spread out) and
proximity degrades mildly — the trade-off the paper's tables document.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_credit
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import DiceExplainer
from xaidb.models import GradientBoostedClassifier, LogisticRegression

K_VALUES = [1, 2, 4, 8]
N_INSTANCES = 5


def compute_rows():
    workload = make_credit(900, random_state=0)
    dataset = workload.dataset
    models = {
        "logistic": LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y),
        "gbt": GradientBoostedClassifier(
            n_estimators=30, max_depth=3, random_state=0
        ).fit(dataset.X, dataset.y),
    }
    rows = []
    for model_name, model in models.items():
        f = predict_positive_proba(model)
        scores = f(dataset.X)
        denied = dataset.X[np.flatnonzero((scores > 0.05) & (scores < 0.35))]
        dice = DiceExplainer(f, dataset, n_iterations=250)
        for k in K_VALUES:
            validity, proximity, diversity, sparsity = [], [], [], []
            for i in range(N_INSTANCES):
                cf_set = dice.generate(
                    denied[i], n_counterfactuals=k, random_state=i
                )
                validity.append(cf_set.validity())
                proximity.append(cf_set.proximity())
                diversity.append(cf_set.diversity())
                sparsity.append(cf_set.sparsity())
            rows.append(
                (
                    model_name,
                    k,
                    float(np.mean(validity)),
                    float(np.mean(proximity)),
                    float(np.mean(diversity)),
                    float(np.mean(sparsity)),
                )
            )
    return rows


def test_e08_dice_quality(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E8: DiCE counterfactual quality vs k (paper: validity ~1, "
        "diversity grows with k)",
        ["model", "k", "validity", "proximity", "diversity", "sparsity"],
        rows,
    )
    # shape: high validity everywhere
    assert all(row[2] >= 0.8 for row in rows)
    # shape: k=1 has zero diversity by definition; k>=2 sets are genuinely
    # diverse (the DiCE objective spreads the counterfactuals out)
    for model_name in ("logistic", "gbt"):
        model_rows = {row[1]: row for row in rows if row[0] == model_name}
        # xailint: disable=XDB006 (validity rate is a count ratio, exactly 0.0 when none valid)
        assert model_rows[1][4] == 0.0
        for k in (2, 4, 8):
            assert model_rows[k][4] > 1.0
