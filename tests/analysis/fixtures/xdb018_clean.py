"""Clean fixture for XDB018: pooled tasks read shared arena arrays and
write only into freshly allocated buffers."""

from xaidb.runtime import parallel_map, resolve_shared

__all__ = ["scale_rows", "center_rows"]


def _scale_task(task):
    ref, factor = task
    data = resolve_shared(ref)
    scaled = data * factor  # fresh allocation: shared buffer untouched
    return scaled.sum()


def _center_task(ref):
    data = resolve_shared(ref)
    centered = data - data.mean()
    return centered.sum()


def scale_rows(ref, factors):
    return parallel_map(_scale_task, [(ref, f) for f in factors])


def center_rows(refs):
    return parallel_map(_center_task, refs)
