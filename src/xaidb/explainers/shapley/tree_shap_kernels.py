"""Vectorized TreeSHAP kernels over the packed ``EnsembleKernel`` arena.

The second wave of the PR-5 pattern: PR 5 vectorized *inference* (one
level-synchronous frontier instead of a Python ``while`` per row); this
module vectorizes the *explainers* themselves.  The retained recursions
in :mod:`xaidb.explainers.shapley.tree` stay the exactness oracle — the
kernels here must reproduce them bitwise (``np.array_equal``; signs of
exact zeros may differ where the vectorized form adds a masked ``0.0``
the recursion skips).

**Path-dependent** (:func:`ensemble_path_dependent_shap`).  The
Lundberg Algorithm-2 recursion keeps, per tree node, a *path* of
``(feature, zero_fraction, one_fraction, weight)`` entries and runs
EXTEND/UNWIND polynomial updates on it.  The key structural facts that
make it vectorizable across rows:

- the DFS itself visits **every** node for **every** row (absent
  features descend both children), so there is no per-row control flow
  to emulate — after normalizing the recursion to visit children
  left-then-right, the node/leaf order is a property of the tree alone;
- ``feature`` and ``zero_fraction`` (products of training-cover
  ratios) are row-independent scalars;
- ``one_fraction`` is exactly ``0.0`` or ``1.0`` per row (whether the
  row follows the split), and ``weight`` is the only genuinely
  row-valued state.

So the explicit iterative DFS here carries the path as a tuple of
scalars plus two ``(path_len, n_rows)`` ndarrays, and each EXTEND /
UNWIND step is the recursion's scalar update replayed as one row-wise
vector operation **in the same expression order** — which is what makes
the result bitwise identical rather than merely close.

**Interventional** (:func:`ensemble_interventional_shap`).  For one
``(x, z)`` pair each leaf is an AND-game over the features where ``x``
and ``z`` diverge on the leaf's path, with closed-form Shapley values
``±(a-1)! b! / (a+b)!``.  The kernel enumerates each tree's leaf paths
once (row-independent), then evaluates every leaf against the whole
background set at once: per-feature match masks, coalition sizes
``a``/``b`` by row-wise popcount, and factorial weights from an exact
precomputed table.  The retained recursion (normalized to the same
left-first leaf order, accumulating one fresh ``phi_z`` per background
row) is again the oracle.

Both kernels fold trees sequentially in term order, exactly like the
per-term Python loops they replace.
"""

from __future__ import annotations

from math import factorial

import numpy as np

from xaidb.models.tree_kernels import EnsembleKernel
from xaidb.utils.validation import check_array

__all__ = [
    "ensemble_path_dependent_shap",
    "ensemble_interventional_shap",
]

#: Rows processed per arena sweep.  Chunking is bitwise-safe (every
#: row's op sequence is independent) and bounds the ``(path_len,
#: n_rows)`` stack state plus the ``(n_nodes, n_rows)`` split table.
_ROW_BLOCK = 4096


# ----------------------------------------------------------------------
# Path-dependent: EXTEND / UNWIND as row-vectorized frontier updates
# ----------------------------------------------------------------------
def _extend_state(
    state: tuple,
    pz: float,
    po: np.ndarray,
    feat: int,
) -> tuple:
    """The recursion's ``_extend`` with per-row ``one_fraction``/
    ``weight`` columns; same expression order, so bitwise identical
    per row."""
    features, zeros, ones, weights = state
    length, n = weights.shape
    new_ones = np.empty((length + 1, n))
    new_ones[:length] = ones
    new_ones[length] = po
    new_weights = np.empty((length + 1, n))
    new_weights[:length] = weights
    new_weights[length] = 1.0 if length == 0 else 0.0
    for i in range(length - 1, -1, -1):
        new_weights[i + 1] += po * new_weights[i] * (i + 1) / (length + 1)
        new_weights[i] = pz * new_weights[i] * (length - i) / (length + 1)
    return features + (feat,), zeros + (pz,), new_ones, new_weights


def _unwound_weights(
    weights: np.ndarray, one: np.ndarray, zero: float
) -> np.ndarray:
    """The recursion's ``_unwind`` weight loop, vectorized across rows.

    ``one`` is exactly ``0.0`` or ``1.0`` per row; the hot/cold branch
    of the scalar code becomes a ``np.where`` select between the two
    closed forms, each computed with the reference's expression order.
    The hot denominator ``(j+1)*one`` is masked to 1.0 on cold rows
    only to avoid spurious divide-by-zero work — those lanes are
    discarded by the select.
    """
    last = weights.shape[0] - 1
    # xailint: disable=XDB006 (exact-zero one-fraction guard, as in the scalar unwind)
    hot = one != 0.0
    carry = weights[last]
    unwound = np.empty((last, weights.shape[1]))
    for j in range(last - 1, -1, -1):
        previous = weights[j]
        denom = np.where(hot, (j + 1) * one, 1.0)
        hot_weight = carry * (last + 1) / denom
        cold_weight = previous * (last + 1) / (zero * (last - j))
        unwound[j] = np.where(hot, hot_weight, cold_weight)
        carry = np.where(
            # xailint: disable=XDB023 (last + 1 = weights.shape[0] >= 1: UNWIND only runs on a non-empty path)
            hot, previous - unwound[j] * zero * (last - j) / (last + 1), carry
        )
    return unwound


def _unwind_state(state: tuple, index: int) -> tuple:
    """Drop path entry ``index``: weights update in place (unshifted),
    features/fractions shift down — exactly the scalar ``_unwind``."""
    features, zeros, ones, weights = state
    new_weights = _unwound_weights(weights, ones[index], zeros[index])
    new_features = features[:index] + features[index + 1 :]
    new_zeros = zeros[:index] + zeros[index + 1 :]
    new_ones = np.concatenate([ones[:index], ones[index + 1 :]])
    return new_features, new_zeros, new_ones, new_weights


def _leaf_accumulate(state: tuple, value: float, phi: np.ndarray) -> None:
    """At a leaf, unwind each path entry and fold its contribution into
    ``phi[:, feature]`` — the recursion's leaf loop over all rows."""
    features, zeros, ones, weights = state
    length, n = weights.shape
    last = length - 1
    for i in range(1, length):
        unwound = _unwound_weights(weights, ones[i], zeros[i])
        total = np.zeros(n)
        for j in range(last):
            total += unwound[j]
        phi[:, features[i]] += total * (ones[i] - zeros[i]) * value


def _block_path_dependent(
    kernel: EnsembleKernel,
    X: np.ndarray,
    out: np.ndarray,
    scales: np.ndarray,
) -> None:
    """One row block: iterative left-first DFS per tree over the arena,
    all rows advancing through every EXTEND/UNWIND together."""
    n = X.shape[0]
    left, right = kernel.left, kernel.right
    feature, threshold = kernel.feature, kernel.threshold
    covers, values = kernel.covers, kernel.values
    is_internal = kernel.is_internal
    # one arena-wide split evaluation: go_left[node] is the bool column
    # "row follows the left child" (NaN compares False -> right, same
    # as the scalar reference)
    internal_ids = np.flatnonzero(is_internal)
    go_left = np.zeros((left.shape[0], n), dtype=bool)
    if internal_ids.size:
        go_left[internal_ids] = (
            X[:, feature[internal_ids]] <= threshold[internal_ids]
        ).T
    root_ones = np.ones(n)
    for t in range(kernel.n_trees):
        scale = float(scales[t])
        phi = np.zeros(out.shape)
        empty = ((), (), np.empty((0, n)), np.empty((0, n)))
        stack: list[tuple] = [(int(kernel.offsets[t]), empty, 1.0, root_ones, -1)]
        while stack:
            node, state, pz, po, feat = stack.pop()
            state = _extend_state(state, pz, po, feat)
            if not is_internal[node]:
                _leaf_accumulate(state, float(values[node]), phi)
                continue
            split = int(feature[node])
            l, r = int(left[node]), int(right[node])
            incoming_zero = 1.0
            incoming_one = root_ones
            path_features = state[0]
            existing = None
            for i in range(1, len(path_features)):
                if path_features[i] == split:
                    existing = i
                    break
            if existing is not None:
                incoming_zero = state[1][existing]
                incoming_one = state[2][existing]
                state = _unwind_state(state, existing)
            follows = go_left[node]
            # left child first (normalized order); the hot fraction
            # rides with whichever child the row follows
            stack.append(
                (
                    r,
                    state,
                    incoming_zero * covers[r] / covers[node],
                    np.where(follows, 0.0, incoming_one),
                    split,
                )
            )
            stack.append(
                (
                    l,
                    state,
                    incoming_zero * covers[l] / covers[node],
                    np.where(follows, incoming_one, 0.0),
                    split,
                )
            )
        out += scale * phi


def ensemble_path_dependent_shap(
    kernel: EnsembleKernel,
    X: np.ndarray,
    n_features: int,
    *,
    scales: np.ndarray | None = None,
    row_block: int = _ROW_BLOCK,
) -> np.ndarray:
    """Path-dependent TreeSHAP for all rows of ``X`` across every tree
    of the arena: shape ``(n_rows, n_features)``.

    Bitwise identical per row to the retained recursion::

        phi = zeros(d)
        for (tree, leaf_values, scale) in terms:
            phi += scale * path_dependent_tree_shap(tree, leaf_values, x, d)

    ``scales`` defaults to the pack's :attr:`EnsembleKernel.scales`
    (set by :meth:`EnsembleKernel.for_terms`).
    """
    X = np.asarray(X, dtype=float)
    if scales is None:
        scales = kernel.scales
    if scales is None:
        scales = np.ones(kernel.n_trees)
    out = np.zeros((X.shape[0], n_features))
    for start in range(0, X.shape[0], row_block):
        stop = min(start + row_block, X.shape[0])
        _block_path_dependent(kernel, X[start:stop], out[start:stop], scales)
    return out


# ----------------------------------------------------------------------
# Interventional: leaf AND-games against the whole background at once
# ----------------------------------------------------------------------
def _factorial_tables(depth: int) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(a-1)! b! / (a+b)!`` and ``a! (b-1)! / (a+b)!`` lookup
    tables: the integer arithmetic happens in Python ints, so each cell
    is the same correctly-rounded float the recursion computes."""
    pos = np.zeros((depth + 1, depth + 1))
    neg = np.zeros((depth + 1, depth + 1))
    for a in range(depth + 1):
        for b in range(depth + 1):
            if a + b == 0:
                continue
            denom = factorial(a + b)
            if a:
                pos[a, b] = factorial(a - 1) * factorial(b) / denom
            if b:
                neg[a, b] = factorial(a) * factorial(b - 1) / denom
    return pos, neg


def _leaf_paths(
    kernel: EnsembleKernel, tree_index: int
) -> list[tuple[int, list[tuple[int, bool]]]]:
    """Left-first DFS enumeration of one tree's leaves with their
    decision paths ``[(arena_node, went_left), ...]`` — structural,
    shared by every row."""
    left, right = kernel.left, kernel.right
    is_internal = kernel.is_internal
    leaves: list[tuple[int, list[tuple[int, bool]]]] = []
    stack: list[tuple[int, list[tuple[int, bool]]]] = [
        (int(kernel.offsets[tree_index]), [])
    ]
    while stack:
        node, path = stack.pop()
        if not is_internal[node]:
            leaves.append((node, path))
            continue
        stack.append((int(right[node]), path + [(node, False)]))
        stack.append((int(left[node]), path + [(node, True)]))
    return leaves


def ensemble_interventional_shap(
    kernel: EnsembleKernel,
    x: np.ndarray,
    background: np.ndarray,
    *,
    scales: np.ndarray | None = None,
) -> np.ndarray:
    """Interventional TreeSHAP of ``x`` against ``background`` across
    every tree of the arena: shape ``(n_features,)``.

    Bitwise identical (up to signs of exact zeros, via masked adds the
    recursion skips) to::

        phi = zeros(d)
        for (tree, leaf_values, scale) in terms:
            phi += scale * interventional_tree_shap(tree, leaf_values, x, background)
    """
    x = check_array(x, name="x", ndim=1)
    Z = check_array(background, name="background", ndim=2)
    if scales is None:
        scales = kernel.scales
    if scales is None:
        scales = np.ones(kernel.n_trees)
    n_background, d = Z.shape[0], x.shape[0]
    feature, threshold = kernel.feature, kernel.threshold
    internal_ids = np.flatnonzero(kernel.is_internal)
    # split outcomes for x (per node) and every background row at once
    x_goes_left = np.zeros(kernel.left.shape[0], dtype=bool)
    z_goes_left = np.zeros((n_background, kernel.left.shape[0]), dtype=bool)
    if internal_ids.size:
        x_goes_left[internal_ids] = (
            x[feature[internal_ids]] <= threshold[internal_ids]
        )
        z_goes_left[:, internal_ids] = (
            Z[:, feature[internal_ids]] <= threshold[internal_ids]
        )
    pos_table = neg_table = None
    out = np.zeros(d)
    for t in range(kernel.n_trees):
        contributions = np.zeros((n_background, d))
        for leaf, path in _leaf_paths(kernel, t):
            if not path:
                continue  # single-node tree: x and z always agree
            # group path occurrences by feature, first-occurrence order
            order: list[int] = []
            occurrences: dict[int, list[tuple[int, bool]]] = {}
            for node, went_left in path:
                f = int(feature[node])
                if f not in occurrences:
                    occurrences[f] = []
                    order.append(f)
                occurrences[f].append((node, went_left))
            k = len(order)
            x_match = np.empty(k, dtype=bool)
            z_match = np.empty((n_background, k), dtype=bool)
            for j, f in enumerate(order):
                x_ok = True
                z_ok = np.ones(n_background, dtype=bool)
                for node, went_left in occurrences[f]:
                    x_ok = x_ok and (bool(x_goes_left[node]) == went_left)
                    z_ok &= z_goes_left[:, node] == went_left
                x_match[j] = x_ok
                z_match[:, j] = z_ok
            # the leaf's AND-game: A = follow-x features, B = follow-z
            in_a = x_match[None, :] & ~z_match
            in_b = ~x_match[None, :] & z_match
            reachable = (x_match[None, :] | z_match).all(axis=1)
            a_sizes = in_a.sum(axis=1)
            b_sizes = in_b.sum(axis=1)
            valid = reachable & ((a_sizes + b_sizes) > 0)
            if not valid.any():
                continue
            if pos_table is None or pos_table.shape[0] <= k:
                pos_table, neg_table = _factorial_tables(max(k, 16))
            value = float(kernel.values[leaf])
            pos = pos_table[a_sizes, b_sizes] * value
            neg = neg_table[a_sizes, b_sizes] * value
            for j, f in enumerate(order):
                contributions[:, f] += np.where(valid & in_a[:, j], pos, 0.0)
                contributions[:, f] -= np.where(valid & in_b[:, j], neg, 0.0)
        # fold background rows sequentially, then trees in term order —
        # the retained recursion's accumulation structure
        phi_tree = np.zeros(d)
        for row in range(n_background):
            phi_tree += contributions[row]
        out += float(scales[t]) * (phi_tree / n_background)
    return out
