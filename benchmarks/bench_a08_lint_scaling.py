"""A8 (ablation) — xailint incremental-scan scaling (docs/LINTING.md).

Reproduced shape: the linter's cost is dominated by parsing and the
per-function fixpoint analyses (XDB010-XDB013), both pure functions of
one file's bytes and the rule set — so the content-hash cache must turn
a repeat scan of an unchanged repo into pure cache reads:

1. *warm hit rate*: a second scan over the unchanged corpus serves
   >= 90% of files from ``.xailint_cache.json`` (here: all of them)
   and the cross-module rules wholesale from the corpus digest;
2. *speedup*: the warm scan is >= 5x faster than the cold scan (the
   pre-commit-hook latency target);
3. *soundness*: cached and uncached scans are finding-for-finding
   identical — the cache can never change a verdict, only its cost.

The per-rule timing table shows where the cold milliseconds go, which
is what to optimise next if the gate slows.
"""

import time

from pathlib import Path

from benchmarks._tables import print_table
from xaidb.analysis import run_paths

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The repo-standard scan set (mirrors tools/xailint.py defaults).
SCAN_PATHS = [
    REPO_ROOT / name
    for name in ("src", "benchmarks", "examples", "tools")
    if (REPO_ROOT / name).is_dir()
]


def _fingerprint(result):
    return [
        (f.path, f.line, f.col, f.rule_id, f.message)
        for f in result.findings + result.suppressed
    ]


def _timed_scan(cache_path):
    started = time.perf_counter()
    result = run_paths(SCAN_PATHS, root=REPO_ROOT, cache_path=cache_path)
    return result, time.perf_counter() - started


def compute_rows(cache_path):
    cold, cold_seconds = _timed_scan(cache_path)
    warm, warm_seconds = _timed_scan(cache_path)
    uncached, _ = _timed_scan(None)
    speedup = cold_seconds / warm_seconds

    rows = [
        (
            "cold (empty cache)",
            cold.stats.files_scanned,
            f"{cold.stats.hit_rate:.0%}",
            f"{cold_seconds * 1e3:.1f}",
            "1.0x",
        ),
        (
            "warm (unchanged repo)",
            warm.stats.files_scanned,
            f"{warm.stats.hit_rate:.0%}",
            f"{warm_seconds * 1e3:.1f}",
            f"{speedup:.1f}x",
        ),
    ]
    context = {
        "cold": cold,
        "warm": warm,
        "uncached": uncached,
        "speedup": speedup,
        # where the cold milliseconds went, heaviest rule first
        "rule_ms": sorted(
            cold.stats.rule_seconds.items(),
            key=lambda pair: pair[1],
            reverse=True,
        ),
    }
    return rows, context


def test_a08_lint_scaling(benchmark, tmp_path):
    rows, context = benchmark.pedantic(
        compute_rows,
        args=(tmp_path / "xailint_cache.json",),
        rounds=1,
        iterations=1,
    )
    print_table(
        "A8 (ablation): xailint incremental scanning — cold vs warm "
        "full-repo scan (content-hash cache)",
        ["scan", "files", "cache hits", "wall ms", "speedup"],
        rows,
    )
    print_table(
        "A8 (detail): cold-scan time per rule",
        ["rule", "ms"],
        [
            (rule_id, f"{seconds * 1e3:.1f}")
            for rule_id, seconds in context["rule_ms"]
        ],
    )
    cold, warm = context["cold"], context["warm"]
    # the warm scan is (almost) pure cache reads
    assert warm.stats.hit_rate >= 0.9
    assert warm.stats.project_from_cache
    assert warm.stats.cache_misses == 0
    # the pre-commit latency target: >= 5x faster warm (measured ~90x)
    assert context["speedup"] >= 5.0
    # soundness: the cache never changes a verdict
    assert _fingerprint(warm) == _fingerprint(cold)
    assert _fingerprint(warm) == _fingerprint(context["uncached"])
    # the gate this benchmark models is currently green
    assert cold.ok, [f.message for f in cold.findings]
