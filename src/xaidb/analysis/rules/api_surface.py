"""XDB004 — public xaidb modules must declare ``__all__``.

An explicit ``__all__`` is the machine-readable statement of a module's
public surface: ``tools/generate_api_docs.py`` renders from it, star
re-exports respect it, and reviewers can diff API changes instead of
inferring them.  The rule applies to plain modules inside the ``xaidb``
package; ``__init__.py`` re-export hubs and underscore-private modules
(``_version.py``) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["MissingAllRule", "declares_all", "has_public_definitions"]


def declares_all(tree: ast.Module) -> bool:
    """True when the module assigns ``__all__`` at the top level."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return True
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
    return False


def has_public_definitions(tree: ast.Module) -> bool:
    """True when the module defines any public top-level name."""
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if not node.name.startswith("_"):
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and not target.id.startswith(
                    "_"
                ):
                    return True
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if (
                isinstance(target, ast.Name)
                and not target.id.startswith("_")
                and node.value is not None
            ):
                return True
    return False


@register
class MissingAllRule(FileRule):
    rule_id = "XDB004"
    symbol = "missing-dunder-all"
    description = (
        "Public module inside the xaidb package defines public names "
        "but no __all__; the API surface must be explicit."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_xaidb_package:
            return
        stem = ctx.path.stem
        if stem.startswith("_"):  # __init__.py, _version.py, ...
            return
        if declares_all(ctx.tree):
            return
        if not has_public_definitions(ctx.tree):
            return
        yield ctx.finding(
            self,
            ctx.tree.body[0] if ctx.tree.body else ctx.tree,
            f"module {ctx.module_name or stem!s} defines public names "
            f"but no __all__; declare its public surface explicitly",
        )
