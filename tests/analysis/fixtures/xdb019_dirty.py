"""Dirty fixture for XDB019: pooled tasks draw from process-global
randomness and wall-clock state, breaking the seeding contract."""

import time

import numpy as np

from xaidb.runtime import parallel_map

__all__ = ["sample_rows", "stamp_rows"]


def _noisy_task(scale):
    return np.random.normal(scale=scale)  # module-level RNG state


def _stamp_helper():
    return time.time()  # wall clock, one call boundary down


def _stamp_task(index):
    return index + _stamp_helper()


def sample_rows(scales):
    return parallel_map(_noisy_task, scales)  # finding 1


def stamp_rows(indices):
    return parallel_map(_stamp_task, indices)  # finding 2
