import numpy as np
import pytest

from xaidb.data import ConditionalSampler, LimeTabularSampler
from xaidb.exceptions import ValidationError


class TestLimeTabularSampler:
    def test_first_row_is_instance(self, income):
        sampler = LimeTabularSampler(income.dataset)
        x = income.dataset.X[0]
        perturbed, binary = sampler.sample(x, 50, random_state=0)
        assert np.array_equal(perturbed[0], x)
        assert np.all(binary[0] == 1.0)

    def test_shapes(self, income):
        sampler = LimeTabularSampler(income.dataset)
        perturbed, binary = sampler.sample(income.dataset.X[0], 64, random_state=0)
        assert perturbed.shape == (64, income.dataset.n_features)
        assert binary.shape == perturbed.shape
        assert set(np.unique(binary)) <= {0.0, 1.0}

    def test_categorical_perturbations_stay_in_domain(self, income):
        sampler = LimeTabularSampler(income.dataset)
        col = income.dataset.feature_index("gender")
        perturbed, __ = sampler.sample(income.dataset.X[0], 200, random_state=1)
        observed = set(np.unique(income.dataset.X[:, col]))
        assert set(np.unique(perturbed[:, col])) <= observed

    def test_binary_matches_categorical_equality(self, income):
        sampler = LimeTabularSampler(income.dataset)
        col = income.dataset.feature_index("gender")
        x = income.dataset.X[0]
        perturbed, binary = sampler.sample(x, 100, random_state=2)
        assert np.array_equal(
            binary[:, col], (perturbed[:, col] == x[col]).astype(float)
        )

    def test_deterministic_with_seed(self, income):
        sampler = LimeTabularSampler(income.dataset)
        a, __ = sampler.sample(income.dataset.X[0], 30, random_state=3)
        b, __ = sampler.sample(income.dataset.X[0], 30, random_state=3)
        assert np.array_equal(a, b)

    def test_rejects_tiny_sample(self, income):
        sampler = LimeTabularSampler(income.dataset)
        with pytest.raises(ValidationError):
            sampler.sample(income.dataset.X[0], 1)

    def test_rejects_wrong_width(self, income):
        sampler = LimeTabularSampler(income.dataset)
        with pytest.raises(ValidationError):
            sampler.sample(np.zeros(2), 10)

    def test_distances_nonnegative_and_zero_for_instance(self, income):
        sampler = LimeTabularSampler(income.dataset)
        x = income.dataset.X[0]
        perturbed, __ = sampler.sample(x, 30, random_state=4)
        d = sampler.standardised_distances(x, perturbed)
        assert d[0] == pytest.approx(0.0)
        assert np.all(d >= 0)


class TestConditionalSampler:
    def test_fixed_columns_pinned(self, income):
        sampler = ConditionalSampler(income.dataset)
        x = income.dataset.X[0]
        out = sampler.sample(x, [0, 2], 50, random_state=0)
        assert np.all(out[:, 0] == x[0])
        assert np.all(out[:, 2] == x[2])

    def test_unfixed_columns_vary(self, income):
        sampler = ConditionalSampler(income.dataset)
        x = income.dataset.X[0]
        out = sampler.sample(x, [0], 100, random_state=1)
        assert len(np.unique(out[:, 1])) > 1

    def test_samples_come_from_training_rows(self, income):
        sampler = ConditionalSampler(income.dataset)
        out = sampler.sample(income.dataset.X[0], [], 20, random_state=2)
        train_set = {tuple(row) for row in income.dataset.X}
        assert all(tuple(row) in train_set for row in out)

    def test_rejects_bad_columns(self, income):
        sampler = ConditionalSampler(income.dataset)
        with pytest.raises(ValidationError):
            sampler.sample(income.dataset.X[0], [99], 10)
