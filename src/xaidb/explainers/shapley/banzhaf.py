"""Banzhaf values — the other cooperative power index.

Where the Shapley value weights a player's marginal contribution by
coalition size, the Banzhaf value weights all coalitions equally:

    beta_i = (1 / 2^(n-1)) * sum over S not containing i of
             (v(S ∪ {i}) - v(S))

The recent query-answering literature (following the Shapley-of-tuples
line the tutorial cites) studies Banzhaf alongside Shapley because it is
often computationally friendlier and more robust to utility noise.  The
price is the efficiency axiom: Banzhaf values do not generally sum to
``v(N) - v(∅)`` (tests pin down exactly this difference).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Sequence

import numpy as np

from xaidb.db.provenance import Provenance
from xaidb.db.sql_shapley import BooleanQueryGame
from xaidb.exceptions import ValidationError
from xaidb.explainers.shapley.coalitions import sample_uniform_masks
from xaidb.explainers.shapley.games import CachedGame, Game
from xaidb.utils.rng import RandomState, check_random_state

__all__ = [
    "banzhaf_values",
    "banzhaf_values_sampled",
    "banzhaf_of_tuples_boolean",
]

_MAX_EXACT_PLAYERS = 20


def banzhaf_values(game: Game) -> np.ndarray:
    """Exact Banzhaf values by coalition enumeration (O(2^n))."""
    n = game.n_players
    if n > _MAX_EXACT_PLAYERS:
        raise ValidationError(
            f"exact Banzhaf over {n} players is intractable "
            f"(limit {_MAX_EXACT_PLAYERS}); use banzhaf_values_sampled"
        )
    cached = game if isinstance(game, CachedGame) else CachedGame(game)
    players = list(range(n))
    beta = np.zeros(n)
    denominator = 2.0 ** (n - 1)
    for player in players:
        others = [p for p in players if p != player]
        for size in range(n):
            for subset in combinations(others, size):
                beta[player] += (
                    cached.value(subset + (player,)) - cached.value(subset)
                )
    return beta / denominator


def banzhaf_values_sampled(
    game: Game,
    n_samples: int = 500,
    *,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo Banzhaf: sample uniform coalitions, average marginal
    contributions.  Returns (values, standard errors)."""
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1")
    rng = check_random_state(random_state)
    cached = game if isinstance(game, CachedGame) else CachedGame(game)
    n = game.n_players
    # One block draw replays the historical per-sample coin flips
    # bit-for-bit; the with/without coalitions for every (sample,
    # player) pair then come from mask-matrix arithmetic instead of
    # O(n_samples * n^2) Python list scans.
    masks = sample_uniform_masks(rng, n_samples, n)
    eye = np.eye(n, dtype=bool)
    with_player = (masks[:, None, :] | eye[None, :, :]).reshape(-1, n)
    without_player = (masks[:, None, :] & ~eye[None, :, :]).reshape(-1, n)
    stacked = np.concatenate([with_player, without_player])
    # The game is evaluated once per *distinct* coalition — the sampled
    # masks repeat heavily (mask ∪ {p} == mask whenever p is already
    # in, and complements collide across samples) — and each value is
    # produced by the same ``cached.value`` call the scalar loop made,
    # so every matrix entry is bitwise the historical one.
    packed = np.packbits(stacked, axis=1)
    __, first, inverse = np.unique(
        packed, axis=0, return_index=True, return_inverse=True
    )
    unique_values = np.asarray(
        [cached.value(np.flatnonzero(stacked[row])) for row in first]
    )
    scores = unique_values[np.asarray(inverse).ravel()]
    split = n_samples * n
    samples = (scores[:split] - scores[split:]).reshape(n_samples, n)
    values = samples.mean(axis=0)
    if n_samples > 1:
        errors = samples.std(axis=0, ddof=1) / np.sqrt(n_samples)
    else:
        errors = np.full(n, np.nan)
    return values, errors


def banzhaf_of_tuples_boolean(
    provenance: Provenance,
    endogenous: Sequence[Hashable],
    *,
    exogenous=(),
    n_samples: int | None = None,
    random_state: RandomState = None,
) -> dict[Hashable, float]:
    """Banzhaf value of each endogenous tuple for a boolean query answer —
    the power-index alternative to
    :func:`xaidb.db.sql_shapley.shapley_of_tuples_boolean`."""
    if not endogenous:
        raise ValidationError("endogenous tuple list is empty")
    game = CachedGame(
        BooleanQueryGame(provenance, endogenous, exogenous=exogenous)
    )
    if n_samples is None:
        beta = banzhaf_values(game)
    else:
        beta, __ = banzhaf_values_sampled(
            game, n_samples, random_state=random_state
        )
    return dict(zip(endogenous, beta.tolist()))
