"""LIME stability indices (Visani et al. 2020).

The tutorial's §2.1.1 critique — LIME's neighborhood sampling "can be
unreliable" — is quantified by running the explainer repeatedly with
different sampling seeds and measuring:

- **VSI** (Variables Stability Index): mean pairwise Jaccard similarity
  of the top-k feature *sets* across runs (do repeated runs even agree on
  which features matter?);
- **CSI** (Coefficients Stability Index): mean pairwise agreement of the
  coefficient values for features common to both runs (sign agreement
  weighted by relative magnitude closeness).

Both live in [0, 1]; higher = more stable.  E2 sweeps them against the
number of perturbation samples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import FeatureAttribution
from xaidb.utils.validation import check_positive

__all__ = ["variable_stability_index", "coefficient_stability_index"]


def _top_k_sets(attributions: Sequence[FeatureAttribution], k: int) -> list[set]:
    return [
        {name for name, __ in attribution.top(k)} for attribution in attributions
    ]


def variable_stability_index(
    attributions: Sequence[FeatureAttribution], *, top_k: int = 3
) -> float:
    """Mean pairwise Jaccard similarity of top-k feature sets."""
    if len(attributions) < 2:
        raise ValidationError("need at least 2 repeated explanations")
    check_positive(top_k, name="top_k")
    sets = _top_k_sets(attributions, top_k)
    total, count = 0.0, 0
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            union = sets[i] | sets[j]
            if union:
                # xailint: disable=XDB023 (the union truthiness guard excludes the empty set)
                total += len(sets[i] & sets[j]) / len(union)
            else:
                total += 1.0
            count += 1
    # xailint: disable=XDB023 (count >= 1: the >= 2 explanations guard makes the pair loop run)
    return total / count


def coefficient_stability_index(
    attributions: Sequence[FeatureAttribution],
) -> float:
    """Mean pairwise coefficient agreement.

    For each feature and each pair of runs, agreement is 0 when the signs
    differ, otherwise ``min(|a|,|b|) / max(|a|,|b|)`` (1 when identical).
    Features that are zero in both runs count as fully stable.
    """
    if len(attributions) < 2:
        raise ValidationError("need at least 2 repeated explanations")
    names = attributions[0].feature_names
    for attribution in attributions[1:]:
        if attribution.feature_names != names:
            raise ValidationError("attributions cover different features")
    matrix = np.vstack([attribution.values for attribution in attributions])
    n_runs = matrix.shape[0]
    total, count = 0.0, 0
    for i in range(n_runs):
        for j in range(i + 1, n_runs):
            a, b = matrix[i], matrix[j]
            per_feature = np.ones(len(names))
            both_nonzero = (a != 0) | (b != 0)
            for f in np.flatnonzero(both_nonzero):
                if a[f] * b[f] < 0:
                    per_feature[f] = 0.0
                else:
                    hi = max(abs(a[f]), abs(b[f]))
                    lo = min(abs(a[f]), abs(b[f]))
                    per_feature[f] = lo / hi if hi > 0 else 1.0
            total += float(per_feature.mean())
            count += 1
    # xailint: disable=XDB023 (count >= 1: the >= 2 explanations guard makes the pair loop run)
    return total / count
