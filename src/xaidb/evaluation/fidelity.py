"""Fidelity and agreement metrics between explanations and models."""

from __future__ import annotations

import numpy as np
from scipy import stats

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import PredictFn
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["local_fidelity", "rank_correlation"]


def local_fidelity(
    predict_fn: PredictFn,
    surrogate_fn: PredictFn,
    instance: np.ndarray,
    *,
    neighborhood_scale: float = 0.3,
    n_samples: int = 200,
    random_state=None,
) -> float:
    """R^2 of a local surrogate against the black box in a Gaussian
    neighborhood of ``instance`` — the quantity LIME implicitly maximises
    and E1 reports."""
    from xaidb.utils.rng import check_random_state

    instance = check_array(instance, name="instance", ndim=1)
    if n_samples < 10:
        raise ValidationError("n_samples must be >= 10")
    rng = check_random_state(random_state)
    neighborhood = instance[None, :] + rng.normal(
        0.0, neighborhood_scale, size=(n_samples, instance.shape[0])
    )
    truth = np.asarray(predict_fn(neighborhood), dtype=float)
    proxy = np.asarray(surrogate_fn(neighborhood), dtype=float)
    ss_res = float(np.sum((truth - proxy) ** 2))
    ss_tot = float(np.sum((truth - truth.mean()) ** 2))
    # xailint: disable=XDB006 (exact-zero denominator guard)
    if ss_tot == 0.0:
        # xailint: disable=XDB006 (exact-zero numerator of the degenerate R^2 case)
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation between two attribution vectors (by
    absolute importance)."""
    a = check_array(a, name="a", ndim=1)
    b = check_array(b, name="b", ndim=1)
    check_matching_lengths(("a", a), ("b", b))
    rho, __ = stats.spearmanr(np.abs(a), np.abs(b))
    if np.isnan(rho):
        return 0.0
    return float(rho)
