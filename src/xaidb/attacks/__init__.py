"""Adversarial attacks on post-hoc explanation methods (tutorial
§2.1.1's "these components can be exploited to perform adversarial
attacks that render the explanations futile")."""

from xaidb.attacks.fooling import (
    OODDetector,
    ScaffoldedClassifier,
    train_ood_detector,
)
from xaidb.attacks.fragility import (
    FragilityResult,
    fragility_attack,
    top_k_intersection,
)
from xaidb.attacks.manipulation import TrapdooredModel

__all__ = [
    "TrapdooredModel",
    "OODDetector",
    "ScaffoldedClassifier",
    "train_ood_detector",
    "FragilityResult",
    "fragility_attack",
    "top_k_intersection",
]
