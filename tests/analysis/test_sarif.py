"""SARIF reporter: pin the schema/version and the result shape the CI
upload depends on."""

from __future__ import annotations

import json

from xaidb.analysis import (
    SARIF_VERSION,
    lint_source,
    render_sarif,
)
from xaidb.analysis.reporters import SARIF_SCHEMA_URI

DIRTY = "def f(a, bucket=[]):\n    return bucket + [a]\n"


def _document(source: str) -> dict:
    return json.loads(render_sarif(lint_source(source)))


def test_schema_and_version_are_pinned():
    doc = _document(DIRTY)
    assert SARIF_VERSION == "2.1.0"
    assert doc["version"] == SARIF_VERSION
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(doc["runs"]) == 1


def test_driver_carries_the_full_rule_pack():
    doc = _document(DIRTY)
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "xailint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"XDB001", "XDB010", "XDB011", "XDB012", "XDB013"} <= set(
        rule_ids
    )
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "error",
            "warning",
        )


def test_results_reference_rules_and_locations():
    doc = _document(DIRTY)
    results = doc["runs"][0]["results"]
    assert len(results) == 1
    entry = results[0]
    assert entry["ruleId"] == "XDB007"
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["rules"][entry["ruleIndex"]]["id"] == "XDB007"
    assert entry["level"] in ("error", "warning")
    location = entry["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "<string>"
    assert location["region"]["startLine"] == 1
    assert location["region"]["startColumn"] >= 1  # SARIF is 1-based


def test_clean_scan_yields_empty_results_array():
    doc = _document("VALUE = 1\n")
    assert doc["runs"][0]["results"] == []
