"""Dirty fixture for XDB028: estimator use provably before fit, once
directly and once through a helper (the finding carries the witness
line inside the helper)."""

__all__ = ["untrained_predictions", "untrained_scores"]


class RidgeModel:
    """Structurally an estimator: has fit plus a use method."""

    def __init__(self):
        self.coef_ = None

    def fit(self, X, y):
        self.coef_ = [sum(row) for row in X]
        return self

    def predict(self, X):
        return [sum(row) for row in X]


def _score_all(model, X):
    # the summary exports the obligation: predict() is illegal while
    # the argument is still unfitted
    return model.predict(X)


def untrained_predictions(X):
    model = RidgeModel()
    return model.predict(X)  # finding 1: never fitted on any path


def untrained_scores(X):
    model = RidgeModel()
    return _score_all(model, X)  # finding 2: illegal inside the helper
