"""Shapley-of-tuples over *derived* relations: queries composed of
select/join/aggregate must attribute through the provenance correctly."""

import numpy as np
import pytest

from xaidb.db import (
    Relation,
    aggregate,
    join,
    select,
    shapley_of_tuples,
)


@pytest.fixture()
def database():
    orders = Relation.from_dicts(
        "orders",
        [
            {"customer": "ann", "amount": 100.0},
            {"customer": "ann", "amount": 50.0},
            {"customer": "bob", "amount": 200.0},
        ],
    )
    customers = Relation.from_dicts(
        "cust",
        [{"customer": "ann", "tier": "gold"}, {"customer": "bob", "tier": "basic"}],
    )
    return orders, customers


class TestRestrictOnDerivedRelations:
    def test_join_rows_need_both_parents(self, database):
        orders, customers = database
        joined = join(orders, customers, on=["customer"])
        # world without the ann customer tuple: ann's orders are dangling
        world = set(joined.tuple_ids()) - {"cust:0"}
        restricted = joined.restrict_to(world)
        assert sorted(set(restricted.column_values("customer"))) == ["bob"]

    def test_restrict_preserves_full_world(self, database):
        orders, customers = database
        joined = join(orders, customers, on=["customer"])
        assert len(joined.restrict_to(joined.tuple_ids())) == len(joined)


class TestShapleyThroughJoin:
    def test_gold_revenue_attribution(self, database):
        """SUM(amount) over gold-tier orders: each gold order tuple and
        the gold customer tuple share the credit; basic-tier tuples get
        exactly zero."""
        orders, customers = database
        joined_full = join(orders, customers, on=["customer"])

        def gold_revenue(rel: Relation) -> float:
            gold = select(rel, lambda r: r["tier"] == "gold")
            return aggregate(gold, "sum", "amount")

        phi = shapley_of_tuples(joined_full, gold_revenue)
        # efficiency: total = 150 (ann's two orders)
        assert sum(phi.values()) == pytest.approx(150.0)
        # basic-tier tuples contribute nothing
        assert phi["orders:2"] == pytest.approx(0.0)
        assert phi["cust:1"] == pytest.approx(0.0)
        # ann's customer tuple is pivotal for both her orders: it earns
        # half of each order's value (order and customer tuple split)
        assert phi["cust:0"] == pytest.approx(75.0)
        assert phi["orders:0"] == pytest.approx(50.0)
        assert phi["orders:1"] == pytest.approx(25.0)

    def test_endogenous_orders_only(self, database):
        """With the customer table exogenous, order tuples carry their
        full amounts."""
        orders, customers = database
        joined = join(orders, customers, on=["customer"])

        def gold_revenue(rel: Relation) -> float:
            gold = select(rel, lambda r: r["tier"] == "gold")
            return aggregate(gold, "sum", "amount")

        phi = shapley_of_tuples(
            joined,
            gold_revenue,
            endogenous=["orders:0", "orders:1", "orders:2"],
        )
        assert phi["orders:0"] == pytest.approx(100.0)
        assert phi["orders:1"] == pytest.approx(50.0)
        assert phi["orders:2"] == pytest.approx(0.0)
