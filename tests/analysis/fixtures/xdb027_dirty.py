"""Dirty fixture for XDB027: constant-numerator reciprocal scales
whose denominator interval contains 0."""

import numpy as np

__all__ = ["hit_rates", "uniform_share"]


def hit_rates(indices):
    counts = np.zeros(8)
    for index in indices:
        counts[index] += 1.0  # weak update: counts stays >= 0
    return 1.0 / counts  # finding 1: an unhit bucket is still 0


def uniform_share(weights):
    return 1.0 / len(weights)  # finding 2: len() can be 0
