"""XDB004 dirty fixture: public definitions but no __all__.

Linted as if it lived inside the xaidb package.
"""


def public_function() -> int:
    return 1


class PublicClass:
    pass
