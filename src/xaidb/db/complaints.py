"""Complaint-driven training-data debugging (Wu et al. 2020, "Rain";
tutorial §3 "Data-Based Explanations").

Setting: an analyst runs an aggregate query over a table that *includes
model predictions* (Query 2.0) and complains that a result is wrong —
"the approval rate for this group looks too high".  The system must find
the training tuples most responsible for the complaint.

Rain relaxes the complaint to a differentiable function of the model and
chains it through influence functions:

    d complaint / d (weight of training point i)
        = grad_theta complaint . H^{-1} grad_i

Training points are ranked by how much *upweighting* them moves the query
result in the complained-about direction; deleting the top-ranked points
and retraining is the proposed fix.  With label corruption planted by the
E18 benchmark, recall@k of the corrupted rows is the headline metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from xaidb.datavaluation.influence import InfluenceFunctions
from xaidb.exceptions import ValidationError
from xaidb.models.base import clone
from xaidb.models.logistic import LogisticRegression
from xaidb.utils.linalg import sigmoid, solve_psd
from xaidb.utils.validation import check_array

__all__ = ["Complaint", "ComplaintDebugger"]


@dataclass
class Complaint:
    """A directional complaint about an aggregate over model predictions.

    ``query_rows`` selects the rows of the serving table the aggregate
    ranges over; the aggregate is the mean predicted positive probability
    over them (the differentiable relaxation of a COUNT/率 predicate).
    ``direction`` is +1 for "this result is too LOW (should be higher)"
    and -1 for "too HIGH (should be lower)".
    """

    query_rows: np.ndarray  # indices into the serving matrix
    direction: int  # +1 too low, -1 too high
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in (-1, 1):
            raise ValidationError("direction must be +1 (too low) or -1 (too high)")


class ComplaintDebugger:
    """Rank training tuples by their influence on a complaint.

    Parameters
    ----------
    model:
        Fitted :class:`LogisticRegression` serving the predictions.
    X_train, y_train:
        The (possibly corrupted) training data behind the model.
    X_serve:
        The serving table the analyst queries (features only; predictions
        come from the model).
    """

    def __init__(
        self,
        model: LogisticRegression,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_serve: np.ndarray,
    ) -> None:
        self.model = model
        self.X_train = check_array(X_train, name="X_train", ndim=2)
        self.y_train = check_array(y_train, name="y_train", ndim=1)
        self.X_serve = check_array(X_serve, name="X_serve", ndim=2)
        self.influence = InfluenceFunctions(model, self.X_train, self.y_train)

    # ------------------------------------------------------------------
    def query_value(self, complaint: Complaint) -> float:
        """Current value of the complained-about aggregate."""
        rows = self.X_serve[complaint.query_rows]
        return float(np.mean(self.model.predict_proba(rows)[:, 1]))

    def _complaint_gradient(self, complaint: Complaint) -> np.ndarray:
        """Gradient of the aggregate w.r.t. model parameters."""
        rows = self.X_serve[complaint.query_rows]
        design = (
            np.column_stack([rows, np.ones(rows.shape[0])])
            if self.model.fit_intercept
            else rows
        )
        probabilities = sigmoid(design @ self.model.theta_)
        weights = probabilities * (1.0 - probabilities)
        return (design * weights[:, None]).mean(axis=0)

    def rank_training_points(self, complaint: Complaint) -> np.ndarray:
        """Training rows ordered by blame (most responsible first).

        A point is blamed when *removing* it would move the aggregate in
        the complainant's desired direction: the removal effect on the
        aggregate is ``+grad_q . H^{-1} g_i / n``, so we rank by
        ``direction * removal_effect`` descending.
        """
        query_gradient = self._complaint_gradient(complaint)
        influence_direction = solve_psd(
            self.influence.hessian_, query_gradient
        )
        removal_effects = (
            self.influence.gradients_ @ influence_direction
        ) / self.influence.n
        scores = complaint.direction * removal_effects
        return np.argsort(-scores, kind="mergesort")

    # ------------------------------------------------------------------
    def fix(
        self,
        complaint: Complaint,
        *,
        n_remove: int,
    ) -> tuple["LogisticRegression", np.ndarray, float, float]:
        """Delete the top-``n_remove`` blamed rows, retrain, and report.

        Returns ``(retrained_model, removed_indices, value_before,
        value_after)``.
        """
        if not 1 <= n_remove < len(self.y_train):
            raise ValidationError("n_remove out of range")
        before = self.query_value(complaint)
        blamed = self.rank_training_points(complaint)[:n_remove]
        keep = np.setdiff1d(np.arange(len(self.y_train)), blamed)
        retrained = clone(self.model)
        retrained.fit(self.X_train[keep], self.y_train[keep])
        rows = self.X_serve[complaint.query_rows]
        after = float(np.mean(retrained.predict_proba(rows)[:, 1]))
        return retrained, blamed, before, after

    @staticmethod
    def recall_at_k(
        ranking: Sequence[int], corrupted: Sequence[int], k: int
    ) -> float:
        """Fraction of truly corrupted rows found in the top-k of the
        blame ranking — E18's headline metric."""
        if k < 1:
            raise ValidationError("k must be >= 1")
        top = set(int(i) for i in list(ranking)[:k])
        truth = set(int(i) for i in corrupted)
        if not truth:
            raise ValidationError("corrupted set is empty")
        # xailint: disable=XDB023 (the empty corrupted-set guard above raises first)
        return len(top & truth) / len(truth)
