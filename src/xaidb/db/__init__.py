"""Mini relational engine with provenance, and the §3 data-management
explanation techniques built on it: Shapley values of tuples in query
answering, responsibility-based explanations of query results, and
complaint-driven debugging of training data behind query answers."""

from xaidb.db.algebra import (
    aggregate,
    difference,
    groupby,
    join,
    project,
    select,
    union,
)
from xaidb.db.complaints import Complaint, ComplaintDebugger
from xaidb.db.provenance import Provenance
from xaidb.db.query_explain import (
    aggregate_interventions,
    responsibility,
    why_not_provenance,
    why_provenance,
)
from xaidb.db.relation import Relation, Row
from xaidb.db.repairs import (
    FunctionalDependency,
    greedy_repair,
    inconsistency_count,
    repair_blame,
    violating_pairs,
)
from xaidb.db.sql_shapley import (
    BooleanQueryGame,
    shapley_of_tuples,
    shapley_of_tuples_boolean,
)

__all__ = [
    "Relation",
    "Row",
    "Provenance",
    "select",
    "project",
    "join",
    "union",
    "difference",
    "groupby",
    "aggregate",
    "shapley_of_tuples",
    "shapley_of_tuples_boolean",
    "BooleanQueryGame",
    "responsibility",
    "why_provenance",
    "why_not_provenance",
    "aggregate_interventions",
    "Complaint",
    "ComplaintDebugger",
    "FunctionalDependency",
    "violating_pairs",
    "inconsistency_count",
    "repair_blame",
    "greedy_repair",
]
