"""xaidb.runtime — the shared evaluation substrate (tutorial cost model).

Every perturbation-based explanation method the tutorial surveys spends
its budget the same way: many model evaluations over perturbed inputs.
This package is where that budget is managed for the whole system:

- :class:`GameRuntime` — batch-aware coalition/value memoisation with
  bounded-memory chunked evaluation (``max_batch_rows``);
- :class:`CoalitionCache` — the underlying mask-keyed memo store;
- :func:`parallel_map` — opt-in, seed-deterministic pooled map for
  embarrassingly parallel outer loops (TMC permutations, permutation
  draws, multi-instance batches), riding the persistent
  :class:`WorkerPool` so workers survive across calls;
- :class:`WorkerPool` / :class:`SharedArrayRef` — the lazy pool
  singleton and its shared-memory arena: large read-only arrays
  (background data, instance batches) cross the process boundary once
  per worker instead of once per task;
- :class:`EvalStats` — the evaluation ledger (``n_model_evals``,
  ``cache_hit_rate``, ``wall_time_s``) surfaced in every
  :class:`~xaidb.explainers.base.FeatureAttribution`'s metadata;
- :class:`RuntimeConfig` — the knobs, one object threaded through all
  consumers.

See ``docs/RUNTIME.md`` and ``docs/PERFORMANCE.md`` for the full tour.
"""

from xaidb.runtime.cache import CoalitionCache
from xaidb.runtime.evaluator import GameRuntime, RuntimeConfig
from xaidb.runtime.parallel import (
    SharedArrayRef,
    WorkerPool,
    parallel_map,
    resolve_shared,
)
from xaidb.runtime.stats import EvalStats

__all__ = [
    "CoalitionCache",
    "EvalStats",
    "GameRuntime",
    "RuntimeConfig",
    "SharedArrayRef",
    "WorkerPool",
    "parallel_map",
    "resolve_shared",
]
