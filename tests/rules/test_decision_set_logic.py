import numpy as np
import pytest

from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.models import DecisionTreeClassifier, accuracy
from xaidb.rules import (
    DecisionSetClassifier,
    all_sufficient_reasons,
    is_sufficient_reason,
    necessary_features,
    sufficient_reason,
)


class TestDecisionSetClassifier:
    @pytest.fixture(scope="class")
    def fitted(self, income):
        return DecisionSetClassifier(
            max_rules=6, max_rule_length=2, random_state=0
        ).fit(income.dataset)

    def test_beats_majority_baseline(self, fitted, income):
        majority = max(income.dataset.y.mean(), 1 - income.dataset.y.mean())
        acc = accuracy(income.dataset.y, fitted.predict(income.dataset.X))
        assert acc > majority

    def test_respects_rule_budget(self, fitted):
        assert len(fitted.rules_) <= 6
        assert all(rule.length <= 2 for rule in fitted.rules_)

    def test_describe_renders_rules(self, fitted):
        text = fitted.describe()
        assert "IF " in text
        assert "ELSE class=" in text

    def test_rules_meet_min_precision(self, fitted):
        assert all(rule.precision >= 0.55 for rule in fitted.rules_)

    def test_predict_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionSetClassifier().predict(np.ones((1, 2)))

    def test_unlabelled_dataset_rejected(self, income):
        from xaidb.data import Dataset

        unlabelled = Dataset(X=income.dataset.X, features=income.dataset.features)
        with pytest.raises(ValidationError):
            DecisionSetClassifier().fit(unlabelled)

    def test_deterministic(self, income):
        a = DecisionSetClassifier(max_rules=4, random_state=3).fit(income.dataset)
        b = DecisionSetClassifier(max_rules=4, random_state=3).fit(income.dataset)
        assert a.describe() == b.describe()

    def test_total_length_property(self, fitted):
        assert fitted.total_length == sum(r.length for r in fitted.rules_)

    def test_interpretability_penalty_shrinks_sets(self, income):
        lax = DecisionSetClassifier(
            max_rules=8, lambda_length=0.0, random_state=1
        ).fit(income.dataset)
        strict = DecisionSetClassifier(
            max_rules=8, lambda_length=0.2, random_state=1
        ).fit(income.dataset)
        assert strict.total_length <= lax.total_length


class TestSufficientReasons:
    @pytest.fixture(scope="class")
    def tree_and_instance(self, income):
        model = DecisionTreeClassifier(max_depth=4, random_state=0).fit(
            income.dataset.X, income.dataset.y
        )
        return model, income.dataset.X[3]

    def test_full_feature_set_is_sufficient(self, tree_and_instance, income):
        model, x = tree_and_instance
        assert is_sufficient_reason(model, x, range(income.dataset.n_features))

    def test_greedy_reason_is_minimal(self, tree_and_instance):
        model, x = tree_and_instance
        reason = sufficient_reason(model, x)
        assert is_sufficient_reason(model, x, reason, require_minimal=True)

    def test_empty_set_usually_insufficient(self, tree_and_instance):
        model, x = tree_and_instance
        # a depth-4 tree on real data has both classes among leaves
        assert not is_sufficient_reason(model, x, [])

    def test_all_reasons_are_minimal_and_sufficient(self, tree_and_instance):
        model, x = tree_and_instance
        reasons = all_sufficient_reasons(model, x)
        assert reasons
        for reason in reasons:
            assert is_sufficient_reason(model, x, reason, require_minimal=True)

    def test_no_reason_subsumes_another(self, tree_and_instance):
        model, x = tree_and_instance
        reasons = [frozenset(r) for r in all_sufficient_reasons(model, x)]
        for i, a in enumerate(reasons):
            for j, b in enumerate(reasons):
                if i != j:
                    assert not a < b

    def test_necessary_equals_intersection_of_all_reasons(self, tree_and_instance):
        model, x = tree_and_instance
        reasons = all_sufficient_reasons(model, x)
        intersection = set(reasons[0])
        for reason in reasons[1:]:
            intersection &= set(reason)
        assert set(necessary_features(model, x)) == intersection

    def test_greedy_respects_preference_order(self, income):
        """Dropping preferred features first yields a reason avoiding them
        when possible."""
        model = DecisionTreeClassifier(max_depth=3, random_state=1).fit(
            income.dataset.X, income.dataset.y
        )
        x = income.dataset.X[11]
        d = income.dataset.n_features
        reasons = all_sufficient_reasons(model, x)
        if len(reasons) > 1:
            # ask to drop the features of the first reason first
            target = reasons[1]
            order = [f for f in range(d) if f not in target] + list(target)
            greedy = sufficient_reason(model, x, preference_order=order)
            assert is_sufficient_reason(model, x, greedy, require_minimal=True)

    def test_preference_order_validated(self, tree_and_instance):
        model, x = tree_and_instance
        with pytest.raises(ValidationError):
            sufficient_reason(model, x, preference_order=[0, 0, 1])

    def test_stump_reason_is_its_feature(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = (X[:, 1] > 0).astype(float)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        x = X[0]
        assert sufficient_reason(stump, x) == [1]
        assert necessary_features(stump, x) == [1]
