import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.shapley import (
    KernelShapExplainer,
    PermutationShapleyExplainer,
    exact_shapley_values,
    permutation_shapley_values,
)
from xaidb.explainers.shapley.games import CachedGame, FunctionGame


def glove_game():
    return FunctionGame(
        3, lambda s: 1.0 if 0 in s and (1 in s or 2 in s) else 0.0
    )


class TestPermutationSampling:
    def test_converges_to_exact(self):
        game = CachedGame(glove_game())
        phi, __ = permutation_shapley_values(game, 4000, random_state=0)
        assert np.allclose(phi, [2 / 3, 1 / 6, 1 / 6], atol=0.02)

    def test_efficiency_holds_per_sample(self):
        """Every permutation's marginals telescope, so efficiency is exact
        regardless of the number of samples."""
        game = CachedGame(glove_game())
        phi, __ = permutation_shapley_values(game, 3, random_state=1)
        assert phi.sum() == pytest.approx(
            game.grand_value() - game.empty_value()
        )

    def test_antithetic_reduces_variance(self):
        game = FunctionGame(6, lambda s: float(len(s)) ** 2)

        def spread(antithetic):
            estimates = [
                permutation_shapley_values(
                    CachedGame(game),
                    20,
                    antithetic=antithetic,
                    random_state=seed,
                )[0]
                for seed in range(15)
            ]
            return float(np.vstack(estimates).std(axis=0).mean())

        assert spread(True) <= spread(False) + 1e-9

    def test_standard_errors_shrink(self):
        game = CachedGame(glove_game())
        __, few = permutation_shapley_values(game, 20, random_state=2)
        __, many = permutation_shapley_values(game, 2000, random_state=2)
        assert many.mean() < few.mean()

    def test_rejects_zero_permutations(self):
        with pytest.raises(ValidationError):
            permutation_shapley_values(glove_game(), 0)

    def test_explainer_reports_errors(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        explainer = PermutationShapleyExplainer(
            f, income.dataset.X[:10], n_permutations=20
        )
        att = explainer.explain(income.dataset.X[0], random_state=0)
        assert len(att.metadata["standard_errors"]) == income.dataset.n_features


class TestKernelShap:
    def test_exhaustive_matches_exact(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        background = income.dataset.X[:15]
        x = income.dataset.X[4]
        from xaidb.explainers.shapley import ExactShapleyExplainer

        exact = ExactShapleyExplainer(f, background).explain(x)
        kernel = KernelShapExplainer(f, background).explain(x, random_state=0)
        assert np.allclose(exact.values, kernel.values, atol=1e-8)
        assert kernel.metadata["exhaustive"]

    def test_sampled_mode_close_to_exact(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        background = income.dataset.X[:10]
        x = income.dataset.X[4]
        from xaidb.explainers.shapley import ExactShapleyExplainer

        exact = ExactShapleyExplainer(f, background).explain(x)
        kernel = KernelShapExplainer(f, background, n_coalitions=60).explain(
            x, random_state=1
        )
        assert not kernel.metadata["exhaustive"]
        assert np.allclose(exact.values, kernel.values, atol=0.05)

    def test_efficiency_exact_even_when_sampled(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        kernel = KernelShapExplainer(
            f, income.dataset.X[:10], n_coalitions=40
        ).explain(income.dataset.X[0], random_state=2)
        assert kernel.additive_check(atol=1e-10)

    def test_symmetric_features_get_equal_values(self):
        """f = x0 + x1 with identical background columns: phi0 == phi1."""

        def f(X):
            return X[:, 0] + X[:, 1]

        background = np.zeros((5, 3))
        x = np.asarray([2.0, 2.0, 9.0])
        kernel = KernelShapExplainer(f, background).explain(x)
        assert kernel.values[0] == pytest.approx(kernel.values[1], abs=1e-8)
        assert kernel.values[2] == pytest.approx(0.0, abs=1e-8)

    def test_needs_two_features(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        explainer = KernelShapExplainer(f, np.zeros((3, 1)))
        with pytest.raises(ValidationError):
            explainer.explain(np.zeros(1))

    def test_rejects_tiny_budget(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        with pytest.raises(ValidationError):
            KernelShapExplainer(f, income.dataset.X[:5], n_coalitions=2)

    def test_sampled_coalitions_aggregate_duplicates(self):
        """Regression: duplicate sampled masks used to enter the design
        as independent unit-weight rows (each re-evaluated); they must be
        unique masks whose weights carry the multiplicity."""
        d = 12
        explainer = KernelShapExplainer(
            lambda X: X.sum(axis=1), np.zeros((3, d)), n_coalitions=512
        )
        masks, weights = explainer._sample_coalitions(d, 0)
        assert len(np.unique(masks, axis=0)) == len(masks)
        # multiplicity is conserved: the weights sum to the draw count
        assert weights.sum() == pytest.approx(2 * (512 // 2))
        assert np.all(weights >= 1.0)

    def test_duplicate_aggregation_preserves_wls_solution(self):
        """k copies at weight 1 and one copy at weight k solve the same
        normal equations: the attribution must not depend on how the
        sampler reports multiplicity."""
        d = 12
        rng = np.random.default_rng(2)
        w = rng.normal(size=d)
        explainer = KernelShapExplainer(
            lambda X: X @ w, rng.normal(size=(6, d)), n_coalitions=256
        )
        instance = rng.normal(size=d)
        masks, weights = explainer._sample_coalitions(d, 3)
        base, full = 0.0, 1.0
        values = rng.normal(size=len(masks))
        aggregated = explainer._solve(masks, values, weights, base, full)
        # expand each mask back to its multiplicity at unit weight
        repeat = weights.astype(int)
        expanded = explainer._solve(
            np.repeat(masks, repeat, axis=0),
            np.repeat(values, repeat),
            np.ones(int(repeat.sum())),
            base,
            full,
        )
        assert np.allclose(aggregated, expanded, atol=1e-8)
