"""Synthetic tabular workloads with ground-truth causal structure.

The tutorial's running examples are credit scoring, income prediction and
recidivism — datasets (UCI Adult, German credit, ProPublica COMPAS) that we
cannot ship offline.  Each generator here builds a *structural* analogue:
a hand-specified SCM whose joint distribution mirrors the qualitative
structure of the original (correlated demographics, protected attributes
with indirect paths, noisy labels), so that

- explainer experiments have **known ground truth** (true coefficients,
  true causal orderings, features that are dummies by construction), and
- every run is exactly reproducible from a seed.

Each generator returns a :class:`SyntheticWorkload` bundling the sampled
:class:`~xaidb.data.dataset.Dataset`, the generating
:class:`~xaidb.causal.scm.StructuralCausalModel` and the ground-truth
metadata that tests and benchmarks assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from xaidb.causal.graph import CausalGraph
from xaidb.causal.scm import (
    AdditiveNoiseMechanism,
    BernoulliMechanism,
    DiscreteMechanism,
    StructuralCausalModel,
)
from xaidb.data.dataset import Dataset, FeatureSpec
from xaidb.exceptions import ValidationError
from xaidb.utils.linalg import sigmoid
from xaidb.utils.rng import RandomState, check_random_state

__all__ = [
    "SyntheticWorkload",
    "make_income",
    "make_credit",
    "make_recidivism",
    "make_loans",
    "make_two_moons",
]


@dataclass
class SyntheticWorkload:
    """A generated dataset plus everything needed to verify explanations.

    Attributes
    ----------
    dataset:
        The sampled tabular data (labels included).
    scm:
        The generating structural causal model (label node included).
    graph:
        Convenience handle to ``scm.graph``.
    label_node:
        Name of the label variable inside the SCM.
    true_label_weights:
        For workloads whose label is a logistic function of features, the
        ground-truth weight per feature name (0.0 marks a dummy feature).
    notes:
        Free-form metadata for experiments (e.g. which feature is
        protected).
    """

    dataset: Dataset
    scm: StructuralCausalModel
    label_node: str
    true_label_weights: dict[str, float] = field(default_factory=dict)
    notes: dict[str, Any] = field(default_factory=dict)

    @property
    def graph(self) -> CausalGraph:
        return self.scm.graph

    def resample(self, n: int, random_state: RandomState = None) -> Dataset:
        """Draw a fresh dataset of ``n`` rows from the same SCM."""
        return _scm_to_dataset(
            self.scm,
            self.dataset.features,
            self.label_node,
            n,
            random_state,
            target_classes=self.dataset.target_classes,
        )


def _scm_to_dataset(
    scm: StructuralCausalModel,
    features: list[FeatureSpec],
    label_node: str,
    n: int,
    random_state: RandomState,
    *,
    target_classes: tuple[Any, ...] | None,
) -> Dataset:
    columns = scm.sample(n, random_state=random_state)
    matrix = np.column_stack([columns[spec.name] for spec in features])
    return Dataset(
        X=matrix,
        y=columns[label_node].astype(float),
        features=features,
        target_name=label_node,
        target_classes=target_classes,
    )


# ----------------------------------------------------------------------
# Income (Adult-like)
# ----------------------------------------------------------------------
def make_income(
    n: int = 2000,
    *,
    random_state: RandomState = None,
    noise_scale: float = 1.0,
) -> SyntheticWorkload:
    """Adult-census-like income workload.

    Causal structure (standardised units)::

        age -> education -> income ; age -> hours ; gender -> occupation
        education -> occupation    ; hours, occupation, capital_gain -> income

    ``gender`` has **no direct edge to income** — only the indirect path
    through occupation — which is exactly the structure causal-Shapley
    experiments (E6) need to separate direct from indirect effects.
    ``capital_gain`` is heavy-tailed; ``random_noise`` is a pure dummy
    feature with zero weight, giving Shapley-axiom tests a known null.
    """
    rng = check_random_state(random_state)
    weights = {
        "age": 0.30,
        "education": 0.80,
        "hours": 0.50,
        "occupation": 0.60,
        "gender": 0.0,
        "capital_gain": 0.40,
        "random_noise": 0.0,
    }
    graph = CausalGraph(
        nodes=[
            "age",
            "gender",
            "education",
            "hours",
            "occupation",
            "capital_gain",
            "random_noise",
            "income",
        ],
        edges=[
            ("age", "education"),
            ("age", "hours"),
            ("gender", "occupation"),
            ("education", "occupation"),
            ("age", "income"),
            ("education", "income"),
            ("hours", "income"),
            ("occupation", "income"),
            ("capital_gain", "income"),
        ],
    )
    mechanisms = {
        "age": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "gender": BernoulliMechanism(lambda p: 0.5),
        "capital_gain": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "random_noise": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "education": AdditiveNoiseMechanism(
            lambda p: 0.5 * p["age"], noise_scale=noise_scale
        ),
        "hours": AdditiveNoiseMechanism(
            lambda p: 0.4 * p["age"], noise_scale=noise_scale
        ),
        "occupation": AdditiveNoiseMechanism(
            lambda p: 0.6 * p["education"] + 0.7 * (2.0 * p["gender"] - 1.0),
            noise_scale=noise_scale,
        ),
        "income": BernoulliMechanism(
            lambda p: sigmoid(
                weights["age"] * p["age"]
                + weights["education"] * p["education"]
                + weights["hours"] * p["hours"]
                + weights["occupation"] * p["occupation"]
                + weights["capital_gain"] * p["capital_gain"]
            )
        ),
    }
    scm = StructuralCausalModel(graph, mechanisms)
    features = [
        FeatureSpec("age"),
        FeatureSpec("education", monotone=1),
        FeatureSpec("hours"),
        FeatureSpec("occupation"),
        FeatureSpec(
            "gender",
            kind="categorical",
            categories=("female", "male"),
            actionable=False,
        ),
        FeatureSpec("capital_gain"),
        FeatureSpec("random_noise"),
    ]
    dataset = _scm_to_dataset(
        scm, features, "income", n, rng, target_classes=("<=50K", ">50K")
    )
    return SyntheticWorkload(
        dataset=dataset,
        scm=scm,
        label_node="income",
        true_label_weights={spec.name: weights[spec.name] for spec in features},
        notes={
            "protected": "gender",
            "dummy_features": ["random_noise", "gender"],
            "indirect_only": {"gender": "occupation"},
        },
    )


# ----------------------------------------------------------------------
# Credit (German-credit-like)
# ----------------------------------------------------------------------
def make_credit(
    n: int = 2000,
    *,
    random_state: RandomState = None,
    noise_scale: float = 1.0,
) -> SyntheticWorkload:
    """German-credit-like loan-approval workload.

    Designed for counterfactual/recourse experiments (E8/E9): ``savings``
    and ``employment_years`` are actionable with monotone-up constraints,
    ``age`` is immutable, ``housing`` is categorical, and the label has a
    crisp logistic form so validity of generated counterfactuals can be
    checked against ground truth.
    """
    rng = check_random_state(random_state)
    weights = {
        "duration": -0.7,
        "amount": -0.5,
        "savings": 0.9,
        "employment_years": 0.6,
        "age": 0.2,
        "housing": 0.3,
    }
    graph = CausalGraph(
        nodes=[
            "age",
            "employment_years",
            "savings",
            "amount",
            "duration",
            "housing",
            "credit",
        ],
        edges=[
            ("age", "employment_years"),
            ("employment_years", "savings"),
            ("amount", "duration"),
            ("age", "housing"),
            ("duration", "credit"),
            ("amount", "credit"),
            ("savings", "credit"),
            ("employment_years", "credit"),
            ("age", "credit"),
            ("housing", "credit"),
        ],
    )
    mechanisms = {
        "age": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "amount": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "employment_years": AdditiveNoiseMechanism(
            lambda p: 0.6 * p["age"], noise_scale=noise_scale
        ),
        "savings": AdditiveNoiseMechanism(
            lambda p: 0.5 * p["employment_years"], noise_scale=noise_scale
        ),
        "duration": AdditiveNoiseMechanism(
            lambda p: 0.6 * p["amount"], noise_scale=noise_scale
        ),
        "housing": DiscreteMechanism(
            categories=(0.0, 1.0, 2.0),
            probs=lambda p: np.column_stack(
                [
                    sigmoid(-p["age"]) * 0.5 + 0.1,
                    np.full_like(p["age"], 0.3),
                    sigmoid(p["age"]) * 0.5 + 0.1,
                ]
            ),
        ),
        "credit": BernoulliMechanism(
            lambda p: sigmoid(
                weights["duration"] * p["duration"]
                + weights["amount"] * p["amount"]
                + weights["savings"] * p["savings"]
                + weights["employment_years"] * p["employment_years"]
                + weights["age"] * p["age"]
                + weights["housing"] * (p["housing"] - 1.0)
            )
        ),
    }
    scm = StructuralCausalModel(graph, mechanisms)
    features = [
        FeatureSpec("duration"),
        FeatureSpec("amount"),
        FeatureSpec("savings", monotone=1),
        FeatureSpec("employment_years", monotone=1),
        FeatureSpec("age", actionable=False),
        FeatureSpec(
            "housing", kind="categorical", categories=("rent", "free", "own")
        ),
    ]
    dataset = _scm_to_dataset(
        scm, features, "credit", n, rng, target_classes=("bad", "good")
    )
    return SyntheticWorkload(
        dataset=dataset,
        scm=scm,
        label_node="credit",
        true_label_weights={spec.name: weights[spec.name] for spec in features},
        notes={"immutable": ["age"], "monotone_up": ["savings", "employment_years"]},
    )


# ----------------------------------------------------------------------
# Recidivism (COMPAS-like)
# ----------------------------------------------------------------------
def make_recidivism(
    n: int = 2000,
    *,
    biased: bool = False,
    discrete: bool = False,
    random_state: RandomState = None,
    noise_scale: float = 1.0,
) -> SyntheticWorkload:
    """COMPAS-like recidivism workload with a protected ``race`` attribute.

    With ``biased=False`` (default) the label depends on ``priors``, ``age``
    and ``charge_degree`` only — race is correlated with priors (confounded
    history) but has **no causal effect** on the label.  With
    ``biased=True`` the label additionally depends directly on race, the
    setting the scaffolding-attack experiment (E19) needs: a biased model
    whose bias an adversary tries to hide from post-hoc explainers.

    ``discrete=True`` rounds the numeric columns (``age``, ``priors``)
    onto an integer lattice, mimicking the real COMPAS table (integer age
    and prior counts).  This is the property the scaffolding attack
    exploits: marginal-sampling perturbations land off the lattice, so
    real and perturbed rows are cleanly separable.
    """
    rng = check_random_state(random_state)
    race_weight = 1.5 if biased else 0.0
    weights = {
        "age": -0.4,
        "priors": 1.0,
        "charge_degree": 0.6,
        "race": race_weight,
        "gender": 0.0,
    }
    graph = CausalGraph(
        nodes=["age", "race", "gender", "priors", "charge_degree", "recid"],
        edges=[
            ("age", "priors"),
            ("race", "priors"),
            ("age", "recid"),
            ("priors", "recid"),
            ("charge_degree", "recid"),
            ("race", "recid"),
        ],
    )
    mechanisms = {
        "age": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "race": BernoulliMechanism(lambda p: 0.5),
        "gender": BernoulliMechanism(lambda p: 0.5),
        "charge_degree": BernoulliMechanism(lambda p: 0.4),
        "priors": AdditiveNoiseMechanism(
            lambda p: -0.3 * p["age"] + 0.5 * (2.0 * p["race"] - 1.0),
            noise_scale=noise_scale,
        ),
        "recid": BernoulliMechanism(
            lambda p: sigmoid(
                weights["age"] * p["age"]
                + weights["priors"] * p["priors"]
                + weights["charge_degree"] * (2.0 * p["charge_degree"] - 1.0)
                + race_weight * (2.0 * p["race"] - 1.0)
            )
        ),
    }
    scm = StructuralCausalModel(graph, mechanisms)
    features = [
        FeatureSpec("age", actionable=False),
        FeatureSpec("priors"),
        FeatureSpec(
            "charge_degree",
            kind="categorical",
            categories=("misdemeanor", "felony"),
        ),
        FeatureSpec(
            "race",
            kind="categorical",
            categories=("group_a", "group_b"),
            actionable=False,
        ),
        FeatureSpec(
            "gender",
            kind="categorical",
            categories=("female", "male"),
            actionable=False,
        ),
    ]
    dataset = _scm_to_dataset(
        scm, features, "recid", n, rng, target_classes=("no_recid", "recid")
    )
    if discrete:
        for column_name in ("age", "priors"):
            column = dataset.feature_names.index(column_name)
            dataset.X[:, column] = np.round(dataset.X[:, column])
    return SyntheticWorkload(
        dataset=dataset,
        scm=scm,
        label_node="recid",
        true_label_weights={spec.name: weights[spec.name] for spec in features},
        notes={"protected": "race", "biased": biased, "discrete": discrete},
    )


# ----------------------------------------------------------------------
# Loans (recourse-oriented regression-ish workload)
# ----------------------------------------------------------------------
def make_loans(
    n: int = 2000,
    *,
    random_state: RandomState = None,
    noise_scale: float = 1.0,
) -> SyntheticWorkload:
    """Loan-approval workload for the recourse example and experiment E10.

    All four features have direct effects with well-separated magnitudes
    (credit_score dominates), so necessity/sufficiency scores have an
    unambiguous expected ranking.
    """
    rng = check_random_state(random_state)
    weights = {
        "income": 0.8,
        "credit_score": 1.2,
        "debt_to_income": -0.9,
        "employment_years": 0.4,
    }
    graph = CausalGraph(
        nodes=[
            "income",
            "credit_score",
            "debt_to_income",
            "employment_years",
            "approved",
        ],
        edges=[
            ("employment_years", "income"),
            ("income", "debt_to_income"),
            ("income", "approved"),
            ("credit_score", "approved"),
            ("debt_to_income", "approved"),
            ("employment_years", "approved"),
        ],
    )
    mechanisms = {
        "employment_years": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "credit_score": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        "income": AdditiveNoiseMechanism(
            lambda p: 0.5 * p["employment_years"], noise_scale=noise_scale
        ),
        "debt_to_income": AdditiveNoiseMechanism(
            lambda p: -0.4 * p["income"], noise_scale=noise_scale
        ),
        "approved": BernoulliMechanism(
            lambda p: sigmoid(
                weights["income"] * p["income"]
                + weights["credit_score"] * p["credit_score"]
                + weights["debt_to_income"] * p["debt_to_income"]
                + weights["employment_years"] * p["employment_years"]
            )
        ),
    }
    scm = StructuralCausalModel(graph, mechanisms)
    features = [
        FeatureSpec("income", monotone=1),
        FeatureSpec("credit_score", monotone=1),
        FeatureSpec("debt_to_income", monotone=-1),
        FeatureSpec("employment_years", monotone=1),
    ]
    dataset = _scm_to_dataset(
        scm, features, "approved", n, rng, target_classes=("denied", "approved")
    )
    return SyntheticWorkload(
        dataset=dataset,
        scm=scm,
        label_node="approved",
        true_label_weights={spec.name: weights[spec.name] for spec in features},
        notes={},
    )


# ----------------------------------------------------------------------
# Two moons (non-linear 2-D toy)
# ----------------------------------------------------------------------
def make_two_moons(
    n: int = 400,
    *,
    noise: float = 0.15,
    random_state: RandomState = None,
) -> Dataset:
    """The classic interleaving half-circles dataset.

    Purely geometric (no SCM); used by examples and by tests that need a
    decision boundary no linear model can capture.
    """
    if n < 2:
        raise ValidationError("n must be >= 2")
    rng = check_random_state(random_state)
    n_upper = n // 2
    n_lower = n - n_upper
    theta_upper = rng.uniform(0.0, np.pi, size=n_upper)
    theta_lower = rng.uniform(0.0, np.pi, size=n_lower)
    upper = np.column_stack([np.cos(theta_upper), np.sin(theta_upper)])
    lower = np.column_stack(
        [1.0 - np.cos(theta_lower), 0.5 - np.sin(theta_lower)]
    )
    points = np.vstack([upper, lower]) + rng.normal(0.0, noise, size=(n, 2))
    labels = np.concatenate([np.zeros(n_upper), np.ones(n_lower)])
    order = rng.permutation(n)
    return Dataset(
        X=points[order],
        y=labels[order],
        features=[FeatureSpec("x0"), FeatureSpec("x1")],
        target_name="moon",
        target_classes=("upper", "lower"),
    )
