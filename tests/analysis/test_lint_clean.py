"""Tier-1 gate: the repository itself must be xailint-clean.

This is the machine-checked version of the DESIGN contract — every
scientific-correctness invariant (XDB001–XDB008, see docs/LINTING.md)
holds over ``src``, ``benchmarks``, ``examples`` and ``tools``.  A new
violation either gets fixed or gets an inline
``# xailint: disable=XDB00N (reason)`` suppression that a reviewer can
audit; weakening a rule is not an option.
"""

from __future__ import annotations

from pathlib import Path

from xaidb.analysis import run_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SCAN_DIRS = ("src", "benchmarks", "examples", "tools")


def test_repository_is_lint_clean():
    paths = [REPO_ROOT / d for d in SCAN_DIRS if (REPO_ROOT / d).is_dir()]
    assert paths, "repo layout changed: no scan directories found"
    result = run_paths(paths, root=REPO_ROOT)
    assert result.files_scanned > 100, "scan unexpectedly small"
    report = "\n".join(
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} {f.message}"
        for f in result.findings
    )
    assert result.ok and not result.findings, f"xailint findings:\n{report}"


def test_every_suppression_carries_a_reason():
    """Repo convention: `# xailint: disable=XDB00N (reason)` — the
    parenthesised reason is mandatory in committed code.  Uses the
    engine's own tokenize-based parser (a raw line regex would trip on
    prose mentions of the syntax inside docstrings); XDB012 enforces
    the same convention at lint time."""
    from xaidb.analysis import parse_suppressions

    bare = []
    for directory in SCAN_DIRS:
        base = REPO_ROOT / directory
        if not base.is_dir():
            continue
        for path in base.rglob("*.py"):
            index = parse_suppressions(path.read_text())
            for entry in index.entries:
                if entry.reason is None:
                    bare.append(f"{path}:{entry.comment_line}")
    assert not bare, f"suppressions without a reason: {bare}"
