"""From local explanations to global understanding (tutorial §2.1.2;
Lundberg et al. 2020, "From local explanations to global understanding
with explainable AI for trees").

Local SHAP vectors over a dataset compose into global views:

- :func:`global_shap_importance` — mean |SHAP| per feature, the standard
  global importance bar chart;
- :func:`shap_summary` — per-feature distributional statistics (mean
  absolute value, signed mean, correlation of the attribution with the
  feature value — the "does high feature value push the score up?"
  direction of the beeswarm plot);
- :func:`supervised_clustering` — group instances by explanation
  similarity rather than raw-feature similarity (the paper's supervised
  clustering), via simple k-medoids on SHAP vectors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import FeatureAttribution
from xaidb.utils.kernels import pairwise_distances
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array

__all__ = [
    "ExplainFn",
    "shap_matrix",
    "global_shap_importance",
    "shap_summary",
    "supervised_clustering",
]

ExplainFn = Callable[[np.ndarray], FeatureAttribution]


def shap_matrix(explain_fn: ExplainFn, X: np.ndarray) -> np.ndarray:
    """Stack local attributions into an ``(n, d)`` matrix.

    ``explain_fn`` is called once per row — unless it carries an
    ``explain_batch`` attribute (``X -> sequence of FeatureAttribution``),
    in which case the whole dataset goes through that one call so the
    explainer can amortise its setup (warm worker pool, shared-memory
    instance batch, arena-wide TreeSHAP kernels) across rows.  Adapters
    around :meth:`xaidb.explainers.lime.LimeExplainer.explain_batch` are
    the canonical provider; passing a bound ``explainer.explain`` method
    also works — the batch entry point is resolved from the owning
    explainer, and every batch implementation in the repo is bitwise
    identical to its per-row path, so the routing never changes results.
    """
    X = check_array(X, name="X", ndim=2)
    batch_fn = getattr(explain_fn, "explain_batch", None)
    if not callable(batch_fn) and getattr(explain_fn, "__name__", "") == "explain":
        # a bound ``explainer.explain``: look up the batch path on the
        # explainer itself
        batch_fn = getattr(
            getattr(explain_fn, "__self__", None), "explain_batch", None
        )
    if callable(batch_fn):
        explanations = batch_fn(X)
        return np.vstack([e.values for e in explanations])
    return np.vstack([explain_fn(row).values for row in X])


def global_shap_importance(
    attributions: np.ndarray, feature_names: list[str]
) -> FeatureAttribution:
    """Mean |SHAP| per feature as a global importance explanation."""
    attributions = check_array(attributions, name="attributions", ndim=2)
    if attributions.shape[1] != len(feature_names):
        raise ValidationError("feature_names width mismatch")
    return FeatureAttribution(
        feature_names=list(feature_names),
        values=np.abs(attributions).mean(axis=0),
        base_value=0.0,
        metadata={
            "method": "global_shap_importance",
            "n_instances": int(attributions.shape[0]),
        },
    )


def shap_summary(
    attributions: np.ndarray,
    X: np.ndarray,
    feature_names: list[str],
) -> list[dict]:
    """Beeswarm-style per-feature summary rows.

    Each row reports mean |phi|, signed mean phi, and the Pearson
    correlation between the feature's value and its attribution (positive
    = larger values push the prediction up), sorted by importance.
    """
    attributions = check_array(attributions, name="attributions", ndim=2)
    X = check_array(X, name="X", ndim=2)
    if attributions.shape != X.shape:
        raise ValidationError("attributions and X must align")
    rows = []
    for j, name in enumerate(feature_names):
        phi = attributions[:, j]
        values = X[:, j]
        if phi.std() > 0 and values.std() > 0:
            direction = float(np.corrcoef(values, phi)[0, 1])
        else:
            direction = 0.0
        rows.append(
            {
                "feature": name,
                "mean_abs_shap": float(np.abs(phi).mean()),
                "mean_shap": float(phi.mean()),
                "value_direction": direction,
            }
        )
    rows.sort(key=lambda r: -r["mean_abs_shap"])
    return rows


def supervised_clustering(
    attributions: np.ndarray,
    n_clusters: int,
    *,
    n_iterations: int = 20,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """k-medoids over SHAP vectors: instances explained the same way end
    up together, regardless of raw-feature distance.

    Returns ``(labels, medoid_indices)``.
    """
    attributions = check_array(attributions, name="attributions", ndim=2)
    n = attributions.shape[0]
    if not 1 <= n_clusters <= n:
        raise ValidationError("n_clusters out of range")
    rng = check_random_state(random_state)
    distances = pairwise_distances(attributions)
    medoids = rng.choice(n, size=n_clusters, replace=False)
    for __ in range(n_iterations):
        labels = np.argmin(distances[:, medoids], axis=1)
        new_medoids = medoids.copy()
        for cluster in range(n_clusters):
            members = np.flatnonzero(labels == cluster)
            if members.size == 0:
                continue
            within = distances[np.ix_(members, members)].sum(axis=1)
            new_medoids[cluster] = members[int(np.argmin(within))]
        if np.array_equal(new_medoids, medoids):
            break
        medoids = new_medoids
    labels = np.argmin(distances[:, medoids], axis=1)
    return labels, medoids
