"""Quantitative Input Influence (Datta, Sen & Zick 2016).

QII measures the influence of a feature (or feature set) by the change in
the quantity of interest when that feature is *randomised* — broken away
from its correlations — while everything else stays put:

    iota(S) = E[q(x)] - E[q(x with X_S resampled independently)]

- :meth:`unary_qii` is the influence of a single feature;
- :meth:`set_qii` of a feature set (captures joint influence that unary
  measures miss);
- :meth:`marginal_qii` is the marginal influence of feature ``i`` given a
  set ``S`` already randomised;
- :meth:`shapley_qii` aggregates marginal influences with Shapley weights
  over random coalitions — Datta et al.'s flagship aggregate, which for
  the marginal-imputation game coincides with SHAP up to the direction
  convention (randomising a feature = removing it from the coalition).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.explainers.shapley.games import CachedGame, Game, MarginalImputationGame
from xaidb.explainers.shapley.sampling import permutation_shapley_values
from xaidb.utils.rng import RandomState
from xaidb.utils.validation import check_array

__all__ = ["QIIExplainer"]


class _RandomisationGame(Game):
    """Game whose value is the expected output with coalition members
    *randomised* (QII's convention is the mirror image of SHAP's:
    ``v(S)`` here has features in ``S`` broken, not kept)."""

    def __init__(self, inner: MarginalImputationGame) -> None:
        super().__init__(inner.n_players)
        self.inner = inner

    def value(self, coalition: Iterable[int]) -> float:
        kept = set(range(self.n_players)) - set(coalition)
        return self.inner.value(kept)


class QIIExplainer(Explainer):
    """Quantitative Input Influence over a background sample.

    Parameters
    ----------
    predict_fn:
        Scalar quantity of interest (e.g. positive-class probability).
    background:
        Sample of the input distribution used for the independent
        resampling of randomised features.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        *,
        feature_names: list[str] | None = None,
    ) -> None:
        self.predict_fn = predict_fn
        self.background = check_array(background, name="background", ndim=2)
        self.feature_names = feature_names

    def _game(self, instance: np.ndarray) -> MarginalImputationGame:
        return MarginalImputationGame(self.predict_fn, instance, self.background)

    # ------------------------------------------------------------------
    def unary_qii(self, instance: np.ndarray, feature: int) -> float:
        """Influence of one feature: ``f(x) - E[f(x with X_i resampled)]``."""
        return self.set_qii(instance, [feature])

    def set_qii(self, instance: np.ndarray, features: Sequence[int]) -> float:
        """Joint influence of a feature set."""
        instance = check_array(instance, name="instance", ndim=1)
        features = list(features)
        if not features:
            raise ValidationError("features must be non-empty")
        game = self._game(instance)
        kept = [i for i in range(game.n_players) if i not in set(features)]
        return game.value(range(game.n_players)) - game.value(kept)

    def marginal_qii(
        self, instance: np.ndarray, feature: int, given: Sequence[int]
    ) -> float:
        """Marginal influence of ``feature`` on top of an already-randomised
        set ``given``: ``v(~given) - v(~(given ∪ {feature}))``."""
        instance = check_array(instance, name="instance", ndim=1)
        game = self._game(instance)
        randomised = set(given)
        if feature in randomised:
            raise ValidationError("feature must not already be in `given`")
        all_players = set(range(game.n_players))
        kept_without = all_players - randomised
        kept_with = kept_without - {feature}
        return game.value(kept_without) - game.value(kept_with)

    # ------------------------------------------------------------------
    def explain(
        self,
        instance: np.ndarray,
        *,
        n_permutations: int = 200,
        random_state: RandomState = None,
    ) -> FeatureAttribution:
        """Alias for :meth:`shapley_qii` (the Explainer-interface entry
        point)."""
        return self.shapley_qii(
            instance,
            n_permutations=n_permutations,
            random_state=random_state,
        )

    def shapley_qii(
        self,
        instance: np.ndarray,
        *,
        n_permutations: int = 200,
        random_state: RandomState = None,
    ) -> FeatureAttribution:
        """Shapley aggregate of marginal influences.

        Equivalent to permutation-sampling SHAP on the randomisation game;
        reported with the QII sign convention (positive = the feature
        pushes the output up at this instance).
        """
        instance = check_array(instance, name="instance", ndim=1)
        inner = self._game(instance)
        game = CachedGame(_RandomisationGame(inner))
        phi, errors = permutation_shapley_values(
            game, n_permutations, random_state=random_state
        )
        names = self.feature_names or [f"x{i}" for i in range(len(instance))]
        # v(S)=output with S randomised is a *decreasing* encoding; negate
        # so that positive influence means "supports the prediction".
        return FeatureAttribution(
            feature_names=list(names),
            values=-phi,
            base_value=inner.value(()),
            prediction=inner.value(range(inner.n_players)),
            metadata={
                "method": "shapley_qii",
                "standard_errors": errors.tolist(),
                "n_permutations": n_permutations,
            },
        )
