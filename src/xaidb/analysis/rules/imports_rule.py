"""XDB001 — banned third-party imports.

xaidb's DESIGN contract is "from scratch — numpy/scipy/networkx only":
the point of the reproduction is that every explainer's maths is visible
and auditable, not delegated to a library whose version-to-version
behaviour drifts (the hidden-library-behaviour instability the tutorial
warns about).  This rule bans imports of the ML/XAI stacks the repo
reimplements.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["BannedImportsRule", "BANNED_ROOTS"]

#: Top-level module names whose import violates the from-scratch rule.
BANNED_ROOTS = frozenset(
    {
        "sklearn",
        "shap",
        "lime",
        "dice_ml",
        "captum",
        "torch",
        "pandas",
        "tensorflow",
        "keras",
        "xgboost",
        "lightgbm",
        "catboost",
    }
)


@register
class BannedImportsRule(FileRule):
    rule_id = "XDB001"
    symbol = "banned-import"
    description = (
        "Import of a banned third-party package (sklearn, shap, lime, "
        "dice_ml, captum, torch, pandas, ...): xaidb is from-scratch on "
        "numpy/scipy/networkx only."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_ROOTS:
                        yield ctx.finding(
                            self,
                            node,
                            f"import of banned package {root!r}; xaidb "
                            f"implements its methods from scratch on "
                            f"numpy/scipy/networkx",
                        )
            elif isinstance(node, ast.ImportFrom):
                # Relative imports (level > 0) are intra-package and
                # always allowed; `from xaidb.explainers import lime`
                # resolves under the xaidb root, not the banned package.
                if node.level or node.module is None:
                    continue
                root = node.module.split(".")[0]
                if root in BANNED_ROOTS:
                    yield ctx.finding(
                        self,
                        node,
                        f"import from banned package {root!r}; xaidb "
                        f"implements its methods from scratch on "
                        f"numpy/scipy/networkx",
                    )
