import time

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.incremental import (
    IncrementalLinearRegression,
    IncrementalLogisticRegression,
    UnlearnableExtraTrees,
)
from xaidb.models import accuracy


class TestIncrementalLinearRegression:
    @pytest.fixture()
    def fitted(self, regression_data):
        X, y, __ = regression_data
        return IncrementalLinearRegression().fit(X, y)

    def test_deletion_matches_retrain_exactly(self, fitted):
        fitted.delete_rows(range(30))
        reference = fitted.retrained_reference()
        assert np.allclose(fitted.coef_, reference.coef_, atol=1e-10)
        assert fitted.intercept_ == pytest.approx(reference.intercept_, abs=1e-10)

    def test_sequential_deletions_compose(self, fitted):
        fitted.delete_rows([0, 1, 2])
        fitted.delete_rows([10, 11])
        reference = fitted.retrained_reference()
        assert np.allclose(fitted.coef_, reference.coef_, atol=1e-10)

    def test_double_deletion_rejected(self, fitted):
        fitted.delete_rows([0])
        with pytest.raises(ValidationError, match="already deleted"):
            fitted.delete_rows([0])

    def test_empty_deletion_rejected(self, fitted):
        with pytest.raises(ValidationError):
            fitted.delete_rows([])

    def test_delete_before_fit_rejected(self):
        with pytest.raises(ValidationError):
            IncrementalLinearRegression().delete_rows([0])

    def test_ridge_variant(self, regression_data):
        X, y, __ = regression_data
        inc = IncrementalLinearRegression(l2=1.0).fit(X, y)
        inc.delete_rows(range(20))
        reference = inc.retrained_reference()
        assert np.allclose(inc.coef_, reference.coef_, atol=1e-10)

    def test_predicts_after_deletion(self, fitted, regression_data):
        X, __, __ = regression_data
        fitted.delete_rows([5])
        assert fitted.predict(X[:3]).shape == (3,)


class TestIncrementalLogisticRegression:
    @pytest.fixture()
    def fitted(self, income):
        return IncrementalLogisticRegression(refine_steps=1).fit(
            income.dataset.X, income.dataset.y
        )

    def test_deletion_close_to_retrain(self, fitted):
        fitted.delete_rows(range(40))
        reference = fitted.retrained_reference()
        assert np.allclose(fitted.theta_, reference.theta_, atol=1e-4)

    def test_zero_refine_steps_is_rougher_but_close(self, income):
        rough = IncrementalLogisticRegression(refine_steps=0).fit(
            income.dataset.X, income.dataset.y
        )
        fine = IncrementalLogisticRegression(refine_steps=2).fit(
            income.dataset.X, income.dataset.y
        )
        rows = list(range(30))
        rough.delete_rows(rows)
        fine.delete_rows(rows)
        reference = fine.retrained_reference()
        err_rough = np.linalg.norm(rough.theta_ - reference.theta_)
        err_fine = np.linalg.norm(fine.theta_ - reference.theta_)
        assert err_fine <= err_rough
        assert err_rough < 0.1

    def test_prediction_agreement_after_deletion(self, fitted, income):
        fitted.delete_rows(range(25))
        reference = fitted.retrained_reference()
        X = income.dataset.X
        agreement = np.mean(fitted.predict(X) == reference.predict(X))
        assert agreement > 0.99

    def test_double_deletion_rejected(self, fitted):
        fitted.delete_rows([1])
        with pytest.raises(ValidationError):
            fitted.delete_rows([1])

    def test_negative_refine_rejected(self):
        with pytest.raises(ValidationError):
            IncrementalLogisticRegression(refine_steps=-1)


class TestUnlearnableExtraTrees:
    @pytest.fixture()
    def fitted(self, income):
        return UnlearnableExtraTrees(
            n_estimators=5, max_depth=5, random_state=0
        ).fit(income.dataset.X[:200], income.dataset.y[:200])

    def test_learns_signal(self, fitted, income):
        acc = accuracy(
            income.dataset.y[:200], fitted.predict(income.dataset.X[:200])
        )
        assert acc > 0.6

    def test_forget_removes_row_from_stats(self, fitted):
        fitted.forget(3)
        for root in fitted.roots_:
            assert 3 not in root.rows

    def test_forget_twice_rejected(self, fitted):
        fitted.forget(0)
        with pytest.raises(ValidationError):
            fitted.forget(0)

    def test_forget_out_of_range(self, fitted):
        with pytest.raises(ValidationError):
            fitted.forget(9999)

    def test_forgotten_points_no_longer_influence_counts(self, fitted, income):
        """After forgetting, root class counts equal a fresh count over the
        surviving rows."""
        for row in range(10):
            fitted.forget(row)
        surviving = np.flatnonzero(fitted.active_)
        expected = np.bincount(
            fitted._y_index[surviving], minlength=len(fitted.classes_)
        ).astype(float)
        for root in fitted.roots_:
            assert np.allclose(root.class_counts, expected)

    def test_deletion_much_faster_than_retrain(self, income):
        X, y = income.dataset.X[:200], income.dataset.y[:200]
        model = UnlearnableExtraTrees(
            n_estimators=5, max_depth=5, random_state=1
        ).fit(X, y)
        start = time.perf_counter()
        model.forget(0)
        deletion_time = time.perf_counter() - start
        start = time.perf_counter()
        UnlearnableExtraTrees(n_estimators=5, max_depth=5, random_state=1).fit(
            X[1:], y[1:]
        )
        retrain_time = time.perf_counter() - start
        assert deletion_time < retrain_time

    def test_accuracy_survives_many_deletions(self, fitted, income):
        X, y = income.dataset.X[:200], income.dataset.y[:200]
        before = accuracy(y, fitted.predict(X))
        for row in range(30):
            fitted.forget(row)
        after = accuracy(y, fitted.predict(X))
        assert after > before - 0.15

    def test_predict_proba_valid(self, fitted, income):
        proba = fitted.predict_proba(income.dataset.X[:20])
        assert np.allclose(proba.sum(axis=1), 1.0)
