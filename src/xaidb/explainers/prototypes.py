"""Example-based explanations: prototypes and criticisms (tutorial §2's
"some methods return data points to make the model interpretable";
Kim, Khanna & Koyejo 2016, MMD-critic).

- **Prototypes** are data points that together summarise the data
  distribution: chosen greedily to minimise the maximum mean discrepancy
  (MMD) between the prototype set and the data under an RBF kernel.
- **Criticisms** are the points the prototypes explain *worst*: maximisers
  of the witness function, typically outliers, boundary cases and
  minority modes — exactly what an analyst should eyeball.

:func:`prototype_classifier_accuracy` closes the loop to models: a 1-NN
classifier over the selected prototypes should approach the accuracy of
1-NN over all the data — the paper's quantitative check, reproduced in
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.knn import KNeighborsClassifier
from xaidb.models.metrics import accuracy
from xaidb.utils.kernels import pairwise_distances
from xaidb.utils.validation import check_array, check_positive

__all__ = [
    "rbf_kernel_matrix",
    "PrototypeExplanation",
    "MMDCritic",
    "prototype_classifier_accuracy",
]


def rbf_kernel_matrix(
    a: np.ndarray, b: np.ndarray | None = None, *, gamma: float | None = None
) -> np.ndarray:
    """RBF kernel ``exp(-gamma ||x - y||^2)``; ``gamma`` defaults to
    ``1 / (2 * median squared distance)`` (the median heuristic)."""
    a = check_array(a, name="a", ndim=2)
    squared = pairwise_distances(a, b, metric="sqeuclidean")
    if gamma is None:
        reference = pairwise_distances(a, metric="sqeuclidean")
        median = float(np.median(reference[reference > 0])) if (
            reference > 0
        ).any() else 1.0
        gamma = 1.0 / (2.0 * max(median, 1e-12))
    else:
        check_positive(gamma, name="gamma")
    return np.exp(-gamma * squared)


@dataclass
class PrototypeExplanation:
    """Selected prototype and criticism indices plus their MMD trace."""

    prototype_indices: list[int]
    criticism_indices: list[int]
    mmd_trace: list[float]  # squared MMD after each prototype added


class MMDCritic:
    """Greedy MMD prototype selection with witness-function criticisms.

    Parameters
    ----------
    n_prototypes / n_criticisms:
        How many of each to select.
    gamma:
        RBF kernel bandwidth (None = median heuristic).
    """

    def __init__(
        self,
        *,
        n_prototypes: int = 10,
        n_criticisms: int = 5,
        gamma: float | None = None,
    ) -> None:
        if n_prototypes < 1 or n_criticisms < 0:
            raise ValidationError("invalid prototype/criticism counts")
        self.n_prototypes = n_prototypes
        self.n_criticisms = n_criticisms
        self.gamma = gamma

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> PrototypeExplanation:
        """Select prototypes and criticisms from the rows of ``X``."""
        X = check_array(X, name="X", ndim=2)
        n = X.shape[0]
        if self.n_prototypes + self.n_criticisms > n:
            raise ValidationError(
                "cannot select more prototypes+criticisms than rows"
            )
        kernel = rbf_kernel_matrix(X, gamma=self.gamma)
        column_means = kernel.mean(axis=1)  # E_x k(z, x) per candidate z

        prototypes: list[int] = []
        mmd_trace: list[float] = []
        # greedy: add the candidate that most decreases squared MMD
        # MMD^2(S) = mean(K) - 2/|S| sum_{p in S} colmean(p)
        #            + 1/|S|^2 sum_{p,q in S} K(p, q)
        grand_mean = float(kernel.mean())
        for __ in range(self.n_prototypes):
            best_candidate, best_mmd = None, np.inf
            for candidate in range(n):
                if candidate in prototypes:
                    continue
                trial = prototypes + [candidate]
                m = len(trial)
                cross = column_means[trial].sum()
                inner = kernel[np.ix_(trial, trial)].sum()
                # xailint: disable=XDB023 (m = len(prototypes) + 1 >= 1 by construction)
                mmd = grand_mean - 2.0 * cross / m + inner / (m * m)
                if mmd < best_mmd:
                    best_candidate, best_mmd = candidate, mmd
            prototypes.append(int(best_candidate))
            mmd_trace.append(float(best_mmd))

        criticisms = self._select_criticisms(kernel, column_means, prototypes)
        return PrototypeExplanation(
            prototype_indices=prototypes,
            criticism_indices=criticisms,
            mmd_trace=mmd_trace,
        )

    def fit_per_class(
        self, X: np.ndarray, y: np.ndarray
    ) -> PrototypeExplanation:
        """Select prototypes within each class separately (the paper's
        protocol for the 1-NN evaluation: every class gets its share of
        ``n_prototypes``), criticisms from the pooled witness."""
        X = check_array(X, name="X", ndim=2)
        y = np.asarray(y)
        classes = np.unique(y)
        if len(classes) == 0:
            raise ValidationError("y must contain at least one label")
        per_class = max(1, self.n_prototypes // len(classes))
        prototypes: list[int] = []
        traces: list[float] = []
        for label in classes:
            members = np.flatnonzero(y == label)
            selector = MMDCritic(
                n_prototypes=min(per_class, len(members)),
                n_criticisms=0,
                gamma=self.gamma,
            )
            local = selector.fit(X[members])
            prototypes.extend(int(members[i]) for i in local.prototype_indices)
            traces.extend(local.mmd_trace)
        kernel = rbf_kernel_matrix(X, gamma=self.gamma)
        criticisms = self._select_criticisms(
            kernel, kernel.mean(axis=1), prototypes
        )
        return PrototypeExplanation(
            prototype_indices=prototypes,
            criticism_indices=criticisms,
            mmd_trace=traces,
        )

    def _select_criticisms(
        self,
        kernel: np.ndarray,
        column_means: np.ndarray,
        prototypes: list[int],
    ) -> list[int]:
        """Greedy witness-function maximisers with a log-det style
        diversity bonus (avoid picking near-duplicate criticisms)."""
        n = kernel.shape[0]
        witness = np.abs(
            column_means - kernel[:, prototypes].mean(axis=1)
        )
        chosen: list[int] = []
        for __ in range(self.n_criticisms):
            best_candidate, best_score = None, -np.inf
            for candidate in range(n):
                if candidate in prototypes or candidate in chosen:
                    continue
                diversity = 0.0
                if chosen:
                    diversity = -float(kernel[candidate, chosen].max())
                score = witness[candidate] + 0.5 * diversity
                if score > best_score:
                    best_candidate, best_score = candidate, score
            if best_candidate is None:
                break
            chosen.append(int(best_candidate))
        return chosen


def prototype_classifier_accuracy(
    X_train: np.ndarray,
    y_train: np.ndarray,
    prototype_indices: list[int],
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> float:
    """Accuracy of 1-NN over the prototypes only — the MMD-critic paper's
    quantitative quality measure for a prototype set."""
    if not prototype_indices:
        raise ValidationError("prototype set is empty")
    prototype_labels = y_train[prototype_indices]
    if len(np.unique(prototype_labels)) < 2:
        # a one-class prototype set can only ever predict that class
        predictions = np.full(len(y_test), prototype_labels[0])
        return accuracy(y_test, predictions)
    model = KNeighborsClassifier(n_neighbors=1).fit(
        X_train[prototype_indices], prototype_labels
    )
    return accuracy(y_test, model.predict(X_test))
