"""XDB005 clean fixture: specific handlers, and broad catch that re-raises."""

__all__ = ["careful"]


def careful(fn) -> float:
    try:
        return fn()
    except (ValueError, KeyError):
        return 0.0
    except Exception:
        # a log-and-reraise broad handler cannot swallow anything
        raise
