"""Dirty fixture for XDB011: explain/fit return caller-owned buffers."""

import numpy as np

__all__ = ["Leaky"]


class Leaky:
    def explain(self, X):
        scores = X[1:]  # a slice is a view of the caller's buffer
        return scores.reshape(-1)  # finding 1: view chain escapes

    def fit(self, X, y):
        self.X_ = np.array(X)
        return np.asarray(X)  # finding 2: no-copy passthrough escapes
