import numpy as np
import pytest

from xaidb.causal import AdditiveNoiseMechanism, CausalGraph, StructuralCausalModel
from xaidb.exceptions import ValidationError
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.shapley import (
    AsymmetricShapleyExplainer,
    CausalShapleyExplainer,
    QIIExplainer,
    ShapleyFlowExplainer,
)


@pytest.fixture(scope="module")
def chain_scm():
    """A -> B with B = A + small noise; the model is f(a, b) = b."""
    graph = CausalGraph(["A", "B"], [("A", "B")])
    scm = StructuralCausalModel(
        graph,
        {
            "A": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
            "B": AdditiveNoiseMechanism(lambda p: p["A"], noise_scale=0.1),
        },
    )
    return scm


@pytest.fixture(scope="module")
def independent_scm():
    graph = CausalGraph(["A", "B"], [])
    return StructuralCausalModel(
        graph,
        {
            "A": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
            "B": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
        },
    )


def model_b_only(X):
    return X[:, 1]


class TestQII:
    def test_unary_qii_of_dummy_is_zero(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        qii = QIIExplainer(f, income.dataset.X[:50])

        def ignore_all(X):
            return np.full(X.shape[0], 0.7)

        qii_const = QIIExplainer(ignore_all, income.dataset.X[:50])
        assert qii_const.unary_qii(income.dataset.X[0], 0) == pytest.approx(0.0)

    def test_xor_marginal_influence_vanishes_given_randomised_partner(self):
        """XOR: randomising x1 on top of an already-randomised x0 changes
        nothing — the expectation is 1/2 either way — while x1's *unary*
        influence is large.  This is exactly the set/marginal distinction
        QII introduces."""
        # exactly balanced background so expectations are exact
        background = np.asarray(
            [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 25
        )

        def xor(X):
            return np.logical_xor(X[:, 0] > 0.5, X[:, 1] > 0.5).astype(float)

        qii = QIIExplainer(xor, background)
        x = np.asarray([1.0, 0.0])
        unary = abs(qii.unary_qii(x, 1))
        marginal_given_partner = abs(qii.marginal_qii(x, 1, given=[0]))
        assert unary == pytest.approx(0.5)
        assert marginal_given_partner == pytest.approx(0.0)

    def test_marginal_qii(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        qii = QIIExplainer(f, income.dataset.X[:30])
        x = income.dataset.X[0]
        marginal = qii.marginal_qii(x, 0, given=[1])
        assert np.isfinite(marginal)
        with pytest.raises(ValidationError):
            qii.marginal_qii(x, 0, given=[0])

    def test_shapley_qii_efficiency(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        qii = QIIExplainer(
            f, income.dataset.X[:20], feature_names=income.dataset.feature_names
        )
        att = qii.shapley_qii(
            income.dataset.X[0], n_permutations=100, random_state=0
        )
        assert att.values.sum() == pytest.approx(
            att.prediction - att.base_value, abs=1e-8
        )

    def test_empty_feature_set_rejected(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        qii = QIIExplainer(f, income.dataset.X[:20])
        with pytest.raises(ValidationError):
            qii.set_qii(income.dataset.X[0], [])


class TestCausalShapley:
    def test_chain_splits_credit(self, chain_scm):
        explainer = CausalShapleyExplainer(
            model_b_only, chain_scm, ["A", "B"], n_samples=3000
        )
        att = explainer.explain(np.asarray([2.0, 2.0]), random_state=0)
        # v(∅)=0, v(A)=2 (B responds), v(B)=2, v(AB)=2 -> phi = (1, 1)
        assert np.allclose(att.values, [1.0, 1.0], atol=0.1)

    def test_direct_indirect_decomposition(self, chain_scm):
        explainer = CausalShapleyExplainer(
            model_b_only, chain_scm, ["A", "B"], n_samples=3000
        )
        att = explainer.explain(np.asarray([2.0, 2.0]), random_state=0)
        direct = np.asarray(att.metadata["direct"])
        indirect = np.asarray(att.metadata["indirect"])
        # A has no direct edge into the model's only used feature B
        assert direct[0] == pytest.approx(0.0, abs=0.1)
        assert indirect[0] == pytest.approx(1.0, abs=0.1)
        # B's effect is all direct
        assert indirect[1] == pytest.approx(0.0, abs=0.1)
        assert np.allclose(direct + indirect, att.values, atol=1e-9)

    def test_independent_graph_recovers_marginal_shapley(self, independent_scm):
        def f(X):
            return X[:, 0] + 2 * X[:, 1]

        explainer = CausalShapleyExplainer(
            f, independent_scm, ["A", "B"], n_samples=4000
        )
        att = explainer.explain(np.asarray([1.0, 1.0]), random_state=1)
        # with independent features, do(X_S)=conditioning, so additive f
        # gives phi = (1, 2) exactly up to MC noise
        assert np.allclose(att.values, [1.0, 2.0], atol=0.15)

    def test_rejects_unknown_node(self, chain_scm):
        with pytest.raises(ValidationError):
            CausalShapleyExplainer(model_b_only, chain_scm, ["A", "Z"])

    def test_rejects_too_many_features(self, chain_scm):
        with pytest.raises(ValidationError):
            CausalShapleyExplainer(
                model_b_only, chain_scm, ["A"] * 13, n_samples=10
            )


class TestAsymmetricShapley:
    def test_chain_gives_all_credit_to_root(self, chain_scm):
        explainer = AsymmetricShapleyExplainer(
            model_b_only, chain_scm, ["A", "B"], n_samples=3000
        )
        att = explainer.explain(np.asarray([2.0, 2.0]), random_state=0)
        # only valid ordering is (A, B): A enters first and do(A=2)
        # already moves E[B] to 2, so A soaks up all the credit
        assert att.values[0] == pytest.approx(2.0, abs=0.15)
        assert att.values[1] == pytest.approx(0.0, abs=0.15)

    def test_independent_graph_equals_symmetric(self, independent_scm):
        def f(X):
            return X[:, 0] + 2 * X[:, 1]

        asymmetric = AsymmetricShapleyExplainer(
            f, independent_scm, ["A", "B"], n_samples=4000
        ).explain(np.asarray([1.0, 1.0]), random_state=2)
        assert np.allclose(asymmetric.values, [1.0, 2.0], atol=0.15)

    def test_ordering_count_metadata(self, independent_scm):
        def f(X):
            return X[:, 0]

        att = AsymmetricShapleyExplainer(
            f, independent_scm, ["A", "B"], n_samples=100
        ).explain(np.asarray([0.0, 0.0]), random_state=3)
        assert att.metadata["n_orderings"] == 2  # both orders valid


class TestShapleyFlow:
    def test_chain_credits_flow_through_edges(self, chain_scm):
        explainer = ShapleyFlowExplainer(
            model_b_only, chain_scm, ["A", "B"], n_orderings=40
        )
        credits = explainer.explain(
            {"A": 2.0, "B": 2.0}, {"A": 0.0, "B": 0.0}, random_state=0
        )
        assert credits[("A", "B")] == pytest.approx(2.0, abs=1e-9)
        assert credits[("B", "__output__")] == pytest.approx(2.0, abs=1e-9)
        assert credits[("A", "__output__")] == pytest.approx(0.0, abs=1e-9)

    def test_efficiency_into_sink(self, chain_scm):
        explainer = ShapleyFlowExplainer(
            model_b_only, chain_scm, ["A", "B"], n_orderings=25
        )
        foreground = {"A": 1.5, "B": 2.5}
        background = {"A": -0.5, "B": 0.0}
        credits = explainer.explain(foreground, background, random_state=1)
        into_sink = sum(
            value for (s, t), value in credits.items() if t == "__output__"
        )
        delta_f = foreground["B"] - background["B"]
        assert into_sink == pytest.approx(delta_f, abs=1e-9)

    def test_flow_conservation_at_internal_nodes(self):
        """In a chain A -> B -> C with f = C, inflow(B) == outflow(B)."""
        graph = CausalGraph(["A", "B", "C"], [("A", "B"), ("B", "C")])
        scm = StructuralCausalModel(
            graph,
            {
                "A": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
                "B": AdditiveNoiseMechanism(lambda p: p["A"], noise_scale=0.1),
                "C": AdditiveNoiseMechanism(lambda p: p["B"], noise_scale=0.1),
            },
        )
        explainer = ShapleyFlowExplainer(
            lambda X: X[:, 2], scm, ["A", "B", "C"], n_orderings=30
        )
        credits = explainer.explain(
            {"A": 1.0, "B": 1.2, "C": 1.5}, {"A": 0.0, "B": 0.0, "C": 0.0},
            random_state=2,
        )
        inflow_b = credits[("A", "B")]
        outflow_b = credits[("B", "C")] + credits[("B", "__output__")]
        assert inflow_b == pytest.approx(outflow_b, abs=1e-9)

    def test_array_input_accepted(self, chain_scm):
        explainer = ShapleyFlowExplainer(
            model_b_only, chain_scm, ["A", "B"], n_orderings=10
        )
        credits = explainer.explain(
            np.asarray([1.0, 1.0]), np.asarray([0.0, 0.0]), random_state=3
        )
        assert set(credits) == {
            ("A", "B"),
            ("A", "__output__"),
            ("B", "__output__"),
        }

    def test_missing_node_in_point(self, chain_scm):
        explainer = ShapleyFlowExplainer(
            model_b_only, chain_scm, ["A", "B"], n_orderings=5
        )
        with pytest.raises(ValidationError):
            explainer.explain({"A": 1.0}, {"A": 0.0, "B": 0.0})
