"""A15 (perf) — vectorized explainer kernels (docs/PERFORMANCE.md).

Where A10 vectorized the *models under explanation*, A15 vectorizes the
*explainers themselves*:

1. arena-wide path-dependent TreeSHAP
   (:func:`~xaidb.explainers.shapley.tree_shap_kernels.ensemble_path_dependent_shap`)
   explains 10^4 rows of a forest and a GBM >= 5x faster than the
   retained per-row recursion, bit-identically (the recursion is timed
   on a subsample and extrapolated by rows/s — at 10^4 rows it would
   dominate the whole benchmark run);
2. the stacked KernelSHAP batch path
   (:meth:`~xaidb.explainers.shapley.kernel.KernelShapExplainer.explain_batch`)
   clears >= 2x over the retained per-instance pipeline in the
   exhaustive regime (shared design arena, one base evaluation, no
   per-instance cache hashing, one Cholesky per mask set) and stays
   bitwise identical in the sampled regime too.

The run merges its workloads into ``benchmarks/BENCH_inference.json``
under the ``"a15_explainer_kernels"`` key, preserving A10's rows.

``XAIDB_A15_SMOKE=1`` shrinks every workload and loosens the speedup
bars (CI smoke); the acceptance bars apply to the full run.
"""

import os
import time
from pathlib import Path

import numpy as np

from benchmarks._tables import merge_bench_record, print_table
from xaidb.explainers.shapley import (
    KernelShapExplainer,
    TreeShapExplainer,
)
from xaidb.explainers.shapley.coalitions import clear_design_cache
from xaidb.models import (
    GradientBoostedRegressor,
    LogisticRegression,
    RandomForestClassifier,
)

SMOKE = os.environ.get("XAIDB_A15_SMOKE", "0") == "1"

#: TreeSHAP workload: rows explained by the batch kernel.
N_ROWS = 600 if SMOKE else 10_000
#: rows the per-row recursion reference is actually timed on
#: (extrapolated to N_ROWS by rows/s; bitwise checked on this slice)
N_REFERENCE_ROWS = 60 if SMOKE else 200
#: KernelSHAP workload: instances per batch.
N_INSTANCES = 24 if SMOKE else 160
N_BACKGROUND = 20
N_FEATURES = 8

MIN_TREE_SPEEDUP = 2.0 if SMOKE else 5.0
MIN_KERNEL_SPEEDUP = 1.2 if SMOKE else 2.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _fit_models():
    rng = np.random.default_rng(200)
    X = rng.normal(size=(1500, N_FEATURES))
    y_reg = np.sin(X[:, 0]) + X[:, 1] * X[:, 2] + 0.1 * rng.normal(size=1500)
    y_clf = (y_reg > 0).astype(int)
    forest = RandomForestClassifier(
        n_estimators=20, max_depth=6, random_state=1
    ).fit(X, y_clf)
    gbm = GradientBoostedRegressor(
        n_estimators=30, max_depth=3, random_state=2
    ).fit(X, y_reg)
    logistic = LogisticRegression(l2=1e-2).fit(X, y_clf)
    X_eval = rng.normal(size=(N_ROWS, N_FEATURES))
    return forest, gbm, logistic, X_eval


def _tree_shap_workload(label, model, X_eval):
    """Batch kernel over all rows vs per-row recursion on a subsample,
    extrapolated to the full row count by rows/s."""
    explainer = TreeShapExplainer(model)
    explainer.pack_  # build the arena outside the timed region
    batch, after_s = _timed(lambda: explainer.explain_batch(X_eval))

    reference_rows = X_eval[:N_REFERENCE_ROWS]
    per_row, reference_s = _timed(
        lambda: [explainer.explain(row) for row in reference_rows]
    )
    before_s = reference_s * (N_ROWS / N_REFERENCE_ROWS)
    identical = all(
        np.array_equal(batch[i].values, per_row[i].values)
        for i in range(N_REFERENCE_ROWS)
    )
    return {
        "label": label,
        "n_rows": N_ROWS,
        "before_s": before_s,
        "after_s": after_s,
        "rows_per_s_before": N_ROWS / before_s,
        "rows_per_s_after": N_ROWS / after_s,
        "speedup": before_s / after_s,
        "identical": bool(identical),
        "reference_rows_timed": N_REFERENCE_ROWS,
    }


def _kernel_shap_workload(label, predict_fn, X_eval, n_coalitions, seed):
    """Stacked batch vs the retained per-instance pipeline — both paths
    run in full (no extrapolation) over the same instances and seeds."""
    background = X_eval[:N_BACKGROUND]
    instances = X_eval[N_BACKGROUND : N_BACKGROUND + N_INSTANCES]
    clear_design_cache()
    serial_explainer = KernelShapExplainer(
        predict_fn, background, n_coalitions=n_coalitions
    )
    serial, before_s = _timed(
        lambda: serial_explainer.explain_batch_serial(
            instances, random_state=seed
        )
    )
    clear_design_cache()
    stacked_explainer = KernelShapExplainer(
        predict_fn, background, n_coalitions=n_coalitions
    )
    stacked, after_s = _timed(
        lambda: stacked_explainer.explain_batch(instances, random_state=seed)
    )
    identical = all(
        np.array_equal(s.values, b.values) for s, b in zip(serial, stacked)
    )
    return {
        "label": label,
        "n_rows": N_INSTANCES,
        "before_s": before_s,
        "after_s": after_s,
        "rows_per_s_before": N_INSTANCES / before_s,
        "rows_per_s_after": N_INSTANCES / after_s,
        "speedup": before_s / after_s,
        "identical": bool(identical),
        "n_coalitions": n_coalitions,
    }


def compute_rows():
    forest, gbm, logistic, X_eval = _fit_models()

    def logistic_predict(Z):
        return logistic.predict_proba(Z)[:, 1]

    workloads = [
        _tree_shap_workload(
            "tree_shap batch, forest (20 trees)", forest, X_eval
        ),
        _tree_shap_workload(
            "tree_shap batch, gbm (30 stages)", gbm, X_eval
        ),
        _kernel_shap_workload(
            "kernel_shap stacked, exhaustive (254 masks)",
            logistic_predict,
            X_eval,
            n_coalitions=2**N_FEATURES - 2,
            seed=0,
        ),
        _kernel_shap_workload(
            "kernel_shap stacked, sampled (64 masks)",
            logistic_predict,
            X_eval,
            n_coalitions=64,
            seed=0,
        ),
    ]

    rows = []
    record = {
        "n_rows": N_ROWS,
        "n_instances": N_INSTANCES,
        "n_features": N_FEATURES,
        "workloads": {},
    }
    for w in workloads:
        rows.append((
            w["label"],
            f"{w['rows_per_s_before']:,.0f}",
            f"{w['rows_per_s_after']:,.0f}",
            f"{w['speedup']:.1f}x",
            "bit-identical" if w["identical"] else "DIVERGED",
        ))
        record["workloads"][w["label"]] = {
            k: v for k, v in w.items() if k != "label"
        }
    if not SMOKE:  # smoke runs must not overwrite the baseline
        out_path = Path(__file__).resolve().parent / "BENCH_inference.json"
        merge_bench_record(out_path, "a15_explainer_kernels", record)
    return rows, record


def test_a15_explainer_kernels(benchmark):
    rows, record = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        f"A15 (perf): vectorized explainer kernels vs retained per-row/"
        f"per-instance references ({N_ROWS:,} TreeSHAP rows, "
        f"{N_INSTANCES} KernelSHAP instances)",
        ["workload", "rows/s before", "rows/s after", "speedup",
         "invariant"],
        rows,
    )
    workloads = record["workloads"]
    # every vectorized path reproduces its retained reference exactly
    assert all(w["identical"] for w in workloads.values())
    # arena-wide TreeSHAP clears the acceptance bar on both ensembles
    assert workloads[
        "tree_shap batch, forest (20 trees)"
    ]["speedup"] >= MIN_TREE_SPEEDUP
    assert workloads[
        "tree_shap batch, gbm (30 stages)"
    ]["speedup"] >= MIN_TREE_SPEEDUP
    # stacked KernelSHAP clears its bar in the exhaustive regime (the
    # serving default for small d) and never regresses when sampling
    exhaustive = workloads["kernel_shap stacked, exhaustive (254 masks)"]
    sampled = workloads["kernel_shap stacked, sampled (64 masks)"]
    assert exhaustive["speedup"] >= MIN_KERNEL_SPEEDUP
    assert sampled["speedup"] >= (0.8 if SMOKE else 1.0)
