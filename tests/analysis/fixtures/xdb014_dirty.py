"""Dirty fixture for XDB014: provably incompatible shapes, with one
operand's shape resolved through a helper's function summary."""

import numpy as np

__all__ = ["make_basis", "project", "bad_concat"]


def make_basis():
    return np.ones((4, 5))  # summary exports float64[4,5]


def project():
    basis = make_basis()  # shape crosses the call boundary
    lhs = np.zeros((3, 3))
    return lhs @ basis  # finding 1: (3, 3) @ (4, 5) can never multiply


def bad_concat():
    a = np.zeros((2, 3))
    b = make_basis()  # (4, 5): no non-axis dim agrees with (2, 3)
    return np.concatenate([a, b], axis=0)  # finding 2
