"""Surrogate-model explainability beyond LIME (tutorial §2.1.1).

- :class:`GlobalSurrogate` distils a black box into one inherently
  interpretable model (a shallow CART tree or a linear model) over the
  whole input distribution, reporting its *fidelity* — how often the
  surrogate agrees with the black box — so users can judge whether the
  surrogate's story can be trusted.
- :class:`LinearModelTreeSurrogate` implements the linear-model-tree idea
  (Lahiri & Edakunni 2020): partition the input space with a shallow tree,
  then fit a local linear model in each leaf; an instance's explanation is
  its leaf's linear coefficients — contextual, piecewise-linear
  explanations that stay faithful where a single global line cannot.
"""

from __future__ import annotations

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import FeatureAttribution, PredictFn
from xaidb.models.linear import LinearRegression
from xaidb.models.tree import DecisionTreeRegressor
from xaidb.utils.validation import check_array, check_fitted

__all__ = ["surrogate_fidelity", "GlobalSurrogate", "LinearModelTreeSurrogate"]


def surrogate_fidelity(
    predict_fn: PredictFn,
    surrogate_fn: PredictFn,
    X: np.ndarray,
    *,
    kind: str = "r2",
) -> float:
    """Agreement between a black box and its surrogate on ``X``.

    ``kind="r2"`` treats outputs as scores and returns the R^2 of the
    surrogate against the black box; ``kind="agreement"`` thresholds both
    at 0.5 and returns label-agreement rate.
    """
    X = check_array(X, name="X", ndim=2)
    black_box = np.asarray(predict_fn(X), dtype=float)
    proxy = np.asarray(surrogate_fn(X), dtype=float)
    if kind == "agreement":
        return float(np.mean((black_box >= 0.5) == (proxy >= 0.5)))
    if kind == "r2":
        ss_res = float(np.sum((black_box - proxy) ** 2))
        ss_tot = float(np.sum((black_box - black_box.mean()) ** 2))
        # xailint: disable=XDB006 (exact-zero denominator guard)
        if ss_tot == 0.0:
            # xailint: disable=XDB006 (exact-zero numerator of the degenerate R^2 case)
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot
    raise ValidationError(f"kind must be 'r2' or 'agreement', got {kind!r}")


class GlobalSurrogate:
    """Distil a black-box score function into an interpretable model.

    Parameters
    ----------
    kind:
        ``"tree"`` (shallow CART regressor on the scores) or ``"linear"``.
    max_depth:
        Tree depth budget; small values keep the surrogate readable.
    """

    def __init__(self, *, kind: str = "tree", max_depth: int = 3) -> None:
        if kind not in ("tree", "linear"):
            raise ValidationError(f"kind must be 'tree' or 'linear', got {kind!r}")
        self.kind = kind
        self.max_depth = max_depth
        self.model_: DecisionTreeRegressor | LinearRegression | None = None
        self.fidelity_: float | None = None

    def fit(self, predict_fn: PredictFn, X: np.ndarray) -> "GlobalSurrogate":
        """Fit the surrogate to the black box's scores on ``X``."""
        X = check_array(X, name="X", ndim=2)
        scores = np.asarray(predict_fn(X), dtype=float)
        if self.kind == "tree":
            self.model_ = DecisionTreeRegressor(max_depth=self.max_depth)
        else:
            self.model_ = LinearRegression()
        self.model_.fit(X, scores)
        self.fidelity_ = surrogate_fidelity(
            predict_fn, self.model_.predict, X, kind="r2"
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["model_"])
        return self.model_.predict(X)

    def explanation(self, feature_names: list[str]) -> FeatureAttribution:
        """A global importance summary.

        For a linear surrogate, the coefficients; for a tree surrogate,
        total impurity-weighted split usage per feature.
        """
        check_fitted(self, ["model_"])
        if isinstance(self.model_, LinearRegression):
            values = self.model_.coef_
            base = float(self.model_.intercept_)
        else:
            tree = self.model_.tree_
            values = np.zeros(len(feature_names))
            for node in range(tree.node_count):
                if not tree.is_leaf(node):
                    values[tree.feature[node]] += float(tree.n_node_samples[node])
            total = values.sum()
            if total > 0:
                values = values / total
            base = float(tree.value[0, 0])
        return FeatureAttribution(
            feature_names=list(feature_names),
            values=np.asarray(values, dtype=float),
            base_value=base,
            metadata={"fidelity_r2": self.fidelity_, "kind": self.kind},
        )


class LinearModelTreeSurrogate:
    """Piecewise-linear surrogate: a shallow tree with per-leaf linear fits.

    ``explain(instance)`` routes the instance to its leaf and returns that
    leaf's linear coefficients as a *contextual* explanation, together with
    the leaf's local fidelity.
    """

    def __init__(self, *, max_depth: int = 2, min_samples_leaf: int = 30,
                 l2: float = 1e-3) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.l2 = l2
        self.partition_: DecisionTreeRegressor | None = None
        self.leaf_models_: dict[int, LinearRegression] | None = None
        self.leaf_fidelity_: dict[int, float] | None = None
        self.feature_names_: list[str] | None = None

    def fit(
        self,
        predict_fn: PredictFn,
        dataset: Dataset,
    ) -> "LinearModelTreeSurrogate":
        X = dataset.X
        scores = np.asarray(predict_fn(X), dtype=float)
        self.partition_ = DecisionTreeRegressor(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        )
        self.partition_.fit(X, scores)
        self.feature_names_ = dataset.feature_names
        self.leaf_models_ = {}
        self.leaf_fidelity_ = {}
        leaves = self.partition_.apply(X)
        for leaf in np.unique(leaves):
            rows = leaves == leaf
            local = LinearRegression(l2=self.l2)
            local.fit(X[rows], scores[rows])
            self.leaf_models_[int(leaf)] = local
            fitted = local.predict(X[rows])
            ss_res = float(np.sum((scores[rows] - fitted) ** 2))
            ss_tot = float(np.sum((scores[rows] - scores[rows].mean()) ** 2))
            self.leaf_fidelity_[int(leaf)] = (
                1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
            )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["partition_", "leaf_models_"])
        X = check_array(X, name="X", ndim=2)
        leaves = self.partition_.apply(X)
        out = np.empty(X.shape[0])
        for leaf in np.unique(leaves):
            rows = leaves == leaf
            out[rows] = self.leaf_models_[int(leaf)].predict(X[rows])
        return out

    def explain(self, instance: np.ndarray) -> FeatureAttribution:
        """The linear explanation of the leaf region containing ``instance``.

        Attribution values are ``coef * instance`` contributions so they
        are comparable across features with different scales.
        """
        check_fitted(self, ["partition_", "leaf_models_"])
        instance = check_array(instance, name="instance", ndim=1)
        leaf = int(self.partition_.apply(instance[None, :])[0])
        local = self.leaf_models_[leaf]
        contributions = local.coef_ * instance
        return FeatureAttribution(
            feature_names=list(self.feature_names_),
            values=contributions,
            base_value=float(local.intercept_),
            prediction=float(local.predict(instance[None, :])[0]),
            metadata={
                "leaf": leaf,
                "leaf_fidelity_r2": self.leaf_fidelity_[leaf],
                "coefficients": local.coef_.tolist(),
            },
        )
