import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    accuracy,
    r2_score,
)


class TestDecisionTreeClassifier:
    def test_fits_xor_perfectly(self):
        X = np.asarray(
            [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 10, dtype=float
        )
        y = np.asarray([0.0, 1.0, 1.0, 0.0] * 10)
        model = DecisionTreeClassifier().fit(X, y)
        assert accuracy(y, model.predict(X)) == 1.0

    def test_max_depth_respected(self, income):
        model = DecisionTreeClassifier(max_depth=3).fit(
            income.dataset.X, income.dataset.y
        )
        assert model.tree_.max_depth() <= 3

    def test_min_samples_leaf_respected(self, income):
        model = DecisionTreeClassifier(min_samples_leaf=25).fit(
            income.dataset.X, income.dataset.y
        )
        leaves = model.tree_.leaves()
        assert all(model.tree_.n_node_samples[leaf] >= 25 for leaf in leaves)

    def test_separable_data_needs_one_split(self):
        X = np.linspace(0, 1, 20).reshape(-1, 1)
        model = DecisionTreeClassifier().fit(
            np.vstack([X, X + 2]), np.concatenate([np.zeros(20), np.ones(20)])
        )
        # one split separates the two blocks; children are pure leaves
        assert model.tree_.node_count == 3

    def test_single_class_degrades_to_constant(self):
        """Bootstrap samples of rare classes can be single-class; the tree
        must become a constant predictor rather than fail."""
        model = DecisionTreeClassifier().fit(np.ones((5, 1)), np.zeros(5))
        assert model.tree_.node_count == 1
        assert np.all(model.predict(np.zeros((3, 1))) == 0.0)
        assert np.allclose(model.predict_proba(np.zeros((3, 1))), 1.0)

    def test_predict_proba_rows_sum_to_one(self, income):
        model = DecisionTreeClassifier(max_depth=4).fit(
            income.dataset.X, income.dataset.y
        )
        proba = model.predict_proba(income.dataset.X[:20])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_apply_returns_leaves(self, income):
        model = DecisionTreeClassifier(max_depth=4).fit(
            income.dataset.X, income.dataset.y
        )
        leaves = model.apply(income.dataset.X[:10])
        assert all(model.tree_.is_leaf(int(leaf)) for leaf in leaves)

    def test_decision_path_starts_at_root_ends_at_leaf(self, income):
        model = DecisionTreeClassifier(max_depth=4).fit(
            income.dataset.X, income.dataset.y
        )
        path = model.decision_path(income.dataset.X[0])
        assert path[0] == 0
        assert model.tree_.is_leaf(path[-1])
        assert all(not model.tree_.is_leaf(node) for node in path[:-1])

    def test_cover_consistency(self, income):
        """Every internal node's cover equals the sum of its children's."""
        model = DecisionTreeClassifier(max_depth=5).fit(
            income.dataset.X, income.dataset.y
        )
        tree = model.tree_
        for node in range(tree.node_count):
            if not tree.is_leaf(node):
                left, right = tree.children_left[node], tree.children_right[node]
                assert tree.n_node_samples[node] == pytest.approx(
                    tree.n_node_samples[left] + tree.n_node_samples[right]
                )

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_deeper_fits_better(self, regression_data):
        X, y, __ = regression_data
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert r2_score(y, deep.predict(X)) > r2_score(y, shallow.predict(X))

    def test_leaf_values_are_means(self):
        X = np.asarray([[0.0], [0.1], [0.9], [1.0]])
        y = np.asarray([1.0, 3.0, 10.0, 20.0])
        model = DecisionTreeRegressor(max_depth=1).fit(X, y)
        tree = model.tree_
        # variance-minimising split isolates the 20 outlier:
        # {1,3,10} vs {20} beats {1,3} vs {10,20}
        leaf_values = sorted(tree.value[leaf, 0] for leaf in tree.leaves())
        assert leaf_values == pytest.approx([14.0 / 3.0, 20.0])

    def test_constant_target_single_leaf(self):
        model = DecisionTreeRegressor().fit(
            np.arange(10, dtype=float).reshape(-1, 1), np.full(10, 3.0)
        )
        assert model.tree_.node_count == 1
        assert model.predict(np.asarray([[5.0]]))[0] == pytest.approx(3.0)

    def test_max_features_subsampling_changes_trees(self, regression_data):
        X, y, __ = regression_data
        a = DecisionTreeRegressor(max_features=1, random_state=0).fit(X, y)
        b = DecisionTreeRegressor(max_features=1, random_state=123).fit(X, y)
        # different random feature subsets should usually give different roots
        assert (
            a.tree_.feature[0] != b.tree_.feature[0]
            or a.tree_.threshold[0] != b.tree_.threshold[0]
        )
