"""Dirty fixture for XDB023: denominators whose proven interval
contains 0, in-function and through a callee precondition."""

import numpy as np

__all__ = ["normalized_scores", "bucket_average", "normalize_margin"]


def normalized_scores(scores):
    weights = np.abs(scores)
    total = weights.sum()  # proven range [0, inf]: can be exactly 0
    return scores / total  # finding 1


def bucket_average(total, buckets):
    return total / len(buckets)  # finding 2: len() can be 0


def _rescale(values, denom):
    # denom is an unguarded parameter: silent here, but the summary
    # exports the nonzero precondition checked at every call site
    return values / denom


def normalize_margin(margin):
    weights = np.abs(margin)
    return _rescale(weights, weights.sum())  # finding 3: arg can be 0
