"""LIME for text classification (tutorial §2.4).

The paper notes LIME "can be applied to textual data to identify specific
words that explain the outcome of a text classification model".  The
interpretable representation is word presence/absence: perturbations drop
random subsets of the document's words, the black box scores the reduced
documents, and a weighted ridge surrogate attributes the score to words.

The module also ships a tiny bag-of-words naive-Bayes-style classifier so
examples and tests are self-contained without any external NLP stack.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution
from xaidb.utils.kernels import exponential_kernel
from xaidb.utils.linalg import solve_psd
from xaidb.utils.rng import RandomState, check_random_state

__all__ = [
    "TextPredictFn",
    "tokenize",
    "BagOfWordsClassifier",
    "LimeTextExplainer",
]

TextPredictFn = Callable[[Sequence[str]], np.ndarray]


def tokenize(text: str) -> list[str]:
    """Lowercase whitespace/punctuation tokenizer."""
    cleaned = "".join(c.lower() if c.isalnum() else " " for c in text)
    return [token for token in cleaned.split() if token]


class BagOfWordsClassifier:
    """Multinomial-naive-Bayes text classifier over binary labels.

    Small enough to train instantly; exists so the text-LIME example and
    tests have a real black box to explain.
    """

    def __init__(self, *, smoothing: float = 1.0) -> None:
        self.smoothing = smoothing
        self.log_prior_: np.ndarray | None = None
        self.word_log_odds_: dict[str, np.ndarray] | None = None
        self.default_log_prob_: np.ndarray | None = None

    def fit(
        self, documents: Sequence[str], labels: Sequence[int]
    ) -> "BagOfWordsClassifier":
        if len(documents) != len(labels):
            raise ValidationError("documents and labels length mismatch")
        labels = np.asarray(labels, dtype=int)
        counts = [Counter(), Counter()]
        class_totals = np.zeros(2)
        for document, label in zip(documents, labels):
            tokens = tokenize(document)
            counts[label].update(tokens)
            class_totals[label] += len(tokens)
        vocabulary = set(counts[0]) | set(counts[1])
        v = len(vocabulary) or 1
        self.word_log_odds_ = {}
        for word in vocabulary:
            probs = np.asarray(
                [
                    (counts[k][word] + self.smoothing)
                    / (class_totals[k] + self.smoothing * v)
                    for k in (0, 1)
                ]
            )
            self.word_log_odds_[word] = np.log(probs)
        self.default_log_prob_ = np.log(
            np.asarray(
                [
                    self.smoothing / (class_totals[k] + self.smoothing * v)
                    for k in (0, 1)
                ]
            )
        )
        class_counts = np.bincount(labels, minlength=2).astype(float)
        self.log_prior_ = np.log((class_counts + 1.0) / (class_counts.sum() + 2.0))
        return self

    def predict_proba(self, documents: Sequence[str]) -> np.ndarray:
        if self.log_prior_ is None:
            raise ValidationError("classifier is not fitted")
        out = np.zeros((len(documents), 2))
        for i, document in enumerate(documents):
            log_joint = self.log_prior_.copy()
            for token in tokenize(document):
                log_joint += self.word_log_odds_.get(
                    token, self.default_log_prob_
                )
            log_joint -= log_joint.max()
            joint = np.exp(log_joint)
            # xailint: disable=XDB023 (the max shift leaves one term at exp(0) = 1, so the sum is >= 1)
            out[i] = joint / joint.sum()
        return out

    def positive_proba(self, documents: Sequence[str]) -> np.ndarray:
        return self.predict_proba(documents)[:, 1]


class LimeTextExplainer(Explainer):
    """Word-level LIME for any text score function.

    Parameters
    ----------
    n_samples:
        Number of word-dropout perturbations.
    kernel_width:
        Locality kernel width over cosine-ish distance in word space
        (fraction of dropped words).
    l2:
        Ridge penalty of the surrogate.
    """

    def __init__(
        self,
        *,
        n_samples: int = 500,
        kernel_width: float = 0.75,
        l2: float = 1.0,
    ) -> None:
        if n_samples < 10:
            raise ValidationError("n_samples must be at least 10")
        self.n_samples = n_samples
        self.kernel_width = kernel_width
        self.l2 = l2

    def explain(
        self,
        predict_fn: TextPredictFn,
        document: str,
        *,
        random_state: RandomState = None,
    ) -> FeatureAttribution:
        """Attribute ``predict_fn``'s score on ``document`` to its distinct
        words (presence = 1, dropped = 0)."""
        tokens = tokenize(document)
        if not tokens:
            raise ValidationError("document has no tokens")
        vocabulary = sorted(set(tokens))
        rng = check_random_state(random_state)
        d = len(vocabulary)
        Z = np.ones((self.n_samples, d))
        Z[1:] = (rng.random(size=(self.n_samples - 1, d)) < 0.5).astype(float)
        # make sure no perturbation is completely empty
        empty = Z.sum(axis=1) == 0
        Z[empty, 0] = 1.0
        word_index = {word: i for i, word in enumerate(vocabulary)}
        # One gather instead of a per-mask token scan: column j of
        # ``kept`` answers "does this perturbation keep occurrence j of
        # the document?" for all perturbations at once.
        token_cols = np.asarray(
            [word_index[t] for t in tokens], dtype=np.intp
        )
        tokens_arr = np.asarray(tokens, dtype=object)
        kept = Z[:, token_cols] > 0.5
        documents = [" ".join(tokens_arr[row]) for row in kept]
        predictions = np.asarray(predict_fn(documents), dtype=float)
        distances = 1.0 - Z.mean(axis=1)
        weights = exponential_kernel(distances, self.kernel_width)
        design = np.column_stack([Z, np.ones(self.n_samples)])
        weighted = design * weights[:, None]
        penalty = np.eye(d + 1) * self.l2
        penalty[-1, -1] = 0.0
        theta = solve_psd(weighted.T @ design + penalty, weighted.T @ predictions)
        return FeatureAttribution(
            feature_names=vocabulary,
            values=theta[:-1],
            base_value=float(theta[-1]),
            prediction=float(predictions[0]),
            metadata={"n_samples": self.n_samples, "document": document},
        )
