"""Compatibility shim: the distribution is named ``repro`` but the public
import package is :mod:`xaidb`.  ``import repro`` re-exports everything so
either name works."""

from xaidb import *  # noqa: F401,F403
from xaidb import __version__  # noqa: F401
