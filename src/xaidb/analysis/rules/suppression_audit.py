"""XDB012 — suppression hygiene: unused or reason-less suppressions.

Suppressions are the pressure valve that keeps rules strict: an
intentional violation gets an inline ``# xailint: disable=XDB00N
(reason)`` instead of a weakened rule.  That only stays auditable if
the set of suppressions tracks the set of findings.  This rule reports:

- a suppression whose rule id never matched a finding on its target
  line (the violation was fixed, the code moved, or the id was wrong);
- a standalone suppression comment with no following code line (end of
  file or trailing comments) — previously these were silently dropped;
- a suppression without the parenthesised reason that this repo's
  convention (docs/LINTING.md) requires.

Unlike the other rules it needs *engine-level* accounting: only the
engine knows which :class:`~xaidb.analysis.suppressions.Suppression`
entries actually fired after filtering, so
:mod:`xaidb.analysis.engine` synthesises the findings and this class
carries the metadata (id, symbol, description).  Two consequences are
deliberate: XDB012 findings are themselves exempt from suppression
filtering (a suppression cannot vouch for itself), and "unused" is
only ever reported for rule ids that were part of the active rule set,
so ``--rules`` subsets do not produce false positives.
"""

from __future__ import annotations

from xaidb.analysis.registry import Rule, register

__all__ = ["SuppressionAuditRule"]


@register
class SuppressionAuditRule(Rule):
    rule_id = "XDB012"
    symbol = "unused-suppression"
    description = (
        "A # xailint: disable= comment is stale (its rule id never "
        "matched a finding), dangles past the last code line, or is "
        "missing the parenthesised reason the repo convention "
        "requires."
    )
