#!/usr/bin/env python
"""Repo wrapper for the xailint static-analysis pass.

Equivalent to ``python -m xaidb.analysis`` but runnable from anywhere
without installing the package: it puts ``src/`` on the path and
defaults to the repo-standard scan set.  Exits non-zero on findings, so
it can gate CI and pre-commit hooks directly:

    python tools/xailint.py                 # scan src benchmarks examples tools
    python tools/xailint.py src --format json
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from xaidb.analysis.cli import DEFAULT_SCAN_PATHS, main  # noqa: E402


def _default_args() -> list[str]:
    argv = sys.argv[1:]
    if any(not arg.startswith("-") for arg in argv):
        return argv  # caller supplied explicit paths
    defaults = [
        str(REPO_ROOT / name)
        for name in DEFAULT_SCAN_PATHS
        if (REPO_ROOT / name).is_dir()
    ]
    return defaults + argv


if __name__ == "__main__":
    sys.exit(main(_default_args()))
