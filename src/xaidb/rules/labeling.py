"""Rule-based weak supervision (tutorial §2.2.1).

The tutorial points to Snorkel (Ratner et al. 2017), Snuba (Varma & Ré
2018) and adaptive rule discovery (Galhotra et al. 2021) as the
data-management lineage behind rule-based data mining: instead of
hand-labelling data, analysts write (or mine) *labeling functions* —
noisy rules voting on labels — and a label model denoises the votes.

This module provides that substrate:

- :class:`LabelingFunction` — a predicate-based voter that may abstain;
- :class:`LabelModel` — accuracy-weighted vote aggregation: each
  function's accuracy is estimated from its agreement with the
  majority-vote consensus (one EM-style refinement round), then votes are
  combined by weighted log-odds.  This is the classical Dawid-Skene
  flavour of Snorkel's generative model, tractable and dependency-free;
- :func:`mine_labeling_rules` — Snuba-style automatic rule induction:
  from a small labelled seed set, mine high-precision single/double
  predicate rules (reusing the decision-set predicate space) and keep a
  diverse committee that maximises coverage of the unlabelled data.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import ValidationError
from xaidb.utils.validation import check_array, check_probability

__all__ = [
    "ABSTAIN",
    "LabelingFunction",
    "apply_labeling_functions",
    "LabelModel",
    "mine_labeling_rules",
]

ABSTAIN = -1


@dataclass(frozen=True)
class LabelingFunction:
    """A weak voter: ``func(row) -> {0, 1}`` or ``ABSTAIN`` (-1)."""

    name: str
    func: Callable[[np.ndarray], int]

    def __call__(self, row: np.ndarray) -> int:
        vote = int(self.func(row))
        if vote not in (0, 1, ABSTAIN):
            raise ValidationError(
                f"labeling function {self.name!r} returned {vote}; "
                f"allowed: 0, 1 or ABSTAIN (-1)"
            )
        return vote


def apply_labeling_functions(
    functions: Sequence[LabelingFunction], X: np.ndarray
) -> np.ndarray:
    """Vote matrix of shape ``(n_rows, n_functions)`` with -1 = abstain."""
    X = check_array(X, name="X", ndim=2)
    if not functions:
        raise ValidationError("need at least one labeling function")
    votes = np.empty((X.shape[0], len(functions)), dtype=int)
    for j, function in enumerate(functions):
        votes[:, j] = [function(row) for row in X]
    return votes


class LabelModel:
    """Accuracy-weighted denoising of labeling-function votes.

    ``fit`` estimates each function's accuracy against the (majority-vote)
    consensus on rows where it does not abstain, then re-estimates the
    consensus using accuracy-weighted log-odds — one round of the
    classic EM recipe, which is where most of the gain lives.

    Attributes
    ----------
    accuracies_:
        Estimated accuracy per labeling function (clipped away from 0/1).
    """

    def __init__(self, *, clip: float = 0.05) -> None:
        check_probability(clip, name="clip")
        self.clip = clip
        self.accuracies_: np.ndarray | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _majority(votes: np.ndarray) -> np.ndarray:
        """Per-row majority of non-abstain votes (ties/all-abstain -> 0.5)."""
        n = votes.shape[0]
        consensus = np.full(n, 0.5)
        for i in range(n):
            cast = votes[i][votes[i] != ABSTAIN]
            if cast.size:
                rate = cast.mean()
                if rate > 0.5:
                    consensus[i] = 1.0
                elif rate < 0.5:
                    consensus[i] = 0.0
        return consensus

    def fit(self, votes: np.ndarray) -> "LabelModel":
        votes = np.asarray(votes, dtype=int)
        if votes.ndim != 2:
            raise ValidationError("votes must be a 2-D matrix")
        consensus = self._majority(votes)
        # xailint: disable=XDB006 (consensus is a mean of exact -1/0/+1 votes; 0.5 is representable)
        decided = consensus != 0.5
        accuracies = np.empty(votes.shape[1])
        for j in range(votes.shape[1]):
            cast = (votes[:, j] != ABSTAIN) & decided
            if not cast.any():
                accuracies[j] = 0.5
            else:
                accuracies[j] = float(
                    np.mean(votes[cast, j] == consensus[cast])
                )
        self.accuracies_ = np.clip(accuracies, self.clip, 1.0 - self.clip)
        return self

    def predict_proba(self, votes: np.ndarray) -> np.ndarray:
        """P(label = 1) per row from accuracy-weighted log-odds."""
        if self.accuracies_ is None:
            raise ValidationError("fit() first")
        votes = np.asarray(votes, dtype=int)
        weights = np.log(self.accuracies_ / (1.0 - self.accuracies_))
        log_odds = np.zeros(votes.shape[0])
        for j, weight in enumerate(weights):
            cast = votes[:, j] != ABSTAIN
            signs = np.where(votes[cast, j] == 1, 1.0, -1.0)
            log_odds[cast] += weight * signs
        return 1.0 / (1.0 + np.exp(-log_odds))

    def predict(self, votes: np.ndarray) -> np.ndarray:
        """Hard labels (ties at exactly 0.5 go to class 0)."""
        return (self.predict_proba(votes) > 0.5).astype(float)

    def coverage(self, votes: np.ndarray) -> float:
        """Fraction of rows with at least one non-abstain vote."""
        votes = np.asarray(votes, dtype=int)
        return float(np.mean((votes != ABSTAIN).any(axis=1)))


# ----------------------------------------------------------------------
# Snuba-style rule induction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CandidateRule:
    columns: tuple[int, ...]
    thresholds: tuple[float, ...]
    directions: tuple[int, ...]  # +1: value > threshold, -1: value <= threshold
    target: int
    precision: float
    coverage: float
    name: str


def mine_labeling_rules(
    seed: Dataset,
    *,
    min_precision: float = 0.8,
    min_coverage: float = 0.05,
    max_rules: int = 10,
    max_length: int = 2,
    n_thresholds: int = 3,
) -> list[LabelingFunction]:
    """Induce high-precision labeling functions from a small labelled seed.

    Candidate predicates are threshold tests at seed quantiles (and exact
    matches for categorical columns folded into thresholds); conjunctions
    up to ``max_length`` predicates are scored by precision/coverage on
    the seed, and a committee is selected greedily to maximise *new*
    coverage — Snuba's diversity heuristic.
    """
    if seed.y is None:
        raise ValidationError("seed dataset must be labelled")
    check_probability(min_precision, name="min_precision")
    X, y = seed.X, seed.y.astype(int)
    n = len(y)

    # per-column candidate (threshold, direction) pairs
    atoms: list[tuple[int, float, int]] = []
    for column in range(seed.n_features):
        values = X[:, column]
        quantiles = np.unique(
            np.quantile(values, np.linspace(0, 1, n_thresholds + 2)[1:-1])
        )
        for threshold in quantiles:
            atoms.append((column, float(threshold), +1))
            atoms.append((column, float(threshold), -1))

    def mask_of(combo) -> np.ndarray:
        mask = np.ones(n, dtype=bool)
        for column, threshold, direction in combo:
            if direction > 0:
                mask &= X[:, column] > threshold
            else:
                mask &= X[:, column] <= threshold
        return mask

    candidates: list[_CandidateRule] = []
    for length in range(1, max_length + 1):
        for combo in combinations(atoms, length):
            columns = [column for column, __, __ in combo]
            if len(set(columns)) != len(columns):
                continue
            mask = mask_of(combo)
            covered = int(mask.sum())
            if covered < max(2, int(min_coverage * n)):
                continue
            for target in (0, 1):
                precision = float(np.mean(y[mask] == target))
                if precision < min_precision:
                    continue
                text = " AND ".join(
                    f"{seed.feature_names[column]} "
                    f"{'>' if direction > 0 else '<='} {threshold:.3g}"
                    for column, threshold, direction in combo
                )
                candidates.append(
                    _CandidateRule(
                        columns=tuple(columns),
                        thresholds=tuple(t for __, t, __ in combo),
                        directions=tuple(d for __, __, d in combo),
                        target=target,
                        precision=precision,
                        # xailint: disable=XDB023 (covered >= 2 via the coverage guard implies n >= 2)
                        coverage=covered / n,
                        name=f"lf[{text} => {target}]",
                    )
                )

    # greedy committee by marginal coverage, precision as tiebreak
    candidates.sort(key=lambda c: (-c.precision, -c.coverage))
    chosen: list[_CandidateRule] = []
    covered = np.zeros(n, dtype=bool)
    for candidate in candidates:
        if len(chosen) >= max_rules:
            break
        mask = mask_of(
            list(zip(candidate.columns, candidate.thresholds, candidate.directions))
        )
        if chosen and not (mask & ~covered).any():
            continue  # adds nothing new
        chosen.append(candidate)
        covered |= mask

    def build(rule: _CandidateRule) -> LabelingFunction:
        columns, thresholds, directions, target = (
            rule.columns, rule.thresholds, rule.directions, rule.target,
        )

        def func(row: np.ndarray) -> int:
            for column, threshold, direction in zip(
                columns, thresholds, directions
            ):
                value = row[column]
                if direction > 0 and not value > threshold:
                    return ABSTAIN
                if direction < 0 and not value <= threshold:
                    return ABSTAIN
            return target

        return LabelingFunction(name=rule.name, func=func)

    return [build(rule) for rule in chosen]
