"""Clean fixture for XDB023: the same divisions, but every denominator
is clamped or guarded so its proven interval excludes 0."""

import numpy as np

__all__ = ["normalized_scores", "bucket_average", "normalize_margin"]


def normalized_scores(scores):
    weights = np.abs(scores)
    total = np.maximum(weights.sum(), 1e-12)  # clamp lifts the bound
    return scores / total


def bucket_average(total, buckets):
    if len(buckets) == 0:
        return 0.0
    return total / len(buckets)  # fall-through proves len >= 1


def _rescale(values, denom):
    return values / denom


def normalize_margin(margin):
    weights = np.abs(margin)
    total = np.maximum(weights.sum(), 1e-12)
    return _rescale(weights, total)  # argument proven >= 1e-12
