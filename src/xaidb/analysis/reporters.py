"""Output formats for xailint results.

Two reporters ship: a human-oriented text format (one
``path:line:col: RULE message`` line per finding, grouped summary) and
a machine-oriented JSON document with a versioned, stable schema that
``tests/analysis`` pins down::

    {
      "schema_version": 1,
      "files_scanned": 12,
      "ok": false,
      "findings": [
        {"path": "...", "line": 3, "col": 0, "rule": "XDB001",
         "symbol": "banned-import", "message": "...", "severity": "error"}
      ],
      "suppressed_count": 2,
      "summary": {"XDB001": 1}
    }
"""

from __future__ import annotations

import json

from xaidb.analysis.findings import Finding, LintResult

__all__ = [
    "JSON_SCHEMA_VERSION",
    "render_text",
    "render_json",
    "finding_to_dict",
]

JSON_SCHEMA_VERSION = 1


def finding_to_dict(finding: Finding) -> dict[str, object]:
    """The stable JSON representation of one finding."""
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "symbol": finding.symbol,
        "message": finding.message,
        "severity": finding.severity,
    }


def render_text(result: LintResult) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} [{f.symbol}] {f.message}"
        for f in result.findings
    ]
    counts = result.counts_by_rule()
    if counts:
        lines.append("")
        for rule_id, count in counts.items():
            lines.append(f"{rule_id}: {count} finding(s)")
    noun = "file" if result.files_scanned == 1 else "files"
    status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    suffix = (
        f", {len(result.suppressed)} suppressed"
        if result.suppressed
        else ""
    )
    lines.append(
        f"xailint: {result.files_scanned} {noun} scanned, {status}{suffix}"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report with a pinned schema version."""
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "ok": result.ok,
        "findings": [finding_to_dict(f) for f in result.findings],
        "suppressed_count": len(result.suppressed),
        "summary": result.counts_by_rule(),
    }
    return json.dumps(document, indent=2, sort_keys=True)
