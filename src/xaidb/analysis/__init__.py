"""xailint — xaidb's self-hosted static-analysis pass.

The tutorial's central warning (PAPER.md §2) is that explanations lose
validity silently: unseeded randomness, hidden library behaviour and
impure explainers make a reproduction drift from the results it claims
to match without any test failing.  This package turns the repo's
scientific-correctness conventions into machine-checked invariants
(rule ids XDB001–XDB032, documented in ``docs/LINTING.md``) that gate
every PR via ``tests/analysis/test_lint_clean.py``.

Six tiers of rules ship: syntactic/AST-pattern checks
(XDB001–XDB009); a flow-sensitive tier (XDB010–XDB013) built on a
per-function CFG (:mod:`xaidb.analysis.cfg`) and a forward dataflow
framework with reaching-definitions and value-taint instantiations
(:mod:`xaidb.analysis.dataflow`); and an interprocedural tier
(XDB014–XDB017) built on a project-wide call graph
(:mod:`xaidb.analysis.callgraph`), bottom-up function summaries over
its SCC condensation (:mod:`xaidb.analysis.summaries`) and an ndarray
shape/dtype abstract domain (:mod:`xaidb.analysis.shapes`); a
concurrency/determinism tier (XDB018–XDB022); and a numeric-safety tier
(XDB023–XDB027) built on a value-range abstract interpretation
(:mod:`xaidb.analysis.intervals`) whose interval domain tracks bounds,
may-be-NaN flags and array lengths flow-sensitively and across calls;
and a typestate/exception-flow tier (XDB028–XDB032) that proves
lifecycle contracts against protocol DFAs
(:mod:`xaidb.analysis.typestate`) and threads interprocedural
may-raise summaries (:mod:`xaidb.analysis.raises`) through the same
summary cache.
Findings with a mechanical remedy are repaired by ``xailint --fix``
(:mod:`xaidb.analysis.fixes`).  Scans are
commit-speed via a content-hash-keyed incremental cache
(:mod:`xaidb.analysis.cache`) that also persists function summaries
per SCC, and ``--format sarif`` emits CI-ready annotations.

Programmatic use::

    from xaidb.analysis import run_paths

    result = run_paths(["src", "benchmarks"])
    assert result.ok, [str(f) for f in result.findings]

Command line::

    python -m xaidb.analysis src benchmarks examples tools
"""

from xaidb.analysis.cache import LintCache, file_digest, ruleset_digest
from xaidb.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
    strongly_connected_components,
)
from xaidb.analysis.cfg import CFG, Block, build_cfg, function_cfg
from xaidb.analysis.dataflow import (
    ForwardProblem,
    ReachingDefinitions,
    ValueTaint,
    solve_forward,
    view_sources,
)
from xaidb.analysis.engine import discover_files, lint_source, run_paths
from xaidb.analysis.findings import Finding, LintResult, ScanStats
from xaidb.analysis.fixes import (
    FIXABLE_RULES,
    FileFix,
    FixReport,
    apply_fixes,
    plan_fixes,
)
from xaidb.analysis.raises import encode_raises, may_raise
from xaidb.analysis.typestate import (
    PROTOCOLS,
    Protocol,
    TypestateAnalysis,
)
from xaidb.analysis.intervals import (
    AbstractNum,
    Interval,
    IntervalAnalysis,
    interval_hull,
)
from xaidb.analysis.registry import (
    FileRule,
    ProjectRule,
    Rule,
    all_rules,
    register,
    rules_by_id,
)
from xaidb.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_github,
    render_json,
    render_sarif,
    render_stats,
    render_text,
)
from xaidb.analysis.shapes import (
    AbstractArray,
    ShapeAnalysis,
    broadcast_shapes,
    concat_shapes,
    matmul_shapes,
)
from xaidb.analysis.summaries import (
    FunctionSummary,
    InterprocAnalysis,
)
from xaidb.analysis.suppressions import (
    Suppression,
    SuppressionIndex,
    parse_suppressions,
)

__all__ = [
    "Finding",
    "LintResult",
    "ScanStats",
    "Rule",
    "FileRule",
    "ProjectRule",
    "register",
    "all_rules",
    "rules_by_id",
    "discover_files",
    "lint_source",
    "run_paths",
    "render_text",
    "render_json",
    "render_sarif",
    "render_github",
    "render_stats",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
    "CFG",
    "Block",
    "build_cfg",
    "function_cfg",
    "ForwardProblem",
    "ReachingDefinitions",
    "ValueTaint",
    "solve_forward",
    "view_sources",
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "build_call_graph",
    "strongly_connected_components",
    "AbstractArray",
    "ShapeAnalysis",
    "broadcast_shapes",
    "matmul_shapes",
    "concat_shapes",
    "FunctionSummary",
    "InterprocAnalysis",
    "LintCache",
    "file_digest",
    "ruleset_digest",
    "Suppression",
    "SuppressionIndex",
    "parse_suppressions",
    "Interval",
    "AbstractNum",
    "IntervalAnalysis",
    "interval_hull",
    "FIXABLE_RULES",
    "FileFix",
    "FixReport",
    "plan_fixes",
    "apply_fixes",
    "Protocol",
    "PROTOCOLS",
    "TypestateAnalysis",
    "may_raise",
    "encode_raises",
]
