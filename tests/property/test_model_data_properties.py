"""Property-based tests on models and data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from xaidb.models import DecisionTreeRegressor, LinearRegression
from xaidb.models.metrics import roc_auc


@st.composite
def regression_problem(draw):
    n = draw(st.integers(10, 60))
    d = draw(st.integers(1, 4))
    X = draw(
        hnp.arrays(
            float,
            (n, d),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    w = draw(
        hnp.arrays(
            float, (d,), elements=st.floats(-3, 3, allow_nan=False)
        )
    )
    return X, X @ w, w


@settings(max_examples=30, deadline=None)
@given(problem=regression_problem())
def test_ols_interpolates_noiseless_linear_data(problem):
    X, y, w = problem
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.predict(X), y, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(problem=regression_problem())
def test_tree_predictions_within_target_range(problem):
    """A regression tree predicts leaf means, so every prediction lies in
    [min(y), max(y)] — no extrapolation ever."""
    X, y, __ = problem
    model = DecisionTreeRegressor(max_depth=4).fit(X, y)
    predictions = model.predict(X)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    scores=hnp.arrays(
        float,
        st.integers(4, 40),
        # half-precision grid keeps score gaps representable after the
        # affine transform below (denormals would collapse into ties)
        elements=st.floats(0, 1, allow_nan=False, width=16),
    ),
    seed=st.integers(0, 1000),
)
def test_auc_invariant_to_monotone_transform(scores, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, len(scores)).astype(float)
    if y.min() == y.max():
        y[0] = 1.0 - y[0]
    direct = roc_auc(y, scores)
    transformed = roc_auc(y, scores * 7.0 + 3.0)  # strictly monotone map
    assert np.isclose(direct, transformed)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(5, 50))
def test_dataset_split_is_partition(seed, n):
    from xaidb.data import Dataset

    rng = np.random.default_rng(seed)
    ds = Dataset(X=rng.normal(size=(n, 2)), y=np.arange(n, dtype=float))
    train, test = ds.split(test_fraction=0.3, random_state=seed)
    combined = sorted(np.concatenate([train.y, test.y]).tolist())
    assert combined == list(range(n))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_incremental_linear_equals_retrain_for_random_deletions(seed):
    from xaidb.incremental import IncrementalLinearRegression

    rng = np.random.default_rng(seed)
    n, d = 40, 3
    X = rng.normal(size=(n, d))
    y = X @ rng.normal(size=d) + 0.1 * rng.normal(size=n)
    inc = IncrementalLinearRegression(l2=0.1).fit(X, y)
    n_delete = int(rng.integers(1, 15))
    rows = rng.choice(n, size=n_delete, replace=False)
    inc.delete_rows(rows)
    reference = inc.retrained_reference()
    assert np.allclose(inc.coef_, reference.coef_, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_knn_shapley_efficiency_for_random_data(seed):
    from xaidb.datavaluation import knn_shapley_values
    from xaidb.datavaluation.knn_shapley import knn_utility

    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 25))
    X = rng.normal(size=(n, 2))
    y = rng.integers(0, 2, n).astype(float)
    Xv = rng.normal(size=(5, 2))
    yv = rng.integers(0, 2, 5).astype(float)
    k = int(rng.integers(1, min(5, n) + 1))
    values = knn_shapley_values(X, y, Xv, yv, k=k)
    assert np.isclose(values.sum(), knn_utility(X, y, Xv, yv, k=k), atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_treeshap_local_accuracy_random_trees(seed):
    from xaidb.explainers.shapley import TreeShapExplainer

    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 3))
    y = rng.normal(size=60)
    model = DecisionTreeRegressor(max_depth=3, random_state=seed).fit(X, y)
    explainer = TreeShapExplainer(model)
    x = X[int(rng.integers(0, 60))]
    att = explainer.explain(x)
    assert att.additive_check(atol=1e-8)
