"""Data Shapley: equitable valuation of training data
(Ghorbani & Zou 2019).

The value of training point ``i`` is its Shapley value in the game whose
players are training points and whose payoff is validation performance.
Exact computation needs a retrain per coalition; the paper's **Truncated
Monte Carlo (TMC) Shapley** samples random permutations, walks each
prefix retraining as points join, and *truncates* a permutation once the
running utility is within ``truncation_tolerance`` of the full-data
utility (later points then contribute ~nothing).  The tolerance is the
E14 ablation knob.
"""

from __future__ import annotations

import numpy as np

from xaidb.datavaluation.utility import UtilityFunction
from xaidb.exceptions import ValidationError
from xaidb.runtime import EvalStats, WorkerPool, parallel_map, resolve_shared
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["tmc_shapley_values", "DataShapley"]


def _tmc_permutation(
    task: tuple[UtilityFunction, object, object, int, float, float, float],
) -> np.ndarray:
    """Walk one seeded permutation — the process-pool work unit.

    Each permutation derives its ordering from its own spawned seed, so
    the walk is independent of every other permutation and of execution
    order: serial and parallel runs are bit-identical.  On the pooled
    path the training arrays arrive as
    :class:`~xaidb.runtime.SharedArrayRef` handles (attached once per
    worker process), serially as the plain arrays.
    """
    (
        utility,
        X_train,
        y_train,
        seed,
        full_utility,
        null_utility,
        truncation_tolerance,
    ) = task
    X_train = resolve_shared(X_train)
    y_train = resolve_shared(y_train)
    n = len(y_train)
    order = check_random_state(seed).permutation(n)
    sample = np.zeros(n)
    previous = null_utility
    for position, point in enumerate(order):
        prefix = order[: position + 1]
        current = utility(X_train, y_train, prefix)
        sample[point] = current - previous
        previous = current
        if abs(full_utility - current) <= truncation_tolerance:
            break  # later points in this permutation contribute ~nothing
    return sample


def tmc_shapley_values(
    utility: UtilityFunction,
    X_train: np.ndarray,
    y_train: np.ndarray,
    *,
    n_permutations: int = 100,
    truncation_tolerance: float = 0.01,
    random_state: RandomState = None,
    n_jobs: int | None = None,
    stats: EvalStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """TMC-Shapley values.

    Parameters
    ----------
    n_jobs:
        Worker processes for the (embarrassingly parallel) permutation
        walks; ``None``/``1`` runs serially.  Values are bit-identical
        for every ``n_jobs`` under a fixed ``random_state`` — each
        permutation owns a spawned child seed.  On the pooled path the
        training arrays are shipped once through the worker pool's
        shared-memory arena instead of pickled into every task.
    stats:
        Optional :class:`~xaidb.runtime.EvalStats` ledger; pooled walks
        record warm-pool reuse there.

    Returns
    -------
    (values, standard_errors):
        Monte-Carlo estimates and their standard errors over permutations.
    """
    X_train = check_array(X_train, name="X_train", ndim=2)
    y_train = check_array(y_train, name="y_train", ndim=1)
    check_matching_lengths(("X_train", X_train), ("y_train", y_train))
    if n_permutations < 1:
        raise ValidationError("n_permutations must be >= 1")
    full_utility = utility(X_train, y_train)
    null_utility = utility.null_utility()
    seeds = spawn_seeds(random_state, n_permutations)
    X_payload: object = X_train
    y_payload: object = y_train
    if n_jobs is not None and n_jobs > 1:
        pool = WorkerPool.get()
        X_payload = pool.share(X_train)
        y_payload = pool.share(y_train)
    walks = parallel_map(
        _tmc_permutation,
        [
            (
                utility,
                X_payload,
                y_payload,
                seed,
                full_utility,
                null_utility,
                truncation_tolerance,
            )
            for seed in seeds
        ],
        n_jobs=n_jobs,
        stats=stats,
    )
    samples = np.asarray(walks)
    values = samples.mean(axis=0)
    if n_permutations > 1:
        errors = samples.std(axis=0, ddof=1) / np.sqrt(n_permutations)
    else:
        errors = np.full(len(y_train), np.nan)
    return values, errors


class DataShapley:
    """Object-style wrapper storing the data and exposing analysis helpers
    (the removal curves of Ghorbani & Zou's Figure 3 / experiment E14)."""

    def __init__(
        self,
        utility: UtilityFunction,
        X_train: np.ndarray,
        y_train: np.ndarray,
        *,
        n_permutations: int = 100,
        truncation_tolerance: float = 0.01,
        n_jobs: int | None = None,
    ) -> None:
        self.utility = utility
        self.X_train = check_array(X_train, name="X_train", ndim=2)
        self.y_train = check_array(y_train, name="y_train", ndim=1)
        self.n_permutations = n_permutations
        self.truncation_tolerance = truncation_tolerance
        self.n_jobs = n_jobs
        self.values_: np.ndarray | None = None
        self.errors_: np.ndarray | None = None
        #: Ledger of the most recent :meth:`fit` (wall-time and, on the
        #: pooled path, warm-pool reuse across repeated fits).
        self.stats_: EvalStats | None = None

    def fit(self, *, random_state: RandomState = None) -> "DataShapley":
        self.stats_ = EvalStats()
        with self.stats_.timer():
            self.values_, self.errors_ = tmc_shapley_values(
                self.utility,
                self.X_train,
                self.y_train,
                n_permutations=self.n_permutations,
                truncation_tolerance=self.truncation_tolerance,
                random_state=random_state,
                n_jobs=self.n_jobs,
                stats=self.stats_,
            )
        return self

    # ------------------------------------------------------------------
    def removal_curve(
        self,
        *,
        remove: str = "high",
        fractions: np.ndarray | None = None,
        values: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Utility after removing the top/bottom-valued fraction of data.

        ``remove="high"`` removes the most valuable points first (utility
        should collapse quickly if values are meaningful);
        ``remove="low"`` removes the least valuable first (utility should
        hold or improve — corrupted points go first).  ``values`` defaults
        to the fitted Shapley values, but any scoring (LOO, random) can be
        passed for baseline comparison.
        """
        if values is None:
            if self.values_ is None:
                raise ValidationError("call fit() first or pass values")
            values = self.values_
        if remove not in ("high", "low"):
            raise ValidationError("remove must be 'high' or 'low'")
        if fractions is None:
            fractions = np.linspace(0.0, 0.5, 11)
        order = np.argsort(values)
        if remove == "high":
            order = order[::-1]
        n = len(self.y_train)
        utilities = []
        for fraction in fractions:
            n_removed = int(round(fraction * n))
            keep = order[n_removed:]
            utilities.append(
                self.utility(self.X_train, self.y_train, keep)
            )
        return np.asarray(fractions), np.asarray(utilities)
