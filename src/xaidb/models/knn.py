"""k-nearest-neighbour classifier.

Besides being a baseline model, k-NN is the substrate of KNN-Shapley
(Jia et al. 2019): the exact data-Shapley value under a k-NN utility has a
closed form, so :mod:`xaidb.datavaluation.knn_shapley` reuses this
class's neighbour ordering.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.base import Classifier
from xaidb.utils.kernels import pairwise_distances
from xaidb.utils.validation import check_array, check_fitted

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(Classifier):
    """Majority-vote k-NN with Euclidean distance.

    Ties in distance are broken by training index (stable sort), which
    makes neighbour orderings — and hence KNN-Shapley values — fully
    deterministic.
    """

    def __init__(self, *, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValidationError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.X_: np.ndarray | None = None
        self.y_index_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = self._validate_fit_args(X, y)
        if self.n_neighbors > len(y):
            raise ValidationError(
                f"n_neighbors={self.n_neighbors} exceeds training size {len(y)}"
            )
        self.y_index_ = self._encode_labels(y)
        self.X_ = X.copy()
        return self

    def kneighbors(self, X: np.ndarray) -> np.ndarray:
        """Indices of each query row's k nearest training rows, closest
        first (shape ``(n_queries, k)``)."""
        check_fitted(self, ["X_"])
        X = check_array(X, name="X", ndim=2)
        distances = pairwise_distances(X, self.X_)
        order = np.argsort(distances, axis=1, kind="mergesort")
        return order[:, : self.n_neighbors]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        neighbors = self.kneighbors(X)
        n_classes = len(self.classes_)
        votes = np.zeros((X.shape[0], n_classes))
        for row, neighbor_indices in enumerate(neighbors):
            counts = np.bincount(
                self.y_index_[neighbor_indices], minlength=n_classes
            )
            votes[row] = counts / counts.sum()
        return votes
