"""Cross-module integration flows: each test exercises a full story from
the tutorial, chaining several subsystems together."""

import numpy as np
import pytest

from xaidb.data import make_credit, make_income
from xaidb.explainers import (
    LimeExplainer,
    predict_positive_proba,
)
from xaidb.explainers.counterfactual import GecoExplainer, LinearRecourse
from xaidb.explainers.shapley import KernelShapExplainer, TreeShapExplainer
from xaidb.models import (
    GradientBoostedClassifier,
    LogisticRegression,
    accuracy,
)
from xaidb.rules import AnchorsExplainer


class TestExplainOneDecisionManyWays:
    """One denied credit applicant, explained by every §2.1/§2.2 family —
    the hands-on demo the tutorial promises."""

    @pytest.fixture(scope="class")
    def scenario(self):
        workload = make_credit(700, random_state=42)
        train, test = workload.dataset.split(test_fraction=0.3, random_state=1)
        model = GradientBoostedClassifier(
            n_estimators=30, max_depth=3, random_state=0
        ).fit(train.X, train.y)
        f = predict_positive_proba(model)
        scores = f(test.X)
        denied = test.X[int(np.argmin(scores))]
        return workload, train, model, f, denied

    def test_all_explainers_run_and_agree_on_direction(self, scenario):
        workload, train, model, f, denied = scenario
        lime = LimeExplainer(train, n_samples=600).explain(
            f, denied, random_state=0
        )
        kernel = KernelShapExplainer(
            f, train.X[:20], feature_names=train.feature_names
        ).explain(denied, random_state=0)
        tree = TreeShapExplainer(
            model, feature_names=train.feature_names
        ).explain(denied)

        # each explanation exposes the same interface
        for attribution in (lime, kernel, tree):
            assert len(attribution.values) == train.n_features
            assert attribution.ranked()

        # SHAP variants satisfy their additivity contracts
        assert kernel.additive_check(atol=1e-8)
        assert tree.additive_check(atol=1e-8)

        # methods should broadly agree on the top driver of this denial
        top_sets = [
            {name for name, __ in attribution.top(3)}
            for attribution in (lime, kernel, tree)
        ]
        assert top_sets[0] & top_sets[1] & top_sets[2]

    def test_anchor_and_counterfactual_complement(self, scenario):
        workload, train, model, f, denied = scenario
        anchor = AnchorsExplainer(
            f, train, precision_threshold=0.9, max_anchor_size=3
        ).explain(denied, random_state=0)
        assert anchor.precision > 0.7

        counterfactuals = GecoExplainer(
            f, train, n_generations=20
        ).generate(denied, n_counterfactuals=2, random_state=0)
        assert counterfactuals.validity() == 1.0
        # the counterfactual must escape the anchor's region: at least one
        # anchored feature changes or the anchor did not constrain the
        # counterfactual's features at all
        changed = {
            train.feature_names.index(name)
            for name in counterfactuals[0].changes()
        }
        assert changed  # something moved


class TestDebuggingStory:
    """§2.3 + §3: corrupt data, detect with influence, fix incrementally,
    validate with provenance."""

    def test_full_debugging_loop(self):
        workload = make_income(500, random_state=7)
        X, y = workload.dataset.X.copy(), workload.dataset.y.copy()
        rng = np.random.default_rng(0)
        negatives = np.flatnonzero(y == 0.0)
        corrupted = rng.choice(negatives, size=30, replace=False)
        y[corrupted] = 1.0

        model = LogisticRegression(l2=1e-2).fit(X, y)

        from xaidb.db import Complaint, ComplaintDebugger

        debugger = ComplaintDebugger(model, X, y, X)
        complaint = Complaint(
            query_rows=np.arange(len(X)), direction=-1,
            description="income-positive rate looks inflated",
        )
        ranking = debugger.rank_training_points(complaint)
        recall = debugger.recall_at_k(ranking, corrupted, k=60)
        assert recall > 0.4

        # fix by removal, but do the removal *incrementally* (PrIU-style)
        from xaidb.incremental import IncrementalLogisticRegression

        # removing the *most influential* rows is the hardest case for a
        # warm start, so give the update two Newton refinements
        incremental = IncrementalLogisticRegression(
            l2=1e-2, refine_steps=2
        ).fit(X, y)
        blamed = ranking[:30].tolist()
        incremental.delete_rows(blamed)
        reference = incremental.retrained_reference()
        assert np.allclose(incremental.theta_, reference.theta_, atol=1e-3)

        # cleaned model should predict closer to ground-truth labels
        truth = workload.dataset.y
        before = accuracy(truth, model.predict(X))
        after = accuracy(truth, incremental.predict(X))
        assert after >= before - 0.02  # removal must not hurt; usually helps

    def test_provenance_pins_the_guilty_stage(self):
        from xaidb.models import accuracy as metric_accuracy
        from xaidb.pipelines import (
            ImputeMean,
            LabelFlipCorruption,
            PipelineDebugger,
            ProvenancePipeline,
            ScaleStandard,
        )

        workload = make_income(400, random_state=8)
        X, y = workload.dataset.X.copy(), workload.dataset.y.copy()
        X[::30, 2] = np.nan
        pipeline = ProvenancePipeline(
            [ImputeMean(), LabelFlipCorruption(fraction=0.3), ScaleStandard()],
            random_state=0,
        )
        fresh = workload.resample(300, random_state=99)
        debugger = PipelineDebugger(
            pipeline, LogisticRegression(l2=1e-2), metric_accuracy
        )
        attributions = debugger.stage_ablation(X, y, fresh.X, fresh.y)
        assert attributions[0].stage_name == "label_flip_corruption"


class TestSqlExplanationStory:
    """§3: a query over model predictions, explained at the tuple level."""

    def test_shapley_of_tuples_through_model_query(self):
        from xaidb.db import Relation, aggregate, select, shapley_of_tuples

        workload = make_income(200, random_state=3)
        model = LogisticRegression(l2=1e-2).fit(
            workload.dataset.X, workload.dataset.y
        )
        f = predict_positive_proba(model)

        # serve a tiny table of 6 applicants with model scores attached
        rows = [
            {**workload.dataset.row_as_dict(i, decode=False), "score": float(s)}
            for i, s in enumerate(f(workload.dataset.X[:6]))
        ]
        table = Relation.from_dicts("applicants", rows)
        high_scorers = select(table, lambda r: r["score"] >= 0.5)

        def query(rel: Relation) -> float:
            return aggregate(rel, "count")

        phi = shapley_of_tuples(table, lambda rel: aggregate(
            select(rel, lambda r: r["score"] >= 0.5), "count"
        ))
        # for a count query each qualifying tuple contributes exactly 1
        qualifying = {row.provenance.lineage() for row in high_scorers}
        for token, value in phi.items():
            expected = 1.0 if frozenset({token}) in qualifying else 0.0
            assert value == pytest.approx(expected)
