"""The xailint engine: file discovery, parsing, rule dispatch, caching.

The engine is deliberately dependency-free (stdlib ``ast`` +
``tokenize`` only) so it can gate CI in the same offline environment
the library itself targets.  Usage::

    from xaidb.analysis import run_paths

    result = run_paths(["src", "benchmarks"])
    assert result.ok, result.findings

Pipeline per scan:

1. discover ``.py`` files, read bytes, content-hash each;
2. per file, either serve the raw (pre-suppression) file-rule findings
   and parsed suppression entries from the incremental cache
   (``cache_path=``) or parse and run every
   :class:`~xaidb.analysis.registry.FileRule`;
3. run :class:`~xaidb.analysis.registry.ProjectRule` checks over the
   whole corpus (cached wholesale under a corpus digest — any file
   change invalidates them);
4. filter findings through inline suppressions, *recording which
   suppression entries fired*, then synthesise XDB012 findings for
   stale/dangling/reason-less suppressions.

Steps 1 and 4 always run fresh; that keeps cached and uncached scans
finding-for-finding identical while a warm run skips all parsing.
"""

from __future__ import annotations

import ast
import time
from pathlib import Path
from typing import Iterable, Sequence

from xaidb.analysis.cache import LintCache, file_digest, ruleset_digest
from xaidb.analysis.findings import Finding, LintResult
from xaidb.analysis.registry import (
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    Rule,
    all_rules,
)
from xaidb.analysis.suppressions import (
    Suppression,
    SuppressionIndex,
    parse_suppressions,
)

__all__ = ["discover_files", "lint_source", "run_paths", "PARSE_ERROR_ID"]

#: Pseudo rule id for files the parser rejects; not suppressible.
PARSE_ERROR_ID = "XDB000"

#: Engine-synthesised suppression-audit rule (see rules/suppression_audit).
_AUDIT_RULE_ID = "XDB012"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules"}


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand ``paths`` (files or directories) into a sorted list of
    ``.py`` files, skipping cache/VCS directories."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIR_NAMES:
                    continue
                found.add(candidate)
    return sorted(found)


def _module_name(path: Path) -> tuple[str, bool]:
    """Best-effort dotted module name and whether it is inside ``xaidb``.

    Works from the path alone: everything after a ``src`` or site-root
    component is treated as package structure.
    """
    parts = list(path.with_suffix("").parts)
    for anchor in ("xaidb",):
        if anchor in parts:
            tail = parts[parts.index(anchor):]
            if tail[-1] == "__init__":
                tail = tail[:-1]
            return ".".join(tail), True
    name = parts[-1] if parts[-1] != "__init__" else (
        parts[-2] if len(parts) > 1 else ""
    )
    return name, False


def _relpath(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            return str(path)
    return str(path)


def _parse_context(
    path: Path, relpath: str, source: str
) -> FileContext | Finding:
    """Parse ``source``; return a context, or a parse-error finding."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_ID,
            symbol="syntax-error",
            message=f"syntax error: {exc.msg}",
        )
    module_name, in_xaidb = _module_name(path)
    return FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        in_xaidb_package=in_xaidb,
        module_name=module_name,
    )


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    module_name: str = "",
    in_xaidb_package: bool = False,
    rule_ids: Sequence[str] | None = None,
) -> LintResult:
    """Lint a source string — the in-memory entry point used by tests.

    Project rules see a single-file corpus, so XDB008-style checks run
    against exactly the snippet provided.  Never cached.
    """
    result = LintResult(files_scanned=1)
    result.stats.files_scanned = 1
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=PARSE_ERROR_ID,
                symbol="syntax-error",
                message=f"syntax error: {exc.msg}",
            )
        )
        return result
    ctx = FileContext(
        path=Path(filename),
        relpath=filename,
        source=source,
        tree=tree,
        in_xaidb_package=in_xaidb_package,
        module_name=module_name,
    )
    rules = all_rules(rule_ids)
    raw = _run_file_rules(
        [r for r in rules if isinstance(r, FileRule)], ctx, result
    )
    raw += _run_project_rules(
        [r for r in rules if isinstance(r, ProjectRule)], [ctx], result
    )
    indexes = {ctx.relpath: parse_suppressions(ctx.source)}
    _filter_and_audit(raw, indexes, rules, result)
    return result


def _lint_file_task(
    task: tuple[str, str, str, tuple[str, ...] | None],
):
    """Per-file worker for the ``jobs=`` fan-out: parse one file and
    run every :class:`FileRule` on it.  Module-level (picklable by
    reference) and fed one picklable tuple, so it can cross the
    ``xaidb.runtime.parallel`` process boundary; project rules stay in
    the parent.  Returns ``(findings, suppression_entries,
    rule_seconds)``."""
    path_str, relpath, source, rule_ids = task
    rules = all_rules(list(rule_ids) if rule_ids is not None else None)
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    scratch = LintResult()
    index = parse_suppressions(source)
    built = _parse_context(Path(path_str), relpath, source)
    if isinstance(built, Finding):
        return [built], index.entries, scratch.stats.rule_seconds
    findings = _run_file_rules(file_rules, built, scratch)
    return findings, index.entries, scratch.stats.rule_seconds


def run_paths(
    paths: Iterable[str | Path],
    *,
    root: str | Path | None = None,
    rule_ids: Sequence[str] | None = None,
    cache_path: str | Path | None = None,
    jobs: int | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` and return the result.

    Parameters
    ----------
    paths:
        Files or directories to scan.
    root:
        Optional base directory findings are reported relative to.
    rule_ids:
        Optional subset of rule ids to run (default: all registered).
    cache_path:
        Optional location of the incremental result cache
        (``.xailint_cache.json``); ``None`` disables caching.
    jobs:
        Fan the per-file parse/file-rule phase out over this many
        worker processes (``None``/``1`` = serial).  Findings are
        identical to a serial scan: suppression filtering, the XDB012
        audit, project rules and the final sort all run in the parent,
        and the report carries no timing, so rendered output is
        byte-for-byte the same.
    """
    started = time.perf_counter()
    root_path = Path(root) if root is not None else None
    use_jobs = jobs is not None and jobs > 1
    result = LintResult()
    rules = all_rules(rule_ids)
    file_rules = [r for r in rules if isinstance(r, FileRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    cache: LintCache | None = None
    if cache_path is not None:
        cache = LintCache(
            Path(cache_path), ruleset_digest([r.rule_id for r in rules])
        )

    raw: list[Finding] = []
    indexes: dict[str, SuppressionIndex] = {}
    digests: list[tuple[str, str]] = []
    #: relpath -> (path, source) for files that still need parsing
    #: should the project rules miss the cache
    pending_parse: dict[str, tuple[Path, str]] = {}
    contexts: list[FileContext] = []
    #: (path, relpath, source, digest) for cache-miss files deferred to
    #: the worker-pool fan-out (``jobs > 1`` only)
    deferred: list[tuple[Path, str, str, str]] = []

    for path in discover_files(paths):
        relpath = _relpath(path, root_path)
        result.files_scanned += 1
        try:
            data = path.read_bytes()
        except OSError as exc:
            raw.append(
                Finding(
                    path=relpath,
                    line=1,
                    col=0,
                    rule_id=PARSE_ERROR_ID,
                    symbol="unreadable-file",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        digest = file_digest(data)
        digests.append((relpath, digest))
        try:
            source = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raw.append(
                Finding(
                    path=relpath,
                    line=1,
                    col=0,
                    rule_id=PARSE_ERROR_ID,
                    symbol="unreadable-file",
                    message=f"cannot read file: {exc}",
                )
            )
            continue

        if cache is not None:
            cached = cache.lookup_file(relpath, digest)
            if cached is not None:
                file_findings, entries = cached
                raw.extend(file_findings)
                indexes[relpath] = SuppressionIndex(entries)
                pending_parse[relpath] = (path, source)
                result.stats.cache_hits += 1
                continue
            result.stats.cache_misses += 1

        if use_jobs:
            deferred.append((path, relpath, source, digest))
            continue

        parse_started = time.perf_counter()
        built = _parse_context(path, relpath, source)
        index = parse_suppressions(source)
        result.stats.parse_seconds += time.perf_counter() - parse_started
        indexes[relpath] = index
        if isinstance(built, Finding):
            raw.append(built)
            if cache is not None:
                cache.store_file(relpath, digest, [built], index.entries)
            continue
        contexts.append(built)
        file_findings = _run_file_rules(file_rules, built, result)
        raw.extend(file_findings)
        if cache is not None:
            cache.store_file(
                relpath, digest, file_findings, index.entries
            )

    if deferred:
        # lazy import: the serial scan stays stdlib-only, and only a
        # --jobs scan pays for (and requires) the runtime's pool
        from xaidb.runtime.parallel import parallel_map

        parse_started = time.perf_counter()
        tasks = [
            (
                str(path),
                relpath,
                source,
                tuple(rule_ids) if rule_ids is not None else None,
            )
            for path, relpath, source, _digest in deferred
        ]
        outcomes = parallel_map(_lint_file_task, tasks, n_jobs=jobs)
        result.stats.parse_seconds += time.perf_counter() - parse_started
        for (path, relpath, source, digest), outcome in zip(
            deferred, outcomes
        ):
            file_findings, entries, rule_seconds = outcome
            indexes[relpath] = SuppressionIndex(entries)
            raw.extend(file_findings)
            # the parent re-parses lazily only if project rules miss
            # their corpus-digest cache (same contract as cache hits)
            pending_parse[relpath] = (path, source)
            for rule_id, seconds in rule_seconds.items():
                result.stats.rule_seconds[rule_id] = (
                    result.stats.rule_seconds.get(rule_id, 0.0) + seconds
                )
            if cache is not None:
                cache.store_file(relpath, digest, file_findings, entries)

    # cross-module rules: cached wholesale under the corpus digest
    if project_rules:
        corpus = cache.corpus_digest(digests) if cache is not None else ""
        project_findings = (
            cache.lookup_project(corpus) if cache is not None else None
        )
        if project_findings is not None:
            result.stats.project_from_cache = True
        else:
            parse_started = time.perf_counter()
            for relpath, (path, source) in pending_parse.items():
                built = _parse_context(path, relpath, source)
                if isinstance(built, FileContext):
                    contexts.append(built)
            result.stats.parse_seconds += (
                time.perf_counter() - parse_started
            )
            # deterministic corpus order regardless of which files came
            # from cache, the fan-out, or the serial loop — call-graph
            # candidate ordering (and the SCC cache keys derived from
            # it) must not depend on the scan mode
            contexts.sort(key=lambda ctx: ctx.relpath)
            project_findings = _run_project_rules(
                project_rules,
                contexts,
                result,
                file_digests=dict(digests),
                cache=cache,
            )
            if cache is not None:
                cache.store_project(corpus, project_findings)
        raw.extend(project_findings)

    if cache is not None:
        cache.prune({relpath for relpath, _digest in digests})
        cache.save()

    _filter_and_audit(raw, indexes, rules, result)
    result.stats.files_scanned = result.files_scanned
    result.stats.total_seconds = time.perf_counter() - started
    return result


def _run_file_rules(
    file_rules: list[FileRule], ctx: FileContext, result: LintResult
) -> list[Finding]:
    findings: list[Finding] = []
    for rule in file_rules:
        rule_started = time.perf_counter()
        findings.extend(rule.check_file(ctx))
        result.stats.rule_seconds[rule.rule_id] = (
            result.stats.rule_seconds.get(rule.rule_id, 0.0)
            + time.perf_counter()
            - rule_started
        )
    return findings


def _run_project_rules(
    project_rules: list[ProjectRule],
    contexts: list[FileContext],
    result: LintResult,
    *,
    file_digests: dict[str, str] | None = None,
    cache: LintCache | None = None,
) -> list[Finding]:
    if not project_rules:
        return []
    findings: list[Finding] = []
    project = ProjectContext(
        files=contexts,
        file_digests=file_digests or {},
        summary_cache=cache,
    )
    for rule in project_rules:
        rule_started = time.perf_counter()
        findings.extend(rule.check_project(project))
        result.stats.rule_seconds[rule.rule_id] = (
            result.stats.rule_seconds.get(rule.rule_id, 0.0)
            + time.perf_counter()
            - rule_started
        )
    interproc = project.interproc_if_built()
    if interproc is not None:
        result.stats.summary_hits += interproc.hits
        result.stats.summary_misses += interproc.misses
        for pass_name, seconds in interproc.pass_seconds.items():
            result.stats.pass_seconds[pass_name] = (
                result.stats.pass_seconds.get(pass_name, 0.0) + seconds
            )
        if cache is not None:
            cache.prune_summaries(interproc.used_keys)
    return findings


def _filter_and_audit(
    raw: list[Finding],
    indexes: dict[str, SuppressionIndex],
    rules: list[Rule],
    result: LintResult,
) -> None:
    """Apply inline suppressions (with usage accounting), then run the
    XDB012 suppression audit over what actually fired."""
    for finding in raw:
        index = indexes.get(finding.path)
        entry = (
            index.match(finding.line, finding.rule_id)
            if index is not None
            else None
        )
        if entry is not None and finding.rule_id != PARSE_ERROR_ID:
            entry.fired.add(finding.rule_id)
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)

    audit_rule = next(
        (r for r in rules if r.rule_id == _AUDIT_RULE_ID), None
    )
    if audit_rule is not None:
        ran_rule_ids = {r.rule_id for r in rules}
        for relpath, index in indexes.items():
            result.findings.extend(
                _audit_file_suppressions(
                    audit_rule, relpath, index, ran_rule_ids
                )
            )

    result.findings.sort(key=Finding.sort_key)
    result.suppressed.sort(key=Finding.sort_key)


def _audit_file_suppressions(
    rule: Rule,
    relpath: str,
    index: SuppressionIndex,
    ran_rule_ids: set[str],
) -> list[Finding]:
    """XDB012: stale, dangling or reason-less suppression comments.

    These findings are synthesised *after* suppression filtering and
    are deliberately not themselves suppressible — a suppression
    cannot vouch for its own hygiene.  "Unused" is only reported for
    ids in the active rule set, so ``--rules`` subsets stay quiet.
    """
    findings: list[Finding] = []

    def emit(entry: Suppression, message: str) -> None:
        findings.append(
            Finding(
                path=relpath,
                line=entry.comment_line,
                col=0,
                rule_id=rule.rule_id,
                symbol=rule.symbol,
                message=message,
                severity=rule.severity,
            )
        )

    for entry in index.entries:
        ids = ", ".join(sorted(entry.rule_ids))
        if entry.reason is None:
            emit(
                entry,
                f"suppression of {ids} has no parenthesised reason; "
                f"the repo convention is "
                f"'# xailint: disable={ids.split(', ')[0]} (why)'",
            )
        if entry.target_line is None:
            emit(
                entry,
                f"standalone suppression of {ids} is not followed by "
                f"any code line; it suppresses nothing — remove it",
            )
            continue
        stale = [
            rule_id
            for rule_id in entry.unused_ids()
            if rule_id in ran_rule_ids and rule_id != rule.rule_id
        ]
        for rule_id in stale:
            emit(
                entry,
                f"suppression of {rule_id} never matched a finding on "
                f"line {entry.target_line}; the violation is gone — "
                f"remove the stale comment",
            )
    return findings
