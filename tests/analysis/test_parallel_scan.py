"""``run_paths(jobs=N)``: the fan-out must be invisible in the output.

The ISSUE 6 acceptance criterion is byte-identity: a ``--jobs 4`` scan
renders exactly the same report as a serial one, cold or warm.  These
tests scan a small synthetic tree (fast, hermetic) and the repo's own
``src/xaidb/analysis`` package (realistic project-rule load).
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from xaidb.analysis import render_json, render_sarif, render_text, run_paths
from xaidb.runtime.parallel import WorkerPool

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY_MODULE = textwrap.dedent(
    """\
    import numpy as np


    def noisy(values, bucket=[]):
        bucket.append(np.random.normal())
        return bucket
    """
)

CLEAN_MODULE = textwrap.dedent(
    """\
    def double(values):
        return [v * 2 for v in values]
    """
)


@pytest.fixture(autouse=True)
def _fresh_pool():
    WorkerPool.close_global()
    yield
    WorkerPool.close_global()


@pytest.fixture()
def tree(tmp_path):
    for i in range(6):
        source = DIRTY_MODULE if i % 2 else CLEAN_MODULE
        (tmp_path / f"mod_{i}.py").write_text(source, encoding="utf-8")
    return tmp_path


def test_jobs_scan_is_byte_identical_on_synthetic_tree(tree):
    serial = run_paths([tree], root=tree, cache_path=None)
    fanned = run_paths([tree], root=tree, cache_path=None, jobs=2)
    assert render_json(serial) == render_json(fanned)
    assert render_text(serial) == render_text(fanned)
    assert render_sarif(serial) == render_sarif(fanned)
    assert serial.findings  # the comparison must not be vacuous


def test_jobs_scan_is_byte_identical_on_real_corpus():
    target = REPO_ROOT / "src" / "xaidb" / "analysis"
    serial = run_paths([target], root=REPO_ROOT, cache_path=None)
    fanned = run_paths([target], root=REPO_ROOT, cache_path=None, jobs=4)
    assert render_json(serial) == render_json(fanned)
    assert serial.files_scanned == fanned.files_scanned


def test_jobs_cold_cache_serves_a_warm_serial_scan(tree, tmp_path):
    cache = tmp_path / "cache.json"
    cold = run_paths([tree], root=tree, cache_path=cache, jobs=2)
    warm = run_paths([tree], root=tree, cache_path=cache)
    assert render_json(cold) == render_json(warm)
    assert warm.stats.cache_hits == warm.files_scanned


def test_jobs_one_is_plain_serial(tree):
    result = run_paths([tree], root=tree, cache_path=None, jobs=1)
    baseline = run_paths([tree], root=tree, cache_path=None)
    assert render_json(result) == render_json(baseline)
