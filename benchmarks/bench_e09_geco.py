"""E9 — GeCo: plausible, feasible counterfactuals in (near) real time
(Schleich et al. 2021 table shape) + the plausibility ablation.

Reproduced shape:

- GeCo's genetic search produces valid counterfactuals changing few
  features with low runtime per explanation;
- with the plausibility constraint DISABLED, the counterfactuals drift
  measurably farther from the data manifold (larger nearest-neighbour
  distance) — the "unrealistic counterfactuals" failure the tutorial
  warns about;
- a random-search baseline with the same query budget finds worse (or
  no) counterfactuals.
"""

import time

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_credit
from xaidb.exceptions import InfeasibleError
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import DiceExplainer, GecoExplainer
from xaidb.models import GradientBoostedClassifier
from xaidb.utils.kernels import pairwise_distances

N_INSTANCES = 5


def _manifold_distance(dataset, candidate):
    scale = np.maximum(dataset.X.std(axis=0), 1e-9)
    return float(
        pairwise_distances(
            (candidate / scale)[None, :], dataset.X / scale
        ).min()
    )


def compute_rows():
    workload = make_credit(700, random_state=0)
    dataset = workload.dataset
    model = GradientBoostedClassifier(
        n_estimators=25, max_depth=3, random_state=0
    ).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)
    scores = f(dataset.X)
    denied = dataset.X[np.flatnonzero((scores > 0.05) & (scores < 0.35))]

    methods = {
        "geco (plausible)": GecoExplainer(f, dataset, n_generations=25),
        # unconstrained search: wider box, no manifold check — the classic
        # "any perturbation that flips the model" setting
        "geco (no plausibility)": GecoExplainer(
            f, dataset, n_generations=25, require_plausible=False,
            range_expansion=1.0,
        ),
        "random baseline": DiceExplainer(
            f, dataset, n_iterations=60, diversity_weight=0.0
        ),
    }
    rows = []
    for name, method in methods.items():
        validity, sparsity, manifold, runtime = [], [], [], []
        for i in range(N_INSTANCES):
            start = time.perf_counter()
            try:
                cf_set = method.generate(
                    denied[i], n_counterfactuals=1, random_state=i
                )
            except InfeasibleError:
                validity.append(0.0)
                continue
            runtime.append(time.perf_counter() - start)
            validity.append(cf_set.validity())
            sparsity.append(cf_set.sparsity())
            manifold.append(
                _manifold_distance(dataset, cf_set[0].counterfactual)
            )
        rows.append(
            (
                name,
                float(np.mean(validity)),
                float(np.mean(sparsity)) if sparsity else float("nan"),
                float(np.mean(manifold)) if manifold else float("nan"),
                float(np.mean(runtime) * 1e3) if runtime else float("nan"),
            )
        )
    return rows


def test_e09_geco(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E9: GeCo quality & plausibility ablation (paper: constrained "
        "search stays on-manifold, stays sparse, stays fast)",
        ["method", "validity", "sparsity", "NN distance", "ms / explanation"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    constrained = by_name["geco (plausible)"]
    unconstrained = by_name["geco (no plausibility)"]
    # xailint: disable=XDB006 (validity rate is a count ratio, exactly 1.0 when all valid)
    assert constrained[1] == 1.0  # all valid
    # ablation shape: dropping the constraint moves counterfactuals
    # farther from the manifold (or at best equal)
    assert unconstrained[3] >= constrained[3] - 1e-9
    # sparse explanations: few features changed
    assert constrained[2] <= 3.0
