"""Argument-validation helpers.

Every public entry point in xaidb validates its inputs through these
functions so error messages are uniform and failures happen at the API
boundary rather than deep inside numerical code.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from xaidb.exceptions import NotFittedError, ValidationError

__all__ = [
    "check_array",
    "check_matching_lengths",
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_fitted",
]


def check_array(
    values: Any,
    *,
    name: str = "array",
    ndim: int | None = None,
    dtype: Any = float,
    allow_empty: bool = False,
    ensure_finite: bool = True,
) -> np.ndarray:
    """Coerce ``values`` to an ndarray and validate its shape and contents.

    Parameters
    ----------
    values:
        Anything convertible by :func:`numpy.asarray`.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    allow_empty:
        Whether a zero-size array is acceptable.
    ensure_finite:
        Reject NaN/inf entries when the dtype is floating.

    Returns
    -------
    numpy.ndarray
        The validated (possibly copied) array.
    """
    try:
        array = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not convertible to an array: {exc}") from exc
    if ndim is not None and array.ndim != ndim:
        raise ValidationError(
            f"{name} must be {ndim}-dimensional, got shape {array.shape}"
        )
    if not allow_empty and array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if ensure_finite and np.issubdtype(array.dtype, np.floating):
        if not np.all(np.isfinite(array)):
            raise ValidationError(f"{name} contains NaN or infinite values")
    return array


def check_matching_lengths(*pairs: tuple[str, Sequence[Any]]) -> None:
    """Validate that every named sequence has the same length.

    Raises :class:`ValidationError` naming the first mismatching pair.
    """
    if not pairs:
        return
    first_name, first_seq = pairs[0]
    expected = len(first_seq)
    for name, seq in pairs[1:]:
        if len(seq) != expected:
            raise ValidationError(
                f"{name} has length {len(seq)} but {first_name} has length {expected}"
            )


def check_positive(value: float, *, name: str, strict: bool = True) -> float:
    """Validate that a scalar is positive (strictly by default)."""
    if strict and not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    *,
    name: str,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Validate that ``low <= value <= high`` (or strict inequality)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_probability(value: float, *, name: str) -> float:
    """Validate that a scalar is a probability in ``[0, 1]``."""
    return check_in_range(value, name=name, low=0.0, high=1.0)


def check_fitted(obj: Any, attributes: Sequence[str]) -> None:
    """Raise :class:`NotFittedError` unless ``obj`` has all ``attributes``
    set to a non-``None`` value."""
    missing = [a for a in attributes if getattr(obj, a, None) is None]
    if missing:
        raise NotFittedError(
            f"{type(obj).__name__} is not fitted yet; call fit() first "
            f"(missing attributes: {', '.join(missing)})"
        )
