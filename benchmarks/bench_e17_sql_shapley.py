"""E17 — Shapley values of tuples in query answering + responsibility
(Livshits, Bertossi, Kimelfeld & Sebag 2021; Meliou et al. 2010).

Reproduced shapes:

- boolean query: the provenance-DNF game gives the dept tuple (present in
  every witness) the dominant value, matching its responsibility of 1;
- Monte-Carlo tuple Shapley converges to exact enumeration as the number
  of permutations grows (the tractability-vs-accuracy trade-off the
  Shapley-in-DB literature centres on);
- aggregate query: tuple Shapley for SUM equals each tuple's own
  contribution (the additive special case) while MAX concentrates value
  on the top tuples.
"""

import numpy as np
import pytest

from benchmarks._tables import print_table
from xaidb.db import (
    Relation,
    aggregate,
    groupby,
    join,
    project,
    responsibility,
    shapley_of_tuples,
    shapley_of_tuples_boolean,
)

PERMUTATION_BUDGETS = [20, 100, 500]


def _database():
    emp = Relation.from_dicts(
        "emp",
        [
            {"name": "ann", "dept": "eng", "salary": 100},
            {"name": "bob", "dept": "eng", "salary": 80},
            {"name": "cat", "dept": "ops", "salary": 90},
            {"name": "dan", "dept": "eng", "salary": 120},
        ],
    )
    dept = Relation.from_dicts(
        "dept", [{"dept": "eng", "city": "sf"}, {"dept": "ops", "city": "ny"}]
    )
    return emp, dept


def compute_rows():
    emp, dept = _database()
    joined = join(emp, dept, on=["dept"])
    cities = project(joined, ["city"])
    sf_answer = [row for row in cities if row["city"] == "sf"][0]

    exact = shapley_of_tuples_boolean(
        sf_answer.provenance, sorted(sf_answer.provenance.lineage(), key=str)
    )
    convergence_rows = []
    for budget in PERMUTATION_BUDGETS:
        sampled = shapley_of_tuples_boolean(
            sf_answer.provenance,
            sorted(sf_answer.provenance.lineage(), key=str),
            n_permutations=budget,
            random_state=0,
        )
        error = max(abs(sampled[t] - exact[t]) for t in exact)
        convergence_rows.append((budget, error))

    boolean_rows = [
        (
            token,
            exact[token],
            responsibility(sf_answer.provenance, token),
        )
        for token in sorted(exact, key=lambda t: -exact[t])
    ]

    sum_phi = shapley_of_tuples(
        emp, lambda rel: aggregate(rel, "sum", "salary")
    )
    max_phi = shapley_of_tuples(
        emp, lambda rel: aggregate(rel, "max", "salary")
    )
    aggregate_rows = [
        (token, sum_phi[token], max_phi[token])
        for token in sorted(sum_phi)
    ]
    return boolean_rows, convergence_rows, aggregate_rows, emp


def test_e17_sql_shapley(benchmark):
    boolean_rows, convergence_rows, aggregate_rows, emp = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "E17a: boolean query 'is sf a dept city?' — tuple Shapley vs "
        "responsibility (paper: counterfactual tuple dominates)",
        ["tuple", "shapley value", "responsibility"],
        boolean_rows,
    )
    print_table(
        "E17b: Monte-Carlo tuple Shapley convergence",
        ["permutations", "max abs error vs exact"],
        convergence_rows,
    )
    print_table(
        "E17c: aggregate tuple Shapley (paper: SUM is additive, MAX "
        "concentrates)",
        ["tuple", "phi for SUM(salary)", "phi for MAX(salary)"],
        aggregate_rows,
    )
    # dept:0 is in every witness: top Shapley value AND responsibility 1
    top_tuple = boolean_rows[0]
    assert top_tuple[0] == "dept:0"
    # xailint: disable=XDB006 (responsibility of a lone counterexample is exactly 1.0)
    assert top_tuple[2] == 1.0
    # Monte-Carlo error shrinks with budget
    assert convergence_rows[-1][1] < convergence_rows[0][1]
    # SUM: phi equals each tuple's salary contribution
    salaries = {f"emp:{i}": float(r["salary"]) for i, r in enumerate(emp.to_dicts())}
    for token, sum_value, __ in aggregate_rows:
        assert sum_value == pytest.approx(salaries[token])
