"""A2 (extension) — rule-based weak supervision (tutorial §2.2.1; Snorkel
Ratner et al. 2017 / Snuba Varma & Ré 2018 shape).

Reproduced shape: labeling functions mined from a small labelled seed,
denoised by an accuracy-weighted label model, label the unlabelled pool
well enough that a classifier trained on the *programmatic* labels
approaches one trained on ground truth — and beats training on the seed
alone.  Accuracy-weighted aggregation beats plain majority vote.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.models import LogisticRegression, accuracy
from xaidb.rules import (
    ABSTAIN,
    LabelModel,
    apply_labeling_functions,
    mine_labeling_rules,
)

SEED_SIZE = 200


def compute_rows():
    workload = make_income(2000, random_state=0)
    dataset = workload.dataset
    seed = dataset.subset(range(SEED_SIZE))
    pool = dataset.subset(range(SEED_SIZE, 1400))
    test = dataset.subset(range(1400, 2000))

    functions = mine_labeling_rules(
        seed, min_precision=0.8, max_rules=12, max_length=2
    )
    votes = apply_labeling_functions(functions, pool.X)
    covered = (votes != ABSTAIN).any(axis=1)

    label_model = LabelModel().fit(votes)
    weak_labels = label_model.predict(votes)

    # majority-vote baseline (unweighted)
    majority = np.full(len(pool.y), 0.5)
    for i in range(len(pool.y)):
        cast = votes[i][votes[i] != ABSTAIN]
        if cast.size:
            majority[i] = float(cast.mean() > 0.5)

    def train_and_score(X, y):
        model = LogisticRegression(l2=1e-2).fit(X, y)
        return accuracy(test.y, model.predict(test.X))

    rows = [
        (
            f"seed only ({SEED_SIZE} gold labels)",
            train_and_score(seed.X, seed.y),
            float("nan"),
        ),
        (
            "weak labels (label model)",
            train_and_score(pool.X[covered], weak_labels[covered]),
            accuracy(pool.y[covered], weak_labels[covered]),
        ),
        (
            "weak labels (majority vote)",
            train_and_score(pool.X[covered], majority[covered]),
            accuracy(pool.y[covered], majority[covered]),
        ),
        (
            "ground truth (oracle)",
            train_and_score(pool.X, pool.y),
            1.0,
        ),
    ]
    return rows, len(functions), float(covered.mean())


def test_a02_weak_supervision(benchmark):
    rows, n_functions, coverage = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "A2 (extension): weak supervision on income "
        f"({n_functions} mined labeling functions, coverage {coverage:.0%})",
        ["training labels", "downstream test accuracy", "label accuracy"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    weak = by_name["weak labels (label model)"][1]
    oracle = by_name["ground truth (oracle)"][1]
    majority_baseline = 0.5
    # programmatic labels approach the oracle
    assert weak > majority_baseline + 0.1
    assert weak > oracle - 0.1
    # the label model's labels are decent
    assert by_name["weak labels (label model)"][2] > 0.7
