"""The built-in xailint rule pack (XDB001–XDB009).

Importing this package registers every rule with
:mod:`xaidb.analysis.registry`; the ids are stable and documented in
``docs/LINTING.md``.
"""

from xaidb.analysis.rules.api_surface import MissingAllRule
from xaidb.analysis.rules.defaults import MutableDefaultRule
from xaidb.analysis.rules.error_handling import BroadExceptRule
from xaidb.analysis.rules.float_compare import FloatEqualityRule
from xaidb.analysis.rules.imports_rule import BannedImportsRule
from xaidb.analysis.rules.project import ExplainerInterfaceRule
from xaidb.analysis.rules.purity import ExplainerPurityRule
from xaidb.analysis.rules.randomness import UnseededRandomnessRule
from xaidb.analysis.rules.runtime_rule import PredictLoopRule

__all__ = [
    "BannedImportsRule",
    "UnseededRandomnessRule",
    "ExplainerPurityRule",
    "MissingAllRule",
    "BroadExceptRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "ExplainerInterfaceRule",
    "PredictLoopRule",
]
