"""Shared fixtures: small, seeded workloads and pre-trained models.

Session-scoped so the suite trains each model once; tests must not
mutate fixture objects (take copies instead).
"""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.data import (
    make_credit,
    make_income,
    make_loans,
    make_recidivism,
    make_two_moons,
)
from xaidb.models import (
    GradientBoostedClassifier,
    GradientBoostedRegressor,
    LogisticRegression,
    RandomForestClassifier,
)


@pytest.fixture(scope="session")
def income():
    return make_income(600, random_state=0)


@pytest.fixture(scope="session")
def credit():
    return make_credit(600, random_state=1)


@pytest.fixture(scope="session")
def loans():
    return make_loans(500, random_state=2)


@pytest.fixture(scope="session")
def recidivism_biased():
    return make_recidivism(500, biased=True, discrete=True, random_state=3)


@pytest.fixture(scope="session")
def moons():
    return make_two_moons(300, random_state=4)


@pytest.fixture(scope="session")
def income_logistic(income):
    return LogisticRegression(l2=1e-2).fit(income.dataset.X, income.dataset.y)


@pytest.fixture(scope="session")
def income_forest(income):
    return RandomForestClassifier(
        n_estimators=10, max_depth=5, random_state=0
    ).fit(income.dataset.X, income.dataset.y)


@pytest.fixture(scope="session")
def income_gbm(income):
    return GradientBoostedClassifier(
        n_estimators=25, max_depth=3, random_state=0
    ).fit(income.dataset.X, income.dataset.y)


@pytest.fixture(scope="session")
def regression_data():
    rng = np.random.default_rng(7)
    X = rng.normal(size=(300, 4))
    true_coef = np.asarray([1.0, 2.0, 0.0, -1.0])
    y = X @ true_coef + 0.1 * rng.normal(size=300)
    return X, y, true_coef


@pytest.fixture(scope="session")
def small_gbr(regression_data):
    X, y, __ = regression_data
    return GradientBoostedRegressor(
        n_estimators=15, max_depth=3, random_state=0
    ).fit(X, y)
