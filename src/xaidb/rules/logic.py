"""Logic-based explanations: sufficient reasons / prime implicants for
decision trees (tutorial §2.2.2; Shih, Choi & Darwiche 2018; Darwiche &
Hirth 2020).

For a decision tree (a decomposable circuit), a **sufficient reason** for
the prediction at ``x`` is a subset-minimal set ``S`` of features such
that *every* completion of the assignment ``x_S`` (letting the other
features range over their whole domains) receives the same prediction.
This is the abductive, provably-correct notion of explanation the
tutorial contrasts with heuristic attributions: the sufficiency score of
``x_S`` is exactly 1.

The entailment check walks the tree: fixing ``x_S`` prunes the branches
inconsistent with those values; the prediction is entailed iff every
remaining reachable leaf agrees.  Features in a sufficient reason relate
to prime implicants of the induced boolean function; features whose
removal from the full set breaks entailment are *necessary* (necessity
score 1).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.tree import DecisionTreeClassifier
from xaidb.utils.validation import check_array

__all__ = [
    "is_sufficient_reason",
    "sufficient_reason",
    "all_sufficient_reasons",
    "necessary_features",
]


def _reachable_classes(
    model: DecisionTreeClassifier, x: np.ndarray, fixed: frozenset
) -> set[int]:
    """Classes of every leaf reachable when features in ``fixed`` are
    pinned to ``x``'s values and all others are unconstrained."""
    tree = model.tree_
    classes: set[int] = set()

    def recurse(node: int) -> None:
        if tree.is_leaf(node):
            classes.add(int(np.argmax(tree.value[node])))
            return
        feature = int(tree.feature[node])
        if feature in fixed:
            if x[feature] <= tree.threshold[node]:
                recurse(int(tree.children_left[node]))
            else:
                recurse(int(tree.children_right[node]))
        else:
            recurse(int(tree.children_left[node]))
            recurse(int(tree.children_right[node]))

    recurse(0)
    return classes


def is_sufficient_reason(
    model: DecisionTreeClassifier,
    x: np.ndarray,
    features: Iterable[int],
    *,
    require_minimal: bool = False,
) -> bool:
    """Whether pinning ``features`` to ``x``'s values entails the tree's
    prediction at ``x`` (and, optionally, whether the set is also
    subset-minimal)."""
    x = check_array(x, name="x", ndim=1)
    fixed = frozenset(int(i) for i in features)
    prediction = {int(np.argmax(model.predict_proba(x[None, :])[0]))}
    if _reachable_classes(model, x, fixed) != prediction:
        return False
    if require_minimal:
        for feature in fixed:
            if _reachable_classes(model, x, fixed - {feature}) == prediction:
                return False
    return True


def sufficient_reason(
    model: DecisionTreeClassifier,
    x: np.ndarray,
    *,
    preference_order: Sequence[int] | None = None,
) -> list[int]:
    """One subset-minimal sufficient reason for the prediction at ``x``.

    Starts from the full feature set (always sufficient) and greedily
    drops features — in ``preference_order`` if given, so callers can bias
    *which* prime implicant they get (e.g. try to drop sensitive features
    first).  The result is subset-minimal by construction.
    """
    x = check_array(x, name="x", ndim=1)
    d = x.shape[0]
    order = list(preference_order) if preference_order is not None else list(range(d))
    if sorted(order) != list(range(d)):
        raise ValidationError("preference_order must be a permutation of features")
    prediction = {int(np.argmax(model.predict_proba(x[None, :])[0]))}
    current = set(range(d))
    for feature in order:
        trial = frozenset(current - {feature})
        if _reachable_classes(model, x, trial) == prediction:
            current.discard(feature)
    return sorted(current)


def all_sufficient_reasons(
    model: DecisionTreeClassifier,
    x: np.ndarray,
    *,
    max_features: int = 15,
) -> list[list[int]]:
    """Every subset-minimal sufficient reason (exhaustive; exponential).

    Only the features actually used by the tree can matter, so the
    enumeration runs over those; refuses instances where that set exceeds
    ``max_features``.
    """
    x = check_array(x, name="x", ndim=1)
    tree = model.tree_
    used = sorted(
        {int(tree.feature[n]) for n in range(tree.node_count) if not tree.is_leaf(n)}
    )
    if len(used) > max_features:
        raise ValidationError(
            f"tree uses {len(used)} features; exhaustive enumeration "
            f"refused beyond {max_features}"
        )
    prediction = {int(np.argmax(model.predict_proba(x[None, :])[0]))}
    sufficient: list[frozenset] = []
    for size in range(len(used) + 1):
        for combo in combinations(used, size):
            candidate = frozenset(combo)
            if any(prior <= candidate for prior in sufficient):
                continue  # a subset already suffices: not minimal
            if _reachable_classes(model, x, candidate) == prediction:
                sufficient.append(candidate)
    return [sorted(s) for s in sufficient]


def necessary_features(
    model: DecisionTreeClassifier, x: np.ndarray
) -> list[int]:
    """Features with necessity score 1: pinning *everything else* does not
    entail the prediction — i.e. the feature appears in **every**
    sufficient reason."""
    x = check_array(x, name="x", ndim=1)
    d = x.shape[0]
    prediction = {int(np.argmax(model.predict_proba(x[None, :])[0]))}
    necessary = []
    everything = set(range(d))
    for feature in range(d):
        without = frozenset(everything - {feature})
        if _reachable_classes(model, x, without) != prediction:
            necessary.append(feature)
    return necessary
