"""XDB003 — in-place mutation of array parameters in explainer bodies.

Explaining an instance must not change it: an ``explain``/``fit`` method
that writes into a caller-owned ndarray corrupts every later explanation
of the same data, which is precisely the kind of silent cross-run
contamination that makes reproductions drift (and that E2/E19 measure).
This rule flags, inside any method named ``explain*`` or ``fit`` of a
class:

- subscript stores into a parameter: ``x[...] = v``, ``x[i] += v``;
- augmented assignment to a parameter name (``x += v`` mutates ndarrays
  in place);
- numpy calls writing into a parameter via ``out=``: ``np.add(a, b,
  out=x)``.

A parameter stops being tracked once rebound to a fresh object
(``x = x.copy()``, ``x = np.array(x)``) — but *not* when rebound through
the no-copy passthroughs ``np.asarray``/``np.asanyarray``/
``np.ascontiguousarray``, which can return the caller's own buffer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["ExplainerPurityRule"]

_METHOD_NAMES_EXACT = {"fit"}
_METHOD_PREFIXES = ("explain",)
_NO_COPY_PASSTHROUGH = {"asarray", "asanyarray", "ascontiguousarray"}


def _is_target_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return node.name in _METHOD_NAMES_EXACT or node.name.startswith(
        _METHOD_PREFIXES
    )


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = [
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    ]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return {n for n in names if n not in ("self", "cls")}


def _rebinding_keeps_alias(value: ast.AST, name: str) -> bool:
    """True when ``name = <value>`` may still alias the caller's array.

    ``x = np.asarray(x)`` returns the input buffer unchanged when it is
    already an ndarray, so mutation afterwards still hits the caller.
    """
    if isinstance(value, ast.Name) and value.id == name:
        return True
    if isinstance(value, ast.Call):
        func = value.func
        fn_name = None
        if isinstance(func, ast.Attribute):
            fn_name = func.attr
        elif isinstance(func, ast.Name):
            fn_name = func.id
        if fn_name in _NO_COPY_PASSTHROUGH:
            for arg in value.args:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
    return False


class _MethodChecker:
    """Statement-ordered scan of one explain/fit body."""

    def __init__(
        self,
        rule: "ExplainerPurityRule",
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str,
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.fn = fn
        self.class_name = class_name
        self.tracked = _param_names(fn)
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        for stmt in self.fn.body:
            self._check_stmt(stmt)
        return self.findings

    def _where(self) -> str:
        return f"{self.class_name}.{self.fn.name}"

    def _check_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._check_store_target(target)
            self._maybe_unbind(stmt.targets, stmt.value)
            self._check_calls(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._check_store_target(stmt.target)
                self._maybe_unbind([stmt.target], stmt.value)
                self._check_calls(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id in self.tracked:
                self.findings.append(
                    self.ctx.finding(
                        self.rule,
                        stmt,
                        f"augmented assignment to parameter "
                        f"{target.id!r} in {self._where()} mutates the "
                        f"caller's array in place; copy first",
                    )
                )
            else:
                self._check_store_target(target)
            self._check_calls(stmt.value)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes get their own parameters
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._check_stmt(child)
                else:
                    self._check_calls(child)

    def _check_store_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and base.id in self.tracked:
                self.findings.append(
                    self.ctx.finding(
                        self.rule,
                        target,
                        f"subscript store into parameter {base.id!r} in "
                        f"{self._where()} mutates the caller's array; "
                        f"copy first",
                    )
                )

    def _maybe_unbind(self, targets: list[ast.AST], value: ast.AST) -> None:
        for target in targets:
            if isinstance(target, ast.Name) and target.id in self.tracked:
                if not _rebinding_keeps_alias(value, target.id):
                    self.tracked.discard(target.id)

    def _check_calls(self, node: ast.AST) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            for kw in call.keywords:
                if (
                    kw.arg == "out"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in self.tracked
                ):
                    self.findings.append(
                        self.ctx.finding(
                            self.rule,
                            call,
                            f"call writes into parameter "
                            f"{kw.value.id!r} via out= in "
                            f"{self._where()}; allocate a fresh output "
                            f"array",
                        )
                    )


@register
class ExplainerPurityRule(FileRule):
    rule_id = "XDB003"
    symbol = "explainer-mutates-input"
    description = (
        "An explain*/fit method mutates one of its array parameters in "
        "place (subscript store, augmented assignment, or out=): "
        "explainers must be pure in their inputs."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_target_method(item):
                    yield from _MethodChecker(
                        self, ctx, item, node.name
                    ).run()
