import numpy as np
import pytest

from xaidb.datavaluation import (
    DataShapley,
    UtilityFunction,
    leave_one_out_values,
    tmc_shapley_values,
)
from xaidb.exceptions import ValidationError
from xaidb.models import KNeighborsClassifier, LogisticRegression


@pytest.fixture(scope="module")
def valuation_setup(income):
    train, valid = income.dataset.split(test_fraction=0.4, random_state=10)
    X_small, y_small = train.X[:40], train.y[:40]
    utility = UtilityFunction(LogisticRegression(l2=1e-2), valid.X, valid.y)
    return X_small, y_small, utility


class TestUtilityFunction:
    def test_full_utility_reasonable(self, valuation_setup):
        X, y, utility = valuation_setup
        assert 0.5 < utility(X, y) <= 1.0

    def test_null_utility_is_majority(self, valuation_setup):
        __, __, utility = valuation_setup
        rate = utility.y_valid.mean()
        assert utility.null_utility() == pytest.approx(max(rate, 1 - rate))

    def test_tiny_subsets_score_null(self, valuation_setup):
        X, y, utility = valuation_setup
        assert utility(X, y, [0]) == utility.null_utility()

    def test_single_class_subset_scores_null(self, valuation_setup):
        X, y, utility = valuation_setup
        ones = np.flatnonzero(y == 1.0)[:5]
        assert utility(X, y, ones) == utility.null_utility()

    def test_subset_none_uses_all(self, valuation_setup):
        X, y, utility = valuation_setup
        assert utility(X, y) == utility(X, y, np.arange(len(y)))

    def test_null_utility_keeps_float_mean_for_integer_targets(self):
        """Regression: with integer-dtype regression targets, the null
        predictor used np.full_like and truncated the mean (1.5 -> 1),
        anchoring every valuation at the wrong baseline."""
        from xaidb.models import DecisionTreeRegressor

        y_valid = np.array([0, 1, 2, 3])  # integer dtype, mean 1.5
        utility = UtilityFunction(
            DecisionTreeRegressor(max_depth=2),
            np.zeros((4, 2)),
            y_valid,
            metric=lambda y, pred: -float(np.mean((y - pred) ** 2)),
        )
        # metric evaluated at the exact float mean, not its truncation
        expected = -float(np.mean((y_valid - 1.5) ** 2))
        assert utility.null_utility() == pytest.approx(expected)


class TestLeaveOneOut:
    def test_values_shape_and_scale(self, valuation_setup):
        X, y, utility = valuation_setup
        values = leave_one_out_values(utility, X, y)
        assert values.shape == (len(y),)
        assert np.all(np.abs(values) <= 1.0)

    def test_corrupted_group_has_lower_mean_value(self, valuation_setup):
        """Flip a batch of labels: the flipped group's mean LOO value must
        fall below the clean group's (single points are too noisy for a
        per-point assertion with a discrete accuracy metric)."""
        X, y, utility = valuation_setup
        y_corrupt = y.copy()
        flipped = np.arange(0, len(y), 4)  # every 4th point
        y_corrupt[flipped] = 1.0 - y_corrupt[flipped]
        values = leave_one_out_values(utility, X, y_corrupt)
        clean = np.setdiff1d(np.arange(len(y)), flipped)
        assert values[flipped].mean() <= values[clean].mean() + 1e-9


class TestTmcShapley:
    def test_efficiency(self, valuation_setup):
        X, y, utility = valuation_setup
        values, __ = tmc_shapley_values(
            utility, X, y, n_permutations=8, truncation_tolerance=0.0,
            random_state=0,
        )
        expected = utility(X, y) - utility.null_utility()
        assert values.sum() == pytest.approx(expected, abs=1e-9)

    def test_truncation_zeroes_tail(self, valuation_setup):
        X, y, utility = valuation_setup
        loose, __ = tmc_shapley_values(
            utility, X, y, n_permutations=4, truncation_tolerance=0.2,
            random_state=1,
        )
        # heavy truncation -> many exact zeros
        assert np.mean(loose == 0.0) > 0.3

    def test_deterministic(self, valuation_setup):
        X, y, utility = valuation_setup
        a, __ = tmc_shapley_values(utility, X, y, n_permutations=3, random_state=2)
        b, __ = tmc_shapley_values(utility, X, y, n_permutations=3, random_state=2)
        assert np.array_equal(a, b)

    def test_corrupted_labels_ranked_low(self, income):
        """Plant label noise; Shapley values must rank corrupted points
        clearly below average (the E14 mechanism)."""
        train, valid = income.dataset.split(test_fraction=0.4, random_state=11)
        X, y = train.X[:50], train.y[:50].copy()
        rng = np.random.default_rng(3)
        corrupted = rng.choice(50, size=10, replace=False)
        y[corrupted] = 1.0 - y[corrupted]
        utility = UtilityFunction(KNeighborsClassifier(n_neighbors=5), valid.X, valid.y)
        values, __ = tmc_shapley_values(
            utility, X, y, n_permutations=40, random_state=4
        )
        mean_corrupt = values[corrupted].mean()
        clean = np.setdiff1d(np.arange(50), corrupted)
        assert mean_corrupt < values[clean].mean()

    def test_rejects_zero_permutations(self, valuation_setup):
        X, y, utility = valuation_setup
        with pytest.raises(ValidationError):
            tmc_shapley_values(utility, X, y, n_permutations=0)


class TestDataShapleyWrapper:
    def test_removal_curves(self, valuation_setup):
        X, y, utility = valuation_setup
        shapley = DataShapley(
            utility, X, y, n_permutations=15
        ).fit(random_state=5)
        fractions, remove_high = shapley.removal_curve(remove="high")
        __, remove_low = shapley.removal_curve(remove="low")
        assert len(fractions) == len(remove_high)
        # removing high-value data must end up no better than removing
        # low-value data
        assert remove_high[-1] <= remove_low[-1] + 0.1

    def test_requires_fit_or_values(self, valuation_setup):
        X, y, utility = valuation_setup
        shapley = DataShapley(utility, X, y)
        with pytest.raises(ValidationError):
            shapley.removal_curve()
        # but explicit values work without fit
        fractions, curve = shapley.removal_curve(
            values=np.arange(len(y), dtype=float)
        )
        assert len(curve) == len(fractions)

    def test_invalid_remove_mode(self, valuation_setup):
        X, y, utility = valuation_setup
        shapley = DataShapley(utility, X, y)
        with pytest.raises(ValidationError):
            shapley.removal_curve(remove="sideways", values=np.zeros(len(y)))
