"""Causal DAGs.

:class:`CausalGraph` is a thin validated wrapper around
:class:`networkx.DiGraph` exposing exactly the queries the explainers need:
parents, topological orderings consistent with the causal structure
(asymmetric Shapley values restrict permutations to these), ancestors /
descendants (causal Shapley's direct/indirect split), and edge enumeration
(Shapley flow assigns credit to edges).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import networkx as nx

from xaidb.exceptions import ValidationError

__all__ = ["CausalGraph"]


class CausalGraph:
    """A directed acyclic graph over named variables."""

    def __init__(
        self,
        nodes: Iterable[Hashable],
        edges: Iterable[tuple[Hashable, Hashable]],
    ) -> None:
        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        for source, target in edges:
            if source not in graph or target not in graph:
                raise ValidationError(
                    f"edge ({source!r}, {target!r}) references unknown node"
                )
            graph.add_edge(source, target)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValidationError("causal graph must be acyclic")
        self._graph = graph

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list:
        return list(self._graph.nodes)

    @property
    def edges(self) -> list[tuple]:
        return list(self._graph.edges)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._graph

    def parents(self, node: Hashable) -> list:
        self._require(node)
        return sorted(self._graph.predecessors(node), key=str)

    def children(self, node: Hashable) -> list:
        self._require(node)
        return sorted(self._graph.successors(node), key=str)

    def ancestors(self, node: Hashable) -> set:
        self._require(node)
        return set(nx.ancestors(self._graph, node))

    def descendants(self, node: Hashable) -> set:
        self._require(node)
        return set(nx.descendants(self._graph, node))

    def roots(self) -> list:
        """Nodes with no parents (exogenous-only variables)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def topological_order(self) -> list:
        """One deterministic topological ordering of all nodes."""
        return list(nx.lexicographical_topological_sort(self._graph, key=str))

    def all_topological_orders(self, *, limit: int | None = None) -> list[list]:
        """All topological orderings (optionally truncated at ``limit``).

        Asymmetric Shapley values average marginal contributions over
        exactly these orderings.
        """
        orders = []
        for order in nx.all_topological_sorts(self._graph):
            orders.append(list(order))
            if limit is not None and len(orders) >= limit:
                break
        return orders

    def is_causal_order(self, order: Sequence[Hashable]) -> bool:
        """Whether ``order`` places every node after all its ancestors."""
        position = {node: i for i, node in enumerate(order)}
        if set(position) != set(self._graph.nodes):
            return False
        return all(
            position[source] < position[target]
            for source, target in self._graph.edges
        )

    def subgraph_on(self, nodes: Iterable[Hashable]) -> "CausalGraph":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        for node in keep:
            self._require(node)
        edges = [(s, t) for s, t in self._graph.edges if s in keep and t in keep]
        return CausalGraph(keep, edges)

    def to_networkx(self) -> nx.DiGraph:
        """A defensive copy of the underlying networkx graph."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    def _require(self, node: Hashable) -> None:
        if node not in self._graph:
            raise ValidationError(f"unknown node {node!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CausalGraph({len(self._graph.nodes)} nodes, "
            f"{len(self._graph.edges)} edges)"
        )
