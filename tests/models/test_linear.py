import numpy as np
import pytest

from xaidb.exceptions import NotFittedError
from xaidb.models import LinearRegression


class TestLinearRegression:
    def test_recovers_true_coefficients(self, regression_data):
        X, y, true_coef = regression_data
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, true_coef, atol=0.05)

    def test_intercept_recovered(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        y = X @ np.asarray([1.0, -1.0]) + 3.0
        model = LinearRegression().fit(X, y)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-8)

    def test_no_intercept_mode(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = X @ np.asarray([2.0, 0.5])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert np.allclose(model.coef_, [2.0, 0.5], atol=1e-8)

    def test_ridge_shrinks_coefficients(self, regression_data):
        X, y, __ = regression_data
        plain = LinearRegression().fit(X, y)
        ridge = LinearRegression(l2=1000.0).fit(X, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(plain.coef_)

    def test_ridge_does_not_penalise_intercept(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 1))
        y = np.full(300, 10.0) + 0.01 * rng.normal(size=300)
        model = LinearRegression(l2=1e6).fit(X, y)
        assert model.intercept_ == pytest.approx(10.0, abs=0.01)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((1, 2)))

    def test_exact_on_interpolation(self):
        X = np.asarray([[0.0], [1.0], [2.0]])
        y = np.asarray([1.0, 3.0, 5.0])
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-10)

    def test_refit_from_statistics_matches_fit(self, regression_data):
        X, y, __ = regression_data
        direct = LinearRegression().fit(X, y)
        design = np.column_stack([X, np.ones(len(y))])
        other = LinearRegression().refit_from_statistics(
            design.T @ design, design.T @ y
        )
        assert np.allclose(direct.coef_, other.coef_)
        assert direct.intercept_ == pytest.approx(other.intercept_)

    def test_loss_gradients_vanish_at_optimum(self, regression_data):
        X, y, __ = regression_data
        model = LinearRegression().fit(X, y)
        total = model.loss_gradients(X, y).sum(axis=0)
        assert np.allclose(total, 0.0, atol=1e-6)

    def test_loss_hessian_psd(self, regression_data):
        X, y, __ = regression_data
        model = LinearRegression().fit(X, y)
        eigenvalues = np.linalg.eigvalsh(model.loss_hessian(X))
        assert np.all(eigenvalues >= -1e-10)

    def test_theta_layout(self, regression_data):
        X, y, __ = regression_data
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.theta_[:-1], model.coef_)
        assert model.theta_[-1] == pytest.approx(model.intercept_)
