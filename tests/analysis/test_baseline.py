"""SARIF-baseline diffing: count-consuming key matching, error
handling, and the write-then-gate CLI round trip."""

from __future__ import annotations

import json
from collections import Counter

import pytest

from xaidb.analysis.baseline import (
    BaselineError,
    apply_baseline,
    baseline_key,
    load_baseline,
    partition_findings,
)
from xaidb.analysis.cli import main
from xaidb.analysis.findings import Finding, LintResult
from xaidb.analysis.reporters import render_sarif


def _finding(line=3, message="mutable default", path="src/xaidb/m.py"):
    return Finding(
        path=path,
        line=line,
        col=0,
        rule_id="XDB007",
        symbol="mutable-default",
        message=message,
    )


def test_round_trip_through_sarif_ignores_line_numbers(tmp_path):
    baseline_file = tmp_path / "baseline.sarif"
    baseline_file.write_text(
        render_sarif(LintResult(findings=[_finding(line=3)]))
    )
    baseline = load_baseline(baseline_file)
    assert baseline == {baseline_key(_finding(line=3)): 1}
    # the finding moved 40 lines: still the same baselined finding
    new, known = partition_findings([_finding(line=43)], baseline)
    assert not new
    assert len(known) == 1


def test_identical_findings_match_by_count():
    duplicated = [_finding(line=3), _finding(line=9), _finding(line=12)]
    tolerated = Counter({baseline_key(_finding()): 2})
    new, known = partition_findings(duplicated, tolerated)
    # two baselined occurrences tolerate exactly two; the third is new
    assert len(known) == 2
    assert len(new) == 1


def test_apply_baseline_keeps_stats_and_suppressions():
    result = LintResult(
        findings=[_finding(), _finding(message="other")],
        files_scanned=7,
        suppressed=[_finding(message="hushed")],
    )
    filtered, matched = apply_baseline(
        result, Counter({baseline_key(_finding()): 1})
    )
    assert matched == 1
    assert [f.message for f in filtered.findings] == ["other"]
    assert filtered.files_scanned == 7
    assert filtered.suppressed is result.suppressed
    assert filtered.stats is result.stats


def test_missing_and_malformed_baselines_raise(tmp_path):
    with pytest.raises(BaselineError, match="cannot read"):
        load_baseline(tmp_path / "absent.sarif")
    bad_json = tmp_path / "bad.sarif"
    bad_json.write_text("{not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(bad_json)
    not_sarif = tmp_path / "plain.json"
    not_sarif.write_text(json.dumps({"findings": []}))
    with pytest.raises(BaselineError, match="not a SARIF results"):
        load_baseline(not_sarif)


DIRTY = "def f(a, bucket=[]):\n    return bucket + [a]\n"


def test_cli_write_then_gate_round_trip(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(DIRTY)

    assert main(["mod.py", "--no-cache"]) == 1  # the debt gates
    assert main(["mod.py", "--no-cache", "--write-baseline"]) == 0
    out = capsys.readouterr().out
    assert "baseline of 1 finding(s) written" in out

    # with the snapshot in place the same debt is tolerated...
    assert main(["mod.py", "--no-cache", "--baseline"]) == 0
    assert "1 finding(s) matched, 0 new" in capsys.readouterr().out

    # ...but a newly introduced violation still gates
    (tmp_path / "mod.py").write_text(
        DIRTY + "\ndef g(a, pool={}):\n    return pool\n"
    )
    assert main(["mod.py", "--no-cache", "--baseline"]) == 1
    assert "1 finding(s) matched, 1 new" in capsys.readouterr().out


def test_cli_rejects_a_missing_baseline_file(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text("VALUE = 1\n")
    with pytest.raises(SystemExit) as excinfo:
        main(["mod.py", "--no-cache", "--baseline", "absent.sarif"])
    assert excinfo.value.code == 2  # usage error, not a vacuous pass
