"""A1 (ablation) — TMC-Shapley truncation tolerance (DESIGN.md; Ghorbani
& Zou 2019, §3.1 "truncation is a natural approximation").

Reproduced shape: raising the truncation tolerance cuts the number of
utility evaluations (model retrainings) substantially while the resulting
values stay highly rank-correlated with the untruncated estimate — the
cost/accuracy dial the paper describes.
"""

import numpy as np
from scipy import stats

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.datavaluation import UtilityFunction, tmc_shapley_values
from xaidb.models import KNeighborsClassifier

TOLERANCES = [0.0, 0.02, 0.05, 0.10]


class _CountingUtility(UtilityFunction):
    """UtilityFunction that counts evaluations (a retraining each)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.n_calls = 0

    def __call__(self, X_train, y_train, subset=None):
        self.n_calls += 1
        return super().__call__(X_train, y_train, subset)


def compute_rows():
    workload = make_income(600, random_state=0)
    train, valid = workload.dataset.split(test_fraction=0.4, random_state=1)
    X, y = train.X[:60], train.y[:60]

    reference_utility = _CountingUtility(
        KNeighborsClassifier(n_neighbors=5), valid.X, valid.y
    )
    reference, __ = tmc_shapley_values(
        reference_utility, X, y,
        n_permutations=30, truncation_tolerance=0.0, random_state=0,
    )
    rows = []
    for tolerance in TOLERANCES:
        utility = _CountingUtility(
            KNeighborsClassifier(n_neighbors=5), valid.X, valid.y
        )
        values, __ = tmc_shapley_values(
            utility, X, y,
            n_permutations=30, truncation_tolerance=tolerance, random_state=0,
        )
        rho, __p = stats.spearmanr(reference, values)
        rows.append(
            (
                tolerance,
                utility.n_calls,
                float(rho),
                # xailint: disable=XDB006 (Shapley values truncated to exactly 0.0 by TMC)
                float(np.mean(values == 0.0)),
            )
        )
    return rows


def test_a01_tmc_truncation(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "A1 (ablation): TMC truncation tolerance vs cost and fidelity "
        "(paper: truncation saves retrainings at little rank cost)",
        [
            "tolerance",
            "utility evaluations",
            "spearman vs untruncated",
            "fraction truncated to 0",
        ],
        rows,
    )
    calls = [row[1] for row in rows]
    correlations = [row[2] for row in rows]
    # cost falls monotonically with tolerance
    assert all(b <= a for a, b in zip(calls, calls[1:]))
    # the strongest truncation must save a lot
    assert calls[-1] < 0.7 * calls[0]
    # moderate truncation keeps the ranking intact
    assert correlations[1] > 0.7
