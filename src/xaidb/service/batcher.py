"""Bounded request queue + micro-batcher.

The admission and coalescing half of the server: requests enter a
bounded :class:`asyncio.Queue` (overflow is *rejected*, never buffered —
an overloaded explanation server must fail fast, not build an invisible
latency bomb), and :meth:`MicroBatcher.next_batch` drains them in
batching windows: wait for one request, then keep collecting until
either ``max_batch_size`` requests arrived or ``max_wait_s`` elapsed.
Grouping the drained window by :attr:`~xaidb.service.types.
ExplainRequest.batch_key` is the caller's job (:func:`group_by_key`),
because one window may legitimately carry several distinct workloads.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from xaidb.exceptions import ValidationError
from xaidb.service.types import ExplainRequest, LoadShedError

__all__ = ["PendingRequest", "MicroBatcher", "group_by_key"]


@dataclass
class PendingRequest:
    """A queued request plus its completion plumbing."""

    request: ExplainRequest
    request_id: int
    future: "asyncio.Future[Any]"
    enqueued_at: float
    #: Absolute ``loop.time()`` deadline, or ``None``.
    deadline_at: float | None = None
    #: Size of the dispatched batch this request rode in (set by the
    #: dispatch path; 0 until then).
    batch_size: int = field(default=0)

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at


class MicroBatcher:
    """Bounded queue + batching-window drain.

    Parameters
    ----------
    max_queue_depth:
        Admission bound; :meth:`put_nowait` raises
        :class:`~xaidb.service.types.LoadShedError` beyond it.
    max_batch_size:
        Upper bound on requests per drained window (and therefore per
        dispatched batch).
    max_wait_s:
        How long the drain waits for stragglers after the first request
        of a window arrives.  0 coalesces only requests that are
        already queued — lowest latency, least batching.
    """

    def __init__(
        self,
        *,
        max_queue_depth: int = 256,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
    ) -> None:
        if max_queue_depth < 1:
            raise ValidationError("max_queue_depth must be >= 1")
        if max_batch_size < 1:
            raise ValidationError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValidationError("max_wait_s must be >= 0")
        self.max_queue_depth = max_queue_depth
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._queue: asyncio.Queue[PendingRequest] = asyncio.Queue(
            maxsize=max_queue_depth
        )

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued (admitted, not yet drained)."""
        return self._queue.qsize()

    def put_nowait(self, entry: PendingRequest) -> None:
        """Admit a request or shed it — never blocks, never buffers
        beyond the bound."""
        try:
            self._queue.put_nowait(entry)
        except asyncio.QueueFull:
            raise LoadShedError(
                f"request queue is full ({self.max_queue_depth} pending); "
                f"request shed"
            ) from None

    async def next_batch(self) -> list[PendingRequest]:
        """Drain one batching window (at least one request).

        Waits indefinitely for the first request, then keeps collecting
        until the window closes (``max_wait_s`` after the first
        request) or ``max_batch_size`` is reached.
        """
        first = await self._queue.get()
        batch = [first]
        if self.max_wait_s <= 0:
            while (
                len(batch) < self.max_batch_size and not self._queue.empty()
            ):
                batch.append(self._queue.get_nowait())
            return batch
        loop = asyncio.get_running_loop()
        closes_at = loop.time() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = closes_at - loop.time()
            if remaining <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    def drain_nowait(self) -> list[PendingRequest]:
        """Remove and return everything currently queued (shutdown
        path: the server fails these with a typed error)."""
        drained: list[PendingRequest] = []
        while not self._queue.empty():
            drained.append(self._queue.get_nowait())
        return drained


def group_by_key(
    batch: list[PendingRequest],
) -> dict[tuple[str, str, str], list[PendingRequest]]:
    """Split one drained window into per-``batch_key`` dispatch groups,
    preserving arrival order within each group."""
    groups: dict[tuple[str, str, str], list[PendingRequest]] = {}
    for entry in batch:
        groups.setdefault(entry.request.batch_key, []).append(entry)
    return groups
