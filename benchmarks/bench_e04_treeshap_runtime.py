"""E4 — TreeSHAP is polynomial-time; exact enumeration is exponential
(Lundberg, Erion & Lee 2018/2020 runtime-scaling figure).

Reproduced shape: per-instance runtime of the EXTEND/UNWIND recursion
grows slowly with feature count while brute-force enumeration over the
same conditional-expectation game explodes exponentially — with
identical outputs wherever both are feasible.  The interventional
variant (DESIGN.md ablation) is timed alongside.
"""

import time
from itertools import combinations

import numpy as np

from benchmarks._tables import print_table
from xaidb.explainers.shapley import TreeShapExplainer, tree_expected_value
from xaidb.models import DecisionTreeRegressor
from xaidb.utils.combinatorics import shapley_subset_weight

FEATURE_COUNTS = [4, 6, 8, 10, 12]
BRUTE_FORCE_LIMIT = 10


def _brute_force(tree, leaf_values, x, d):
    phi = np.zeros(d)
    for i in range(d):
        others = [p for p in range(d) if p != i]
        for size in range(d):
            weight = shapley_subset_weight(size, d)
            for subset in combinations(others, size):
                phi[i] += weight * (
                    tree_expected_value(tree, leaf_values, x, subset + (i,))
                    - tree_expected_value(tree, leaf_values, x, subset)
                )
    return phi


def compute_rows():
    rng = np.random.default_rng(0)
    rows = []
    for d in FEATURE_COUNTS:
        X = rng.normal(size=(400, d))
        y = X @ rng.normal(size=d) + 0.2 * rng.normal(size=400)
        model = DecisionTreeRegressor(max_depth=6, random_state=0).fit(X, y)
        explainer = TreeShapExplainer(model)
        x = X[0]

        start = time.perf_counter()
        fast = explainer.explain(x).values
        fast_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        explainer.explain_interventional(x, X[:20])
        interventional_ms = (time.perf_counter() - start) * 1e3

        if d <= BRUTE_FORCE_LIMIT:
            leaf_values = model.tree_.value[:, 0]
            start = time.perf_counter()
            slow = _brute_force(model.tree_, leaf_values, x, d)
            brute_ms = (time.perf_counter() - start) * 1e3
            max_diff = float(np.abs(fast - slow).max())
        else:
            brute_ms, max_diff = float("nan"), float("nan")
        rows.append((d, fast_ms, interventional_ms, brute_ms, max_diff))
    return rows


def test_e04_treeshap_runtime(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E4: TreeSHAP runtime scaling (paper: polynomial vs exponential exact)",
        [
            "features",
            "TreeSHAP ms",
            "interventional ms (20 bg)",
            "brute force ms",
            "max |diff|",
        ],
        rows,
    )
    # shape 1: wherever brute force ran, TreeSHAP matches it exactly
    for row in rows:
        if not np.isnan(row[4]):
            assert row[4] < 1e-8
    # shape 2: brute force blows up across the measured range while
    # TreeSHAP stays flat: compare growth factors from d=4 to d=10
    by_d = {row[0]: row for row in rows}
    brute_growth = by_d[10][3] / by_d[4][3]
    fast_growth = max(by_d[10][1], 1e-6) / max(by_d[4][1], 1e-6)
    assert brute_growth > 10 * fast_growth
