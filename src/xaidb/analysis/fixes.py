"""Mechanical autofixes for findings that have one (``xailint --fix``).

The only fixable rule so far is XDB012, in its three shapes.  *Stale*
suppression comments (the violation they vouched for is gone) and
*dangling* ones (no code line follows) are deleted — a standalone
comment loses its whole line, a trailing comment is stripped off the
code it rides.  *Reason-less* suppressions are rewritten into the
canonical reason-bearing form by appending a ``(reason: TODO)``
placeholder: the tool cannot invent the real justification, but it can
put the hole where the repo convention says the answer goes — and the
rewritten comment parses as reason-bearing, so XDB012 stops reporting
it and the rewrite is idempotent.  A comment that is both stale and
reason-less is removed, not rewritten.

A multi-id comment (``disable=XDB006,XDB010``) is only removed when
*every* id it names is reported stale — deleting it while one id still
silences a live finding would resurrect that finding.

Fixes are planned from the findings of a completed scan, so
``apply_fixes`` is idempotent by construction: after one application
the re-scan reports no fixable finding and the second plan is empty.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from xaidb.analysis.findings import Finding

__all__ = ["FIXABLE_RULES", "FileFix", "FixReport", "plan_fixes", "apply_fixes"]

#: Rules ``--fix`` knows a mechanical remedy for.
FIXABLE_RULES = ("XDB012",)

_STALE_MARKER = "never matched a finding"
_DANGLING_MARKER = "not followed by any code line"
_REASONLESS_MARKER = "has no parenthesised reason"
_STALE_ID_RE = re.compile(r"suppression of (XDB\d{3}) never matched")
_COMMENT_RE = re.compile(
    r"\s*#\s*xailint:\s*disable=([A-Z0-9,\s]+?)(\([^)]*\))?\s*$"
)

#: The placeholder a reason-less suppression is rewritten with — valid
#: under the repo convention, obviously unfinished to a reviewer.
REASON_PLACEHOLDER = "(reason: TODO)"


@dataclass
class FileFix:
    """All planned line edits for one file."""

    path: str
    #: 1-based comment lines to remove entirely.
    drop_lines: set[int] = field(default_factory=set)
    #: 1-based lines whose trailing suppression comment is stripped.
    strip_lines: set[int] = field(default_factory=set)
    #: 1-based lines whose reason-less comment gains the placeholder.
    rewrite_lines: set[int] = field(default_factory=set)

    def apply(self, text: str) -> str:
        lines = text.splitlines(keepends=True)
        out: list[str] = []
        for number, line in enumerate(lines, start=1):
            if number in self.drop_lines:
                continue
            if number in self.strip_lines:
                stripped = _COMMENT_RE.sub("", line.rstrip("\n"))
                out.append(stripped.rstrip() + "\n")
                continue
            if number in self.rewrite_lines:
                out.append(_with_reason(line))
                continue
            out.append(line)
        return "".join(out)


@dataclass
class FixReport:
    """What ``apply_fixes`` did (or, dry-run, would do)."""

    fixes: list[FileFix]
    diff: str
    n_findings: int
    #: Comments deleted (stale/dangling) vs rewritten (reason-less).
    n_removed: int = 0
    n_rewritten: int = 0

    @property
    def n_files(self) -> int:
        return len(self.fixes)


def _with_reason(line: str) -> str:
    """Append the reason placeholder to the suppression comment on
    ``line`` (no-op when a reason is already present)."""
    text = line.rstrip("\n")
    match = _COMMENT_RE.search(text)
    if match is None or match.group(2) is not None:
        return line
    return text.rstrip() + f" {REASON_PLACEHOLDER}\n"


def _comment_ids(line: str) -> frozenset[str] | None:
    """Rule ids named by the suppression comment on ``line``."""
    match = _COMMENT_RE.search(line.rstrip("\n"))
    if match is None:
        return None
    return frozenset(
        part.strip() for part in match.group(1).split(",") if part.strip()
    )


def plan_fixes(
    findings: Iterable[Finding], root: Path
) -> list[FileFix]:
    """Plan the line edits the fixable findings call for.

    Stale ids are accumulated per comment line and the comment is only
    touched once every id it names is stale (or the comment is
    dangling, which condemns the line no matter what it names).
    """
    stale: dict[tuple[str, int], set[str]] = {}
    dangling: set[tuple[str, int]] = set()
    reasonless: set[tuple[str, int]] = set()
    for finding in findings:
        if finding.rule_id != "XDB012":
            continue
        key = (finding.path, finding.line)
        if _DANGLING_MARKER in finding.message:
            dangling.add(key)
        elif _STALE_MARKER in finding.message:
            match = _STALE_ID_RE.search(finding.message)
            if match is not None:
                stale.setdefault(key, set()).add(match.group(1))
        elif _REASONLESS_MARKER in finding.message:
            reasonless.add(key)

    fixes: dict[str, FileFix] = {}
    for path, line in sorted(dangling | set(stale)):
        try:
            lines = (root / path).read_text(
                encoding="utf-8"
            ).splitlines()
        except OSError:
            continue
        if not 1 <= line <= len(lines):
            continue
        text = lines[line - 1]
        ids = _comment_ids(text)
        if ids is None:
            continue
        key = (path, line)
        if key not in dangling and not ids <= stale.get(key, set()):
            # some id still vouches for a live finding: keep the comment
            continue
        fix = fixes.setdefault(path, FileFix(path=path))
        if _COMMENT_RE.sub("", text).strip():
            fix.strip_lines.add(line)
        else:
            fix.drop_lines.add(line)
    for path, line in sorted(reasonless):
        fix = fixes.get(path)
        if fix is not None and line in (fix.drop_lines | fix.strip_lines):
            continue  # removal supersedes the rewrite
        try:
            lines = (root / path).read_text(
                encoding="utf-8"
            ).splitlines()
        except OSError:
            continue
        if not 1 <= line <= len(lines):
            continue
        match = _COMMENT_RE.search(lines[line - 1])
        if match is None or match.group(2) is not None:
            continue  # already reason-bearing (or not a suppression)
        fixes.setdefault(path, FileFix(path=path)).rewrite_lines.add(
            line
        )
    return [fixes[path] for path in sorted(fixes)]


def apply_fixes(
    findings: Sequence[Finding], root: Path, *, dry_run: bool = False
) -> FixReport:
    """Apply (or, with ``dry_run``, render) the planned fixes.

    Returns the unified diff of every touched file; with ``dry_run``
    no file is written.
    """
    fixes = plan_fixes(findings, root)
    diffs: list[str] = []
    n_removed = 0
    n_rewritten = 0
    for fix in fixes:
        target = root / fix.path
        original = target.read_text(encoding="utf-8")
        fixed = fix.apply(original)
        if fixed == original:
            continue
        n_removed += len(fix.drop_lines | fix.strip_lines)
        n_rewritten += len(fix.rewrite_lines)
        diffs.append(
            "".join(
                difflib.unified_diff(
                    original.splitlines(keepends=True),
                    fixed.splitlines(keepends=True),
                    fromfile=f"a/{fix.path}",
                    tofile=f"b/{fix.path}",
                )
            )
        )
        if not dry_run:
            target.write_text(fixed, encoding="utf-8")
    return FixReport(
        fixes=fixes,
        diff="".join(diffs),
        n_findings=n_removed + n_rewritten,
        n_removed=n_removed,
        n_rewritten=n_rewritten,
    )
