"""The utility function shared by all data-valuation methods.

Data Shapley treats "train the learning algorithm on a data subset,
measure a performance metric on a validation set" as the payoff of a
cooperative game over training points.  :class:`UtilityFunction`
encapsulates that triple (algorithm, metric, validation data) with the
edge-case policy the papers gloss over: subsets too small or too
one-sided to train on score the *null utility* (majority-class accuracy or
the metric of the constant mean prediction).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from xaidb.exceptions import XaidbError
from xaidb.models.base import Classifier, Model, clone
from xaidb.models.metrics import accuracy
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["MetricFn", "UtilityFunction"]

MetricFn = Callable[[np.ndarray, np.ndarray], float]


class UtilityFunction:
    """``v(S) = metric(y_val, model_fitted_on_S.predict(X_val))``.

    Parameters
    ----------
    model:
        Template estimator; a fresh clone is fitted per subset.
    X_valid, y_valid:
        Held-out evaluation data.
    metric:
        ``metric(y_true, y_pred) -> float`` (higher = better); defaults to
        accuracy.
    min_points:
        Subsets smaller than this score the null utility.
    """

    def __init__(
        self,
        model: Model,
        X_valid: np.ndarray,
        y_valid: np.ndarray,
        *,
        metric: MetricFn = accuracy,
        min_points: int = 2,
    ) -> None:
        self.model = model
        self.X_valid = check_array(X_valid, name="X_valid", ndim=2)
        self.y_valid = check_array(y_valid, name="y_valid", ndim=1)
        check_matching_lengths(("X_valid", self.X_valid), ("y_valid", self.y_valid))
        self.metric = metric
        self.min_points = min_points
        self._null: float | None = None

    # ------------------------------------------------------------------
    def null_utility(self) -> float:
        """Utility of the trivial predictor (majority class / mean)."""
        if self._null is None:
            if isinstance(self.model, Classifier):
                values, counts = np.unique(self.y_valid, return_counts=True)
                majority = values[np.argmax(counts)]
                predictions = np.full_like(self.y_valid, majority)
            else:
                # np.full_like would inherit y_valid's dtype and truncate
                # the mean to an integer for integer-typed targets,
                # anchoring every TMC/LOO/distributional value wrongly.
                predictions = np.full(
                    self.y_valid.shape, self.y_valid.mean(), dtype=float
                )
            self._null = float(self.metric(self.y_valid, predictions))
        return self._null

    def _trainable(self, y_subset: np.ndarray) -> bool:
        if len(y_subset) < self.min_points:
            return False
        if isinstance(self.model, Classifier) and len(np.unique(y_subset)) < 2:
            return False
        return True

    def __call__(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        subset: Sequence[int] | np.ndarray | None = None,
    ) -> float:
        """Utility of training on ``X_train[subset]`` (full set if None)."""
        if subset is not None:
            subset = np.asarray(subset, dtype=int)
            X_subset, y_subset = X_train[subset], y_train[subset]
        else:
            X_subset, y_subset = X_train, y_train
        if not self._trainable(y_subset):
            return self.null_utility()
        estimator = clone(self.model)
        try:
            estimator.fit(X_subset, y_subset)
        except XaidbError:
            return self.null_utility()
        return float(self.metric(self.y_valid, estimator.predict(self.X_valid)))
