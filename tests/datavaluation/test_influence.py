import numpy as np
import pytest

from xaidb.datavaluation import InfluenceFunctions, LeafRefitInfluence
from xaidb.exceptions import ValidationError
from xaidb.models import (
    GradientBoostedClassifier,
    GradientBoostedRegressor,
    LinearRegression,
    LogisticRegression,
)


@pytest.fixture(scope="module")
def logistic_setup(income):
    model = LogisticRegression(l2=1e-2).fit(income.dataset.X, income.dataset.y)
    return model, income.dataset.X, income.dataset.y


class TestSinglePointInfluence:
    def test_correlates_with_retraining(self, logistic_setup):
        """Koh & Liang Fig. 2: predicted vs actual parameter change."""
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        predicted = np.asarray(
            [influence.parameter_influence(i) for i in range(20)]
        )
        actual = np.asarray(
            [influence.actual_parameter_change([i]) for i in range(20)]
        )
        corr = np.corrcoef(predicted.ravel(), actual.ravel())[0, 1]
        assert corr > 0.99

    def test_linear_regression_supported(self, regression_data):
        X, y, __ = regression_data
        model = LinearRegression(l2=1e-3).fit(X, y)
        influence = InfluenceFunctions(model, X, y)
        predicted = influence.parameter_influence(0)
        actual = influence.actual_parameter_change([0])
        assert np.allclose(predicted, actual, atol=5e-3)

    def test_prediction_influence_sign(self, logistic_setup):
        """Removing a positive-label point must (weakly) lower predictions
        near it for a smooth model — check against retraining."""
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        for i in (0, 5):
            predicted_delta = influence.prediction_influence(i, X[i : i + 1])[0]
            keep = np.setdiff1d(np.arange(len(y)), [i])
            retrained = LogisticRegression(l2=1e-2).fit(X[keep], y[keep])
            actual_delta = float(
                retrained.predict_proba(X[i : i + 1])[0, 1]
                - model.predict_proba(X[i : i + 1])[0, 1]
            )
            assert np.sign(predicted_delta) == np.sign(actual_delta) or (
                abs(actual_delta) < 1e-4
            )

    def test_cg_solver_matches_exact(self, logistic_setup):
        model, X, y = logistic_setup
        exact = InfluenceFunctions(model, X, y, solver="exact")
        cg = InfluenceFunctions(model, X, y, solver="cg")
        assert np.allclose(
            exact.parameter_influence(3), cg.parameter_influence(3), atol=1e-5
        )

    def test_self_influence_nonnegative(self, logistic_setup):
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        assert np.all(influence.self_influence() >= -1e-10)

    def test_loss_influence_finite(self, logistic_setup):
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        assert np.isfinite(influence.loss_influence(0, X[:10], y[:10]))

    def test_rejects_unsupported_model(self, income, income_gbm):
        with pytest.raises(ValidationError):
            InfluenceFunctions(income_gbm, income.dataset.X, income.dataset.y)

    def test_index_out_of_range(self, logistic_setup):
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        with pytest.raises(ValidationError):
            influence.parameter_influence(len(y))


class TestGroupInfluence:
    def test_second_order_beats_first_on_coherent_group(self, income):
        """Basu et al.: for a large correlated group, the curvature-aware
        estimate is closer to the retraining truth than the additive
        first-order sum."""
        X, y = income.dataset.X, income.dataset.y
        model = LogisticRegression(l2=1e-2).fit(X, y)
        influence = InfluenceFunctions(model, X, y)
        # a coherent group: all high-education positives
        education = X[:, 1]
        group = np.flatnonzero((education > 0.8) & (y == 1.0))[:60]
        first = influence.group_parameter_influence(group, order="first")
        second = influence.group_parameter_influence(group, order="second")
        actual = influence.actual_parameter_change(group)
        error_first = np.linalg.norm(first - actual)
        error_second = np.linalg.norm(second - actual)
        assert error_second <= error_first

    def test_group_of_one_matches_single(self, logistic_setup):
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        single = influence.parameter_influence(4)
        group = influence.group_parameter_influence([4], order="first")
        assert np.allclose(single, group)

    def test_rejects_empty_and_full_groups(self, logistic_setup):
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        with pytest.raises(ValidationError):
            influence.group_parameter_influence([])
        with pytest.raises(ValidationError):
            influence.group_parameter_influence(range(len(y)))

    def test_invalid_order(self, logistic_setup):
        model, X, y = logistic_setup
        influence = InfluenceFunctions(model, X, y)
        with pytest.raises(ValidationError):
            influence.group_parameter_influence([0, 1], order="third")


class TestLeafRefitInfluence:
    @pytest.fixture(scope="class")
    def gbr_setup(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(150, 3))
        y = X[:, 0] + 0.5 * X[:, 1] ** 2 + 0.1 * rng.normal(size=150)
        model = GradientBoostedRegressor(
            n_estimators=10, max_depth=2, random_state=0
        ).fit(X, y)
        return model, X, y

    def test_single_tree_leafrefit_is_exact(self):
        """For a 1-stage squared-loss GBM the leaf value is the mean
        residual; LeafRefit's delta must equal recomputing the mean with
        the point left out — exactly."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 2))
        y = X[:, 0] + 0.1 * rng.normal(size=80)
        model = GradientBoostedRegressor(
            n_estimators=1, learning_rate=1.0, max_depth=2, random_state=0
        ).fit(X, y)
        influence = LeafRefitInfluence(model, X, y)
        tree = model.trees_[0].tree_
        point = 3
        leaf = int(tree.apply_row(X[point]))
        leaves_all = tree.apply(X)
        in_leaf = np.flatnonzero(leaves_all == leaf)
        residuals = y - model.init_score_
        with_point = residuals[in_leaf].mean()
        without = residuals[np.setdiff1d(in_leaf, [point])].mean()
        expected_delta = without - with_point
        predicted = influence.prediction_influence(point, X[point : point + 1])
        assert predicted[0] == pytest.approx(expected_delta, abs=1e-10)

    def test_removing_positive_residual_point_lowers_its_leaves(self, gbr_setup):
        """Directional property of the Newton leaf estimate: dropping a
        point whose residual exceeds its leaf's value must lower that
        leaf."""
        model, X, y = gbr_setup
        influence = LeafRefitInfluence(model, X, y)
        extreme = int(np.argmax(y - y.mean()))  # largest positive target
        changes = influence.leaf_value_changes(extreme)
        for tree, leaf_changes, stats in zip(
            model.trees_, changes, influence._tree_stats
        ):
            for leaf, delta in leaf_changes.items():
                residual, __ = stats["contributions"][extreme]
                if residual > tree.tree_.value[leaf, 0]:
                    assert delta <= 1e-9

    def test_zero_influence_outside_touched_leaves(self, gbr_setup):
        model, X, y = gbr_setup
        influence = LeafRefitInfluence(model, X, y)
        changes = influence.leaf_value_changes(0)
        test_point = X[50:51]
        deltas = influence.prediction_influence(0, test_point)
        touched_any = any(
            tree.tree_.apply(test_point)[0] in change
            for tree, change in zip(model.trees_, changes)
            if change
        )
        if not touched_any:
            assert deltas[0] == 0.0

    def test_classifier_variant_runs(self, income):
        model = GradientBoostedClassifier(
            n_estimators=8, max_depth=2, random_state=0
        ).fit(income.dataset.X[:100], income.dataset.y[:100])
        influence = LeafRefitInfluence(
            model, income.dataset.X[:100], income.dataset.y[:100]
        )
        deltas = influence.prediction_influence(0, income.dataset.X[:5])
        assert deltas.shape == (5,)
        assert np.all(np.isfinite(deltas))

    def test_ranking_covers_all_points(self, gbr_setup):
        model, X, y = gbr_setup
        influence = LeafRefitInfluence(model, X, y)
        ranking = influence.influence_ranking(X[:10])
        assert sorted(ranking.tolist()) == list(range(len(y)))

    def test_rejects_non_gbm(self, logistic_setup):
        model, X, y = logistic_setup
        with pytest.raises(ValidationError):
            LeafRefitInfluence(model, X, y)

    def test_index_out_of_range(self, gbr_setup):
        model, X, y = gbr_setup
        influence = LeafRefitInfluence(model, X, y)
        with pytest.raises(ValidationError):
            influence.leaf_value_changes(len(y))
