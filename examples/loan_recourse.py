"""Algorithmic recourse for a denied credit applicant (tutorial §2.1.4).

A logistic scorer denies an applicant.  We generate:

1. diverse DiCE counterfactuals (what minimal changes flip the decision?),
2. a GeCo counterfactual constrained to plausible, feasible actions,
3. the provably minimal-cost recourse action for the linear scorer,
4. LEWIS-style causally grounded recourse on the generating SCM, plus
   population-level necessity/sufficiency scores for the key feature.

Run:  python examples/loan_recourse.py
"""

import numpy as np

from xaidb.data import make_credit, make_loans
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.counterfactual import (
    DiceExplainer,
    GecoExplainer,
    LewisExplainer,
    LinearRecourse,
)
from xaidb.models import LogisticRegression


def main() -> None:
    workload = make_credit(1200, random_state=0)
    dataset = workload.dataset
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)

    scores = f(dataset.X)
    denied_index = int(
        np.flatnonzero((scores > 0.1) & (scores < 0.35))[0]
    )
    applicant = dataset.X[denied_index]
    print("applicant:", {
        spec.name: (spec.decode(value) if spec.is_categorical else round(value, 2))
        for spec, value in zip(dataset.features, applicant)
    })
    print(f"P(good credit) = {scores[denied_index]:.3f} -> DENIED")
    print("constraints: age immutable; savings & employment_years can only "
          "increase; housing must stay a real category\n")

    # --- DiCE: diverse options -------------------------------------------
    dice = DiceExplainer(f, dataset, n_iterations=300)
    alternatives = dice.generate(
        applicant, n_counterfactuals=3, random_state=0
    )
    print(f"[DiCE] {len(alternatives)} diverse counterfactuals "
          f"(validity {alternatives.validity():.0%}, "
          f"diversity {alternatives.diversity():.1f}):")
    for counterfactual in alternatives:
        print("  ", counterfactual)

    # --- GeCo: sparse + plausible ------------------------------------------
    geco = GecoExplainer(f, dataset, n_generations=25)
    plausible = geco.generate(applicant, n_counterfactuals=1, random_state=0)
    print(f"\n[GeCo] sparsest plausible counterfactual "
          f"({plausible[0].sparsity} feature(s) changed):")
    print("  ", plausible[0])

    # --- exact minimal-cost recourse on the linear scorer --------------------
    recourse = LinearRecourse(model, dataset)
    action = recourse.find(applicant)
    print(f"\n[LinearRecourse] minimal-cost action (cost {action.cost:.2f}, "
          f"new margin {action.new_margin:+.3f}):")
    for name, (before, after) in action.changes.items():
        print(f"  {name}: {before:.2f} -> {after:.2f}")

    # --- LEWIS: causally grounded scores and recourse -------------------------
    loans = make_loans(1200, random_state=1)
    loan_model = LogisticRegression(l2=1e-2).fit(loans.dataset.X, loans.dataset.y)
    lewis = LewisExplainer(
        predict_positive_proba(loan_model),
        loans.scm,
        [spec.name for spec in loans.dataset.features],
        n_units=1000,
    )
    s = lewis.scores("credit_score", 1.5, -1.5, random_state=0)
    print("\n[LEWIS] population probabilities of causation for credit_score "
          "(high vs low):")
    print(f"  necessity  P(N)  = {s.necessity:.2f}   "
          "(was a high score necessary for approvals?)")
    print(f"  sufficiency P(S) = {s.sufficiency:.2f}   "
          "(would a high score fix denials?)")
    print(f"  PNS              = {s.pns:.2f}")

    observation = {
        "income": -0.5,
        "credit_score": -1.0,
        "debt_to_income": 0.5,
        "employment_years": -0.5,
        "approved": 0.0,
    }
    candidates = [
        {"credit_score": 1.5},
        {"income": 1.5},
        {"employment_years": 1.5},
        {"income": 1.0, "employment_years": 1.0},
    ]
    ranked = lewis.recourse(observation, candidates)
    print("\n[LEWIS] counterfactual recourse for a denied individual "
          "(interventions ranked by flip probability):")
    for intervention, probability in ranked:
        print(f"  {intervention}  ->  flips with p = {probability:.0%}")


if __name__ == "__main__":
    main()
