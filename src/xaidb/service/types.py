"""Request/response contracts of the explanation serving layer.

An :class:`ExplainRequest` names *what* to explain — a registered model
(by digest), one instance, an explainer, its configuration — and *how
urgently* (an optional per-request deadline).  Concurrent requests that
agree on :attr:`~ExplainRequest.batch_key` (model digest, explainer
name, canonical config digest) are safe to coalesce into one batched
explainer call, because the only thing that differs between them is the
instance row and its seed.

Failures are typed: load shedding raises :class:`LoadShedError`, an
expired deadline :class:`DeadlineExceededError` — both subclasses of
:class:`ServiceError`, itself a :class:`~xaidb.exceptions.XaidbError`,
so callers can branch on *why* a request was rejected instead of
parsing message strings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from xaidb.exceptions import XaidbError
from xaidb.utils.validation import check_array

__all__ = [
    "ServiceError",
    "LoadShedError",
    "DeadlineExceededError",
    "UnknownModelError",
    "UnknownExplainerError",
    "config_digest",
    "ExplainRequest",
    "ExplainResponse",
]


class ServiceError(XaidbError, RuntimeError):
    """Base class for every failure the explanation server reports."""


class LoadShedError(ServiceError):
    """The bounded request queue is full; the request was rejected
    *before* queueing — retry later or against another replica."""


class DeadlineExceededError(ServiceError):
    """The request's deadline elapsed before its explanation completed;
    any late result is discarded."""


class UnknownModelError(ServiceError):
    """The request named a model digest the dispatcher has no entry for
    (or the entry lacks what the explainer needs, e.g. a dataset)."""


class UnknownExplainerError(ServiceError):
    """The request named an explainer the dispatcher has no factory for."""


def config_digest(config: dict[str, Any]) -> str:
    """Canonical short digest of an explainer configuration.

    Key order never matters (``sort_keys``) and non-JSON scalars fall
    back to ``repr``, so two requests carrying equal configs always
    land in the same micro-batch.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class ExplainRequest:
    """One explanation request entering the server.

    Attributes
    ----------
    model:
        Digest of a model registered with the dispatcher.
    explainer:
        Explainer name registered with the dispatcher (built-ins:
        ``"lime"``, ``"kernel_shap"``, ``"anchors"``).
    instance:
        The row to explain, shape ``(d,)``.
    config:
        Explainer constructor overrides (``n_samples``, ``n_coalitions``
        ...); requests only coalesce when their canonical digests match.
    random_state:
        Per-request seed.  The batched result is bitwise identical to
        the serial ``explain(instance, random_state=seed)`` path.
    deadline_s:
        Latency budget in seconds from submission; ``None`` waits
        indefinitely.  Expired requests are dropped before dispatch
        when possible and their responses discarded otherwise.
    """

    model: str
    explainer: str
    instance: np.ndarray
    config: dict[str, Any] = field(default_factory=dict)
    random_state: int | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        self.instance = check_array(self.instance, name="instance", ndim=1)

    @property
    def batch_key(self) -> tuple[str, str, str]:
        """The coalescing key: requests sharing it are batched together."""
        return (self.model, self.explainer, config_digest(self.config))


@dataclass
class ExplainResponse:
    """A completed explanation leaving the server.

    ``result`` is whatever the explainer family returns (a
    :class:`~xaidb.explainers.base.FeatureAttribution`, an
    :class:`~xaidb.rules.anchors.Anchor` ...); ``latency_s`` measures
    submission→completion including queueing, and ``batch_size`` reports
    how many requests shared the dispatched batch (1 = no coalescing).
    """

    request_id: int
    result: Any
    latency_s: float
    batch_size: int
    model: str
    explainer: str
