"""Bottom-up function summaries: view/mutation transitivity, rng
escape depths, abstract return shapes, and the ⊤ fallbacks."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from xaidb.analysis.registry import FileContext
from xaidb.analysis.summaries import (
    RNG_MAX_DEPTH,
    InterprocAnalysis,
)


def _ctx(module: str, source: str) -> FileContext:
    relpath = "src/" + module.replace(".", "/") + ".py"
    return FileContext(
        path=Path(relpath),
        relpath=relpath,
        source=source,
        tree=ast.parse(source),
        in_xaidb_package=True,
        module_name=module,
    )


def _analysis(modules: dict[str, str]) -> InterprocAnalysis:
    return InterprocAnalysis(
        [_ctx(name, source) for name, source in modules.items()]
    )


def test_slice_return_is_a_view_of_the_parameter():
    analysis = _analysis(
        {"xaidb.v": "def head(x):\n    return x[:2]\n"}
    )
    assert analysis.summaries["xaidb.v.head"].returns_view_of == ("x",)


def test_mutation_is_transitive_through_a_callee():
    analysis = _analysis(
        {
            "xaidb.m": (
                "def inner(a):\n"
                "    a[:] = 0\n"
                "\n"
                "def outer(b):\n"
                "    inner(b)\n"
            )
        }
    )
    assert analysis.summaries["xaidb.m.inner"].mutates == ("a",)
    # bottom-up: outer inherits the in-place write through the call
    assert analysis.summaries["xaidb.m.outer"].mutates == ("b",)


def test_rng_escape_depth_increments_per_boundary_then_drops_off():
    analysis = _analysis(
        {
            "xaidb.r": (
                "import numpy as np\n"
                "\n"
                "def make():\n"
                "    return np.random.default_rng(0)\n"
                "\n"
                "def wrap1():\n"
                "    return make()\n"
                "\n"
                "def wrap2():\n"
                "    return wrap1()\n"
                "\n"
                "def wrap3():\n"
                "    return wrap2()\n"
            )
        }
    )
    depths = {
        name: analysis.summaries[f"xaidb.r.{name}"].rng_return_depth
        for name in ("make", "wrap1", "wrap2", "wrap3")
    }
    assert depths["make"] == 0
    assert depths["wrap1"] == 1
    assert depths["wrap2"] == 2
    # past the tracking horizon the summary stops claiming anything
    assert depths["wrap3"] is None
    assert RNG_MAX_DEPTH == 3


def test_caller_derived_seed_is_not_an_escape():
    analysis = _analysis(
        {
            "xaidb.s": (
                "import numpy as np\n"
                "\n"
                "def make(seed):\n"
                "    return np.random.default_rng(seed)\n"
            )
        }
    )
    assert analysis.summaries["xaidb.s.make"].rng_return_depth is None


def test_return_shapes_flow_through_a_callee():
    analysis = _analysis(
        {
            "xaidb.sh": (
                "import numpy as np\n"
                "\n"
                "def basis():\n"
                "    return np.zeros((3, 4))\n"
                "\n"
                "def project():\n"
                "    return basis() @ np.ones((4, 2))\n"
            )
        }
    )
    assert analysis.summaries["xaidb.sh.basis"].return_shapes == (
        "float64[3,4]",
    )
    # matmul of the callee's summary shape with a literal operand
    assert analysis.summaries["xaidb.sh.project"].return_shapes == (
        "float64[3,2]",
    )


def test_dynamic_scope_yields_the_bottom_summary():
    analysis = _analysis(
        {
            "xaidb.d": (
                "def peek(x):\n"
                "    locals()\n"
                "    return x[:2]\n"
            )
        }
    )
    summary = analysis.summaries["xaidb.d.peek"]
    # locals() can read anything: claim nothing rather than guess
    assert summary.returns_view_of == ()
    assert summary.mutates == ()
    assert summary.return_shapes == ()


def test_solutions_are_memoised_and_kinds_are_validated():
    analysis = _analysis(
        {"xaidb.v": "def head(x):\n    return x[:2]\n"}
    )
    first = analysis.solution("alias", "xaidb.v.head")
    assert analysis.solution("alias", "xaidb.v.head") is first
    with pytest.raises(ValueError, match="unknown solution kind"):
        analysis.solution("taste", "xaidb.v.head")
