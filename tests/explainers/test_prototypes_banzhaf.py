import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import (
    MMDCritic,
    prototype_classifier_accuracy,
)
from xaidb.explainers.prototypes import rbf_kernel_matrix
from xaidb.explainers.shapley import (
    banzhaf_of_tuples_boolean,
    banzhaf_values,
    banzhaf_values_sampled,
    exact_shapley_values,
)
from xaidb.explainers.shapley.games import FunctionGame


class TestRbfKernel:
    def test_diagonal_is_one(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        kernel = rbf_kernel_matrix(X)
        assert np.allclose(np.diag(kernel), 1.0)

    def test_symmetric_and_bounded(self):
        X = np.random.default_rng(1).normal(size=(10, 2))
        kernel = rbf_kernel_matrix(X)
        assert np.allclose(kernel, kernel.T)
        assert np.all((kernel >= 0) & (kernel <= 1))

    def test_gamma_controls_decay(self):
        X = np.asarray([[0.0], [1.0]])
        tight = rbf_kernel_matrix(X, gamma=10.0)[0, 1]
        loose = rbf_kernel_matrix(X, gamma=0.1)[0, 1]
        assert tight < loose


class TestMMDCritic:
    @pytest.fixture(scope="class")
    def clustered_data(self):
        rng = np.random.default_rng(0)
        cluster_a = rng.normal(0.0, 0.3, size=(60, 2))
        cluster_b = rng.normal(5.0, 0.3, size=(60, 2))
        outlier = np.asarray([[2.5, 10.0]])
        X = np.vstack([cluster_a, cluster_b, outlier])
        labels = np.concatenate([np.zeros(60), np.ones(60), [0.0]])
        return X, labels

    def test_prototypes_cover_both_clusters(self, clustered_data):
        X, __ = clustered_data
        explanation = MMDCritic(n_prototypes=4, n_criticisms=1).fit(X)
        chosen = X[explanation.prototype_indices]
        near_a = np.any(np.linalg.norm(chosen - [0, 0], axis=1) < 1.5)
        near_b = np.any(np.linalg.norm(chosen - [5, 5], axis=1) < 1.5)
        assert near_a and near_b

    def test_mmd_improves_over_single_prototype(self, clustered_data):
        """Forced additions need not decrease MMD^2 step by step, but the
        final set must represent the data far better than one point."""
        X, __ = clustered_data
        explanation = MMDCritic(n_prototypes=6, n_criticisms=0).fit(X)
        trace = explanation.mmd_trace
        assert trace[-1] < 0.5 * trace[0]

    def test_greedy_step_is_locally_optimal(self, clustered_data):
        """The second prototype must be the candidate that minimises
        MMD^2 given the first — recomputed here by brute force."""
        from xaidb.explainers.prototypes import rbf_kernel_matrix

        X, __ = clustered_data
        explanation = MMDCritic(n_prototypes=2, n_criticisms=0).fit(X)
        first, second = explanation.prototype_indices
        kernel = rbf_kernel_matrix(X)
        column_means = kernel.mean(axis=1)
        grand = kernel.mean()

        def mmd2(trial):
            m = len(trial)
            return (
                grand
                - 2.0 * column_means[trial].sum() / m
                + kernel[np.ix_(trial, trial)].sum() / (m * m)
            )

        best = min(
            (mmd2([first, c]) for c in range(len(X)) if c != first)
        )
        assert mmd2([first, second]) == pytest.approx(best, abs=1e-12)

    def test_outlier_selected_as_criticism(self, clustered_data):
        X, __ = clustered_data
        explanation = MMDCritic(n_prototypes=6, n_criticisms=2).fit(X)
        outlier_index = len(X) - 1
        assert outlier_index in explanation.criticism_indices

    def test_criticisms_disjoint_from_prototypes(self, clustered_data):
        X, __ = clustered_data
        explanation = MMDCritic(n_prototypes=5, n_criticisms=3).fit(X)
        assert not (
            set(explanation.prototype_indices)
            & set(explanation.criticism_indices)
        )

    def test_prototype_classifier_competitive(self, clustered_data):
        """MMD-critic's quantitative check: 1-NN over a handful of
        prototypes matches 1-NN over all data on separable clusters."""
        X, labels = clustered_data
        explanation = MMDCritic(n_prototypes=6, n_criticisms=0).fit(X)
        acc = prototype_classifier_accuracy(
            X, labels, explanation.prototype_indices, X[:120], labels[:120]
        )
        assert acc > 0.95

    def test_per_class_covers_every_class(self, clustered_data):
        X, labels = clustered_data
        explanation = MMDCritic(n_prototypes=6, n_criticisms=0).fit_per_class(
            X, labels
        )
        prototype_labels = labels[explanation.prototype_indices]
        assert set(np.unique(prototype_labels)) == set(np.unique(labels))

    def test_per_class_beats_label_agnostic_on_1nn(self, clustered_data):
        X, labels = clustered_data
        agnostic = MMDCritic(n_prototypes=2, n_criticisms=0).fit(X)
        per_class = MMDCritic(n_prototypes=2, n_criticisms=0).fit_per_class(
            X, labels
        )
        acc_agnostic = prototype_classifier_accuracy(
            X, labels, agnostic.prototype_indices, X, labels
        )
        acc_per_class = prototype_classifier_accuracy(
            X, labels, per_class.prototype_indices, X, labels
        )
        assert acc_per_class >= acc_agnostic

    def test_budget_validation(self, clustered_data):
        X, __ = clustered_data
        with pytest.raises(ValidationError):
            MMDCritic(n_prototypes=200, n_criticisms=0).fit(X[:10])
        with pytest.raises(ValidationError):
            MMDCritic(n_prototypes=0)

    def test_empty_prototype_accuracy_rejected(self, clustered_data):
        X, labels = clustered_data
        with pytest.raises(ValidationError):
            prototype_classifier_accuracy(X, labels, [], X, labels)


def glove_game():
    return FunctionGame(
        3, lambda s: 1.0 if 0 in s and (1 in s or 2 in s) else 0.0
    )


class TestBanzhaf:
    def test_glove_game_known_values(self):
        """Banzhaf of the glove game: player 0 swings in {1},{2},{1,2} ->
        3/4; players 1,2 swing only in {0} -> 1/4."""
        beta = banzhaf_values(glove_game())
        assert np.allclose(beta, [0.75, 0.25, 0.25])

    def test_additive_game_matches_shapley(self):
        """For additive games both indices equal the weights."""
        weights = np.asarray([2.0, -1.0, 0.5])
        game = FunctionGame(3, lambda s: sum(weights[i] for i in s))
        assert np.allclose(banzhaf_values(game), weights)
        assert np.allclose(exact_shapley_values(game), weights)

    def test_banzhaf_violates_efficiency_where_shapley_does_not(self):
        game = glove_game()
        beta = banzhaf_values(game)
        phi = exact_shapley_values(game)
        assert phi.sum() == pytest.approx(1.0)
        assert beta.sum() != pytest.approx(1.0)  # 1.25 for this game

    def test_dummy_player_zero(self):
        game = FunctionGame(3, lambda s: 1.0 if 0 in s else 0.0)
        beta = banzhaf_values(game)
        assert beta[1] == pytest.approx(0.0)
        assert beta[2] == pytest.approx(0.0)

    def test_sampled_converges(self):
        beta_exact = banzhaf_values(glove_game())
        beta_mc, errors = banzhaf_values_sampled(
            glove_game(), 3000, random_state=0
        )
        assert np.allclose(beta_mc, beta_exact, atol=0.05)
        assert np.all(errors >= 0)

    def test_refuses_large_games(self):
        game = FunctionGame(25, lambda s: float(len(s)))
        with pytest.raises(ValidationError):
            banzhaf_values(game)

    def test_banzhaf_of_tuples(self):
        from xaidb.db import Provenance

        provenance = Provenance([{"d", "e1"}, {"d", "e2"}])
        beta = banzhaf_of_tuples_boolean(provenance, ["d", "e1", "e2"])
        # d swings whenever e1 or e2 present: 3 of 4 coalitions
        assert beta["d"] == pytest.approx(0.75)
        assert beta["e1"] == pytest.approx(0.25)

    def test_tuple_ranking_agrees_with_shapley(self):
        from xaidb.db import Provenance, shapley_of_tuples_boolean

        provenance = Provenance([{"a", "b"}, {"a", "c"}, {"a"}])
        tuples = ["a", "b", "c"]
        beta = banzhaf_of_tuples_boolean(provenance, tuples)
        phi = shapley_of_tuples_boolean(provenance, tuples)
        rank_beta = sorted(tuples, key=lambda t: -beta[t])
        rank_phi = sorted(tuples, key=lambda t: -phi[t])
        assert rank_beta == rank_phi
