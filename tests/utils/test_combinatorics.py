from math import comb, isinf

import pytest

from xaidb.utils.combinatorics import (
    all_subsets,
    harmonic_number,
    shapley_kernel_weight,
    shapley_subset_weight,
)


class TestAllSubsets:
    def test_counts_powerset(self):
        assert len(list(all_subsets([1, 2, 3]))) == 8

    def test_proper_excludes_full(self):
        subsets = list(all_subsets([1, 2], proper=True))
        assert (1, 2) not in subsets
        assert len(subsets) == 3

    def test_includes_empty(self):
        assert () in list(all_subsets([1]))


class TestShapleySubsetWeight:
    def test_weights_sum_to_one_over_sizes(self):
        # sum over all coalitions S (not containing i) of w(|S|) == 1
        for n in range(1, 8):
            total = sum(
                comb(n - 1, s) * shapley_subset_weight(s, n) for s in range(n)
            )
            assert total == pytest.approx(1.0)

    def test_single_player(self):
        assert shapley_subset_weight(0, 1) == pytest.approx(1.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            shapley_subset_weight(3, 3)
        with pytest.raises(ValueError):
            shapley_subset_weight(-1, 3)


class TestShapleyKernelWeight:
    def test_infinite_at_extremes(self):
        assert isinf(shapley_kernel_weight(0, 5))
        assert isinf(shapley_kernel_weight(5, 5))

    def test_symmetry_in_size(self):
        for n in range(2, 9):
            for s in range(1, n):
                assert shapley_kernel_weight(s, n) == pytest.approx(
                    shapley_kernel_weight(n - s, n)
                )

    def test_known_value(self):
        # n=4, |S|=1: (4-1)/(C(4,1)*1*3) = 3/12
        assert shapley_kernel_weight(1, 4) == pytest.approx(0.25)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            shapley_kernel_weight(6, 5)


class TestHarmonicNumber:
    def test_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1.0 + 0.5 + 1.0 / 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)
