"""XDB007 — mutable default argument values.

A default evaluated once at ``def`` time and mutated across calls is
shared hidden state: two explainer instances constructed with the
default silently see each other's accumulations — another route to the
cross-run contamination the stability experiments (E2) measure.  Use
``None`` plus an in-body default, or ``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        # A zero-argument constructor of a known mutable builtin.  Calls
        # with arguments (e.g. ``dict(a=1)``) are equally mutable, so
        # flag them too.
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(FileRule):
    rule_id = "XDB007"
    symbol = "mutable-default-argument"
    description = (
        "Function parameter defaults to a mutable object ([], {}, "
        "set(), ...); defaults are shared across calls — use None."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            for arg, default in zip(
                positional[len(positional) - len(args.defaults):],
                args.defaults,
            ):
                if _is_mutable_default(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"parameter {arg.arg!r} defaults to a mutable "
                        f"object shared across calls; default to None "
                        f"and construct inside the body",
                    )
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if kw_default is not None and _is_mutable_default(kw_default):
                    yield ctx.finding(
                        self,
                        kw_default,
                        f"parameter {arg.arg!r} defaults to a mutable "
                        f"object shared across calls; default to None "
                        f"and construct inside the body",
                    )
