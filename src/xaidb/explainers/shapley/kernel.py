"""KernelSHAP (Lundberg & Lee 2017).

Shapley values are the solution of a specific weighted linear regression:
fit an additive surrogate ``g(z) = phi_0 + sum_i phi_i z_i`` over coalition
indicator vectors ``z``, weighting each coalition by the Shapley kernel
``(d-1) / (C(d,|z|) |z| (d-|z|))``.  The empty and grand coalitions carry
infinite weight, so we enforce them as *exact* constraints:
``phi_0 = v(empty)`` and ``sum_i phi_i = v(full) - v(empty)`` (the latter
by variable elimination).  This is the ablation DESIGN.md calls out —
penalised variants trade exact efficiency for numerical convenience; we
keep the axiom exact.

With few features every coalition is enumerated and the result equals the
exact Shapley value (up to the background approximation); with many
features coalitions are sampled in complementary pairs, size-stratified by
the kernel distribution.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.explainers.shapley.coalitions import (
    _sampled_design,
    kernel_shap_design,
)
from xaidb.explainers.shapley.games import MarginalImputationGame
from xaidb.runtime import EvalStats, GameRuntime, RuntimeConfig
from xaidb.utils.linalg import solve_psd, solve_psd_stacked
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array

__all__ = ["KernelShapExplainer"]


class KernelShapExplainer(Explainer):
    """Model-agnostic SHAP via the Shapley-kernel weighted regression.

    Parameters
    ----------
    predict_fn:
        Scalar model output to explain.
    background:
        Reference rows for the marginal-imputation value function.
    n_coalitions:
        Sampling budget when exhaustive enumeration (``2^d - 2``
        coalitions) would exceed it.
    l2:
        Tiny ridge stabiliser for the (possibly rank-deficient) sampled
        regression; does not affect the enforced constraints.
    config:
        Shared-runtime knobs (memo cache, ``max_batch_rows`` chunking);
        defaults to :class:`~xaidb.runtime.RuntimeConfig`'s defaults.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        *,
        n_coalitions: int = 2048,
        l2: float = 1e-10,
        feature_names: list[str] | None = None,
        config: RuntimeConfig | None = None,
    ) -> None:
        if n_coalitions < 4:
            raise ValidationError("n_coalitions must be at least 4")
        self.predict_fn = predict_fn
        self.background = check_array(background, name="background", ndim=2)
        self.n_coalitions = n_coalitions
        self.l2 = l2
        self.feature_names = feature_names
        self.config = config or RuntimeConfig()
        #: Shared ledger of the most recent :meth:`explain_batch` call.
        self.batch_stats_: EvalStats | None = None

    # ------------------------------------------------------------------
    def make_runtime(
        self,
        instance: np.ndarray,
        *,
        stats: EvalStats | None = None,
    ) -> GameRuntime:
        """A runtime for repeated explanations of one instance.

        Pass the result to :meth:`explain` via ``runtime=`` to share the
        coalition cache across calls (interactive workloads re-request
        the same explanation with different budgets/visualisations);
        its :attr:`~xaidb.runtime.GameRuntime.stats` accumulate across
        those calls while each attribution's metadata reports per-call
        deltas.  ``stats`` threads in an external ledger (e.g. one
        shared across a batch) instead of a fresh one.
        """
        instance = check_array(instance, name="instance", ndim=1)
        return GameRuntime(
            MarginalImputationGame(
                self.predict_fn, instance, self.background
            ),
            config=self.config,
            stats=stats,
        )

    def explain(
        self,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
        runtime: GameRuntime | None = None,
    ) -> FeatureAttribution:
        instance = check_array(instance, name="instance", ndim=1)
        d = instance.shape[0]
        if d < 2:
            raise ValidationError("KernelSHAP needs at least 2 features")
        if runtime is None:
            runtime = self.make_runtime(instance)
        elif runtime.n_players != d:
            raise ValidationError(
                f"runtime is for {runtime.n_players} players, instance "
                f"has {d} features"
            )
        before = runtime.stats.copy()
        with runtime.stats.timer():
            base_value = runtime.value(())
            full_value = runtime.value(range(d))
            masks, weights = self._coalition_design(d, random_state)
            values = runtime.values_batch(masks)
            phi = self._solve(masks, values, weights, base_value, full_value)
        run_stats = runtime.stats.since(before)
        names = self.feature_names or [f"x{i}" for i in range(d)]
        return FeatureAttribution(
            feature_names=list(names),
            values=phi,
            base_value=base_value,
            prediction=full_value,
            metadata={
                "method": "kernel_shap",
                "n_coalitions": int(masks.shape[0]),
                "exhaustive": (2**d - 2) <= self.n_coalitions,
                **run_stats.as_metadata(),
            },
        )

    # ------------------------------------------------------------------
    def explain_batch(
        self,
        instances: np.ndarray,
        *,
        random_state: RandomState = None,
        seeds: list[int | None] | None = None,
    ) -> list[FeatureAttribution]:
        """Explain many instances in one *stacked* pass — the serving
        dispatcher's batch entry point.

        Instead of running one full KernelSHAP pipeline per row (the
        retained :meth:`explain_batch_serial` path), the batch shares
        everything that is shareable while staying **bitwise identical**
        to ``explain(instance, random_state=seed)`` per instance:

        - coalition designs come from the shared read-only arena — one
          design for the whole batch in the exhaustive regime, one per
          distinct seed otherwise;
        - the base value ``v(∅)`` (instance-independent: the mean
          background prediction) is evaluated once, not per row;
        - per-instance runtime scaffolding is dropped: no coalition
          cache to hash every mask into, no per-call ledger snapshots —
          the designs are duplicate-free, so the cache can never hit
          within one explanation anyway;
        - the per-instance WLS solves stack onto one shared
          design/Gram/Cholesky factorization per distinct mask set,
          substituting column by column
          (:func:`~xaidb.utils.linalg.solve_psd_stacked`) so each
          column replays the single-instance ``solve_psd`` exactly.

        Model evaluations deliberately keep the *serial call shapes*:
        each instance's hybrid matrices go through its own
        :class:`~xaidb.explainers.shapley.games.MarginalImputationGame`
        with the same ``max_batch_rows`` chunking the runtime would
        use, so every ``predict_fn`` call receives a bitwise-equal
        input array of the same shape as in the serial path.  That is
        what makes the identity unconditional: coalescing rows *across*
        instances would change call shapes, and BLAS-backed predictors
        (``X @ w``) are not bitwise row-stable across shapes.

        All model evaluations land in the shared :attr:`batch_stats_`
        ledger.  Per-instance metadata carries the design shape
        (``method``/``n_coalitions``/``exhaustive``) plus
        ``"stacked": True``; the per-call eval-ledger deltas of the
        serial path are not separable once the base evaluation is
        shared.
        """
        instances = check_array(instances, name="instances", ndim=2)
        n, d = instances.shape
        if d < 2:
            raise ValidationError("KernelSHAP needs at least 2 features")
        if seeds is None:
            seeds = spawn_seeds(random_state, n)
        elif len(seeds) != n:
            raise ValidationError(
                f"got {len(seeds)} seeds for {n} instances"
            )
        stats = EvalStats()
        self.batch_stats_ = stats
        predict = stats.wrap_predict_fn(self.predict_fn)
        background = self.background
        with stats.timer():
            designs = [
                self._coalition_design(d, seeds[i]) for i in range(n)
            ]
            games = [
                MarginalImputationGame(predict, instances[i], background)
                for i in range(n)
            ]
            # v(∅) is the mean background prediction — one evaluation
            # serves every instance (each serial call scores a
            # bitwise-equal background copy, so the value is identical).
            base_value = games[0].value(())
            full_values = np.asarray(
                [game.value(range(d)) for game in games]
            )
            coalition_values = [
                games[i].values_batch(
                    designs[i][0],
                    max_batch_rows=self.config.max_batch_rows,
                )
                for i in range(n)
            ]
            # base (once) + full (per instance) + every design mask
            stats.n_coalition_evals += 1 + n + sum(
                masks.shape[0] for masks, _ in designs
            )
            phis = self._solve_stacked(
                designs, coalition_values, base_value, full_values
            )
        names = self.feature_names or [f"x{i}" for i in range(d)]
        exhaustive = (2**d - 2) <= self.n_coalitions
        return [
            FeatureAttribution(
                feature_names=list(names),
                values=phis[i],
                base_value=base_value,
                prediction=float(full_values[i]),
                metadata={
                    "method": "kernel_shap",
                    "n_coalitions": int(designs[i][0].shape[0]),
                    "exhaustive": exhaustive,
                    "stacked": True,
                },
            )
            for i in range(n)
        ]

    def explain_batch_serial(
        self,
        instances: np.ndarray,
        *,
        random_state: RandomState = None,
        seeds: list[int | None] | None = None,
    ) -> list[FeatureAttribution]:
        """The retained per-instance batch path: one fresh game, runtime
        and WLS solve per row, seeded per instance — the exactness
        oracle the stacked :meth:`explain_batch` is tested against (and
        the "before" measurement of benchmark A15).  All runtimes write
        into one shared :attr:`batch_stats_` ledger; per-call deltas in
        each attribution's metadata stay exact because
        :meth:`EvalStats.since` snapshots are taken inside
        :meth:`explain`.
        """
        instances = check_array(instances, name="instances", ndim=2)
        n = instances.shape[0]
        if seeds is None:
            seeds = spawn_seeds(random_state, n)
        elif len(seeds) != n:
            raise ValidationError(
                f"got {len(seeds)} seeds for {n} instances"
            )
        self.batch_stats_ = EvalStats()
        return [
            self.explain(
                instances[i],
                random_state=seeds[i],
                runtime=self.make_runtime(
                    instances[i], stats=self.batch_stats_
                ),
            )
            for i in range(n)
        ]

    # ------------------------------------------------------------------
    def _solve_stacked(
        self,
        designs: list[tuple[np.ndarray, np.ndarray]],
        coalition_values: list[np.ndarray],
        base_value: float,
        full_values: np.ndarray,
    ) -> np.ndarray:
        """One constrained WLS per instance, sharing the design matrix,
        Gram matrix and Cholesky factorization across every instance
        with the same mask set (the arena returns identical objects for
        identical designs), substituting per column so each solution is
        bitwise the single-instance :meth:`_solve`."""
        n = len(designs)
        d = designs[0][0].shape[1]
        groups: dict[int, tuple[np.ndarray, np.ndarray, list[int]]] = {}
        for i, (masks, weights) in enumerate(designs):
            groups.setdefault(id(masks), (masks, weights, []))[2].append(i)
        phis = np.empty((n, d))
        for masks, weights, members in groups.values():
            Z = masks.astype(float)
            design = Z[:, :-1] - Z[:, -1][:, None]
            weighted = design * weights[:, None]
            gram = weighted.T @ design + self.l2 * np.eye(d - 1)
            rhs = np.empty((d - 1, len(members)))
            deltas = np.empty(len(members))
            for column, i in enumerate(members):
                delta = full_values[i] - base_value
                target = coalition_values[i] - base_value - Z[:, -1] * delta
                # per-column matvec: the multi-RHS gemm is not bitwise
                # column-equivalent to the serial dgemv
                rhs[:, column] = weighted.T @ target
                deltas[column] = delta
            heads = solve_psd_stacked(gram, rhs)
            for column, i in enumerate(members):
                head = heads[:, column].copy()
                phis[i, :-1] = head
                phis[i, -1] = deltas[column] - head.sum()
        return phis

    # ------------------------------------------------------------------
    def _coalition_design(
        self, d: int, random_state: RandomState
    ) -> tuple[np.ndarray, np.ndarray]:
        """Coalition masks and regression weights, from the shared
        read-only design arena (:mod:`~xaidb.explainers.shapley.
        coalitions`): exhaustive designs and integer-seeded samples are
        built once per ``(d, budget, seed)`` and reused across calls,
        instances and dispatch batches."""
        return kernel_shap_design(d, self.n_coalitions, random_state)

    def _sample_coalitions(
        self, d: int, random_state: RandomState
    ) -> tuple[np.ndarray, np.ndarray]:
        """Force the size-stratified paired sampler (see
        :func:`~xaidb.explainers.shapley.coalitions.kernel_shap_design`
        for the sampling scheme and duplicate aggregation), bypassing
        both the exhaustive branch and the arena cache."""
        return _sampled_design(
            d, self.n_coalitions, check_random_state(random_state)
        )

    def _solve(
        self,
        masks: np.ndarray,
        values: np.ndarray,
        weights: np.ndarray,
        base_value: float,
        full_value: float,
    ) -> np.ndarray:
        """Constrained weighted least squares with the efficiency constraint
        eliminated onto the last feature."""
        d = masks.shape[1]
        Z = masks.astype(float)
        delta = full_value - base_value
        target = values - base_value - Z[:, -1] * delta
        design = Z[:, :-1] - Z[:, -1][:, None]
        weighted = design * weights[:, None]
        gram = weighted.T @ design + self.l2 * np.eye(d - 1)
        phi_head = solve_psd(gram, weighted.T @ target)
        phi = np.empty(d)
        phi[:-1] = phi_head
        phi[-1] = delta - phi_head.sum()
        return phi
