"""Random-number-generator plumbing.

Everything stochastic in xaidb accepts a ``random_state`` argument that is
normalised here to a :class:`numpy.random.Generator`, so experiments are
reproducible end to end from a single integer seed.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError

__all__ = ["RandomState", "check_random_state", "spawn_seeds"]

RandomState = int | np.random.Generator | None


def check_random_state(random_state: RandomState) -> np.random.Generator:
    """Normalise ``random_state`` to a :class:`numpy.random.Generator`.

    - ``None`` produces a fresh, OS-seeded generator;
    - an ``int`` seeds a new PCG64 generator deterministically;
    - an existing :class:`~numpy.random.Generator` is passed through.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise ValidationError(
        f"random_state must be None, an int or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_seeds(random_state: RandomState, n: int) -> list[int]:
    """Derive ``n`` independent child seeds from ``random_state``.

    Useful to hand deterministic, non-overlapping seeds to parallel or
    repeated sub-computations (e.g. Monte-Carlo chains).
    """
    rng = check_random_state(random_state)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]
