"""E6 — Causal Shapley values decompose direct and indirect effects;
marginal Shapley misses indirect influence (Heskes et al. 2020;
Frye et al. 2019).

Workload: the income SCM, where ``gender`` affects income *only* through
``occupation``.  Reproduced shape:

- marginal (interventional-on-features) SHAP gives gender ~the model's
  direct coefficient only;
- causal Shapley credits gender through the indirect path (non-zero
  indirect component);
- asymmetric Shapley shifts credit toward causally antecedent variables.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.shapley import (
    AsymmetricShapleyExplainer,
    CausalShapleyExplainer,
    ExactShapleyExplainer,
)
from xaidb.models import LogisticRegression

FEATURES = ["age", "education", "hours", "occupation", "gender"]


def compute_rows():
    workload = make_income(2000, random_state=0)
    dataset = workload.dataset
    columns = [dataset.feature_index(name) for name in FEATURES]

    model = LogisticRegression(l2=1e-2).fit(dataset.X[:, columns], dataset.y)
    f = predict_positive_proba(model)

    x = dataset.X[6, columns]
    marginal = ExactShapleyExplainer(
        f, dataset.X[:40][:, columns], feature_names=FEATURES
    ).explain(x)
    causal = CausalShapleyExplainer(
        f, workload.scm, FEATURES, n_samples=800, feature_names=FEATURES
    ).explain(x, random_state=0)
    asymmetric = AsymmetricShapleyExplainer(
        f, workload.scm, FEATURES, n_samples=800, feature_names=FEATURES
    ).explain(x, random_state=0)

    direct = dict(zip(FEATURES, causal.metadata["direct"]))
    indirect = dict(zip(FEATURES, causal.metadata["indirect"]))
    rows = [
        (
            name,
            marginal.as_dict()[name],
            causal.as_dict()[name],
            direct[name],
            indirect[name],
            asymmetric.as_dict()[name],
        )
        for name in FEATURES
    ]
    return rows, x


def test_e06_causal_shapley(benchmark):
    rows, x = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E6: marginal vs causal vs asymmetric Shapley on the income SCM "
        "(paper: causal splits direct+indirect; gender is indirect-only)",
        ["feature", "marginal", "causal", "direct", "indirect", "asymmetric"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    gender = by_name["gender"]
    # gender's causal credit includes a non-trivial indirect component
    # through occupation (it has NO causal indirect path in the marginal
    # game, which treats features as independent inputs)
    assert abs(gender[4]) > 0.0  # indirect component exists
    # age is upstream of education and hours: asymmetric Shapley gives it
    # at least as much absolute credit as the marginal game does
    age = by_name["age"]
    assert abs(age[5]) >= abs(age[1]) - 0.05
