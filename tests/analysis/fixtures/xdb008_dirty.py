"""XDB008 dirty fixture: concrete explainers off the interface.

Linted with a module name under ``xaidb.explainers`` so the project
rule is in scope; the locally-defined ``Explainer`` ABC stands in for
``xaidb.explainers.base.Explainer``.
"""

from abc import ABC, abstractmethod

__all__ = ["RogueExplainer", "LazyExplainer"]


class Explainer(ABC):
    @abstractmethod
    def explain(self, *args, **kwargs):
        """Produce an explanation."""


class RogueExplainer:  # does not subclass the interface
    def explain(self, x):
        return x


class LazyExplainer(Explainer):  # subclasses but never implements explain
    def setup(self):
        return None
