import pytest

from xaidb.db import (
    Provenance,
    Relation,
    aggregate,
    difference,
    groupby,
    join,
    project,
    select,
    union,
)
from xaidb.exceptions import SchemaError, ValidationError


@pytest.fixture()
def emp():
    return Relation.from_dicts(
        "emp",
        [
            {"name": "ann", "dept": "eng", "salary": 100},
            {"name": "bob", "dept": "eng", "salary": 80},
            {"name": "cat", "dept": "ops", "salary": 90},
        ],
    )


@pytest.fixture()
def dept():
    return Relation.from_dicts(
        "dept", [{"dept": "eng", "city": "sf"}, {"dept": "ops", "city": "ny"}]
    )


class TestSelectProject:
    def test_select_filters(self, emp):
        rich = select(emp, lambda r: r["salary"] > 85)
        assert sorted(rich.column_values("name")) == ["ann", "cat"]

    def test_select_keeps_provenance(self, emp):
        rich = select(emp, lambda r: r["name"] == "ann")
        assert rich.rows[0].provenance == Provenance.atom("emp:0")

    def test_project_deduplicates_and_adds_provenance(self, emp):
        depts = project(emp, ["dept"])
        assert len(depts) == 2
        eng = [r for r in depts if r["dept"] == "eng"][0]
        assert eng.provenance == Provenance.atom("emp:0") + Provenance.atom("emp:1")

    def test_project_unknown_column(self, emp):
        with pytest.raises(SchemaError):
            project(emp, ["nope"])


class TestJoin:
    def test_join_values(self, emp, dept):
        joined = join(emp, dept, on=["dept"])
        assert len(joined) == 3
        ann = [r for r in joined if r["name"] == "ann"][0]
        assert ann["city"] == "sf"

    def test_join_multiplies_provenance(self, emp, dept):
        joined = join(emp, dept, on=["dept"])
        ann = [r for r in joined if r["name"] == "ann"][0]
        assert ann.provenance == Provenance.atom("emp:0") * Provenance.atom("dept:0")

    def test_join_missing_column(self, emp, dept):
        with pytest.raises(SchemaError):
            join(emp, dept, on=["city"])

    def test_join_overlapping_nonjoin_columns_rejected(self, emp):
        other = Relation.from_dicts(
            "other", [{"dept": "eng", "salary": 1}]
        )
        with pytest.raises(SchemaError, match="both sides"):
            join(emp, other, on=["dept"])

    def test_dangling_tuples_dropped(self, emp):
        tiny = Relation.from_dicts("tiny", [{"dept": "eng", "boss": "zed"}])
        joined = join(emp, tiny, on=["dept"])
        assert sorted(joined.column_values("name")) == ["ann", "bob"]


class TestUnionDifference:
    def test_union_merges_duplicates(self):
        a = Relation.from_dicts("a", [{"x": 1}, {"x": 2}])
        b = Relation.from_dicts("b", [{"x": 2}, {"x": 3}])
        u = union(a, b)
        assert sorted(u.column_values("x")) == [1, 2, 3]
        two = [r for r in u if r["x"] == 2][0]
        assert two.provenance == Provenance.atom("a:1") + Provenance.atom("b:0")

    def test_union_schema_mismatch(self, emp, dept):
        with pytest.raises(SchemaError):
            union(emp, dept)

    def test_difference(self):
        a = Relation.from_dicts("a", [{"x": 1}, {"x": 2}])
        b = Relation.from_dicts("b", [{"x": 2}])
        d = difference(a, b)
        assert d.column_values("x") == [1]


class TestGroupbyAggregate:
    def test_groupby_aggregates(self, emp):
        g = groupby(emp, ["dept"], {"total": ("sum", "salary"), "n": ("count", "")})
        eng = [r for r in g if r["dept"] == "eng"][0]
        assert eng["total"] == 180.0
        assert eng["n"] == 2.0

    def test_groupby_lineage_covers_group(self, emp):
        g = groupby(emp, ["dept"], {"total": ("sum", "salary")})
        eng = [r for r in g if r["dept"] == "eng"][0]
        assert eng.provenance.lineage() == frozenset({"emp:0", "emp:1"})

    def test_groupby_avg_min_max(self, emp):
        g = groupby(
            emp,
            ["dept"],
            {"a": ("avg", "salary"), "lo": ("min", "salary"), "hi": ("max", "salary")},
        )
        eng = [r for r in g if r["dept"] == "eng"][0]
        assert eng["a"] == 90.0
        assert eng["lo"] == 80.0
        assert eng["hi"] == 100.0

    def test_groupby_unknown_aggregate(self, emp):
        with pytest.raises(ValidationError):
            groupby(emp, ["dept"], {"m": ("median", "salary")})

    def test_scalar_aggregate(self, emp):
        assert aggregate(emp, "count") == 3.0
        assert aggregate(emp, "sum", "salary") == 270.0
        assert aggregate(emp, "avg", "salary") == 90.0

    def test_scalar_aggregate_needs_column(self, emp):
        with pytest.raises(ValidationError):
            aggregate(emp, "sum")

    def test_aggregate_of_empty_relation(self, emp):
        empty = select(emp, lambda r: False)
        assert aggregate(empty, "sum", "salary") == 0.0

    def test_query_composition_with_provenance(self, emp, dept):
        """select -> join -> groupby keeps per-answer lineage exact."""
        rich = select(emp, lambda r: r["salary"] >= 90)
        located = join(rich, dept, on=["dept"])
        g = groupby(located, ["city"], {"n": ("count", "")})
        sf = [r for r in g if r["city"] == "sf"][0]
        assert sf.provenance.lineage() == frozenset({"emp:0", "dept:0"})
