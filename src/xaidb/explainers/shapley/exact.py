"""Exact Shapley values by coalition enumeration.

Exponential in the number of players (the tutorial's §2.1.2 intractability
point — experiment E4 measures exactly this blow-up), but indispensable as
the ground truth that KernelSHAP, permutation sampling and TreeSHAP are
validated against.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.explainers.shapley.games import CachedGame, Game, MarginalImputationGame
from xaidb.runtime import GameRuntime, RuntimeConfig
from xaidb.utils.combinatorics import shapley_subset_weight
from xaidb.utils.validation import check_array

__all__ = ["exact_shapley_values", "ExactShapleyExplainer"]

_MAX_EXACT_PLAYERS = 20


def exact_shapley_values(game: Game) -> np.ndarray:
    """Shapley value of every player by full subset enumeration.

    Complexity ``O(2^n)`` value evaluations (cached), ``n * 2^(n-1)``
    marginal contributions.  Refuses games with more than
    ``20`` players — at that point use sampling or KernelSHAP.
    """
    n = game.n_players
    if n > _MAX_EXACT_PLAYERS:
        raise ValidationError(
            f"exact enumeration over {n} players is intractable "
            f"(limit {_MAX_EXACT_PLAYERS}); use a sampling estimator"
        )
    cached = game if game.provides_cache else CachedGame(game)
    players = list(range(n))
    phi = np.zeros(n)
    for player in players:
        others = [p for p in players if p != player]
        for size in range(n):
            weight = shapley_subset_weight(size, n)
            for subset in combinations(others, size):
                gain = cached.value(subset + (player,)) - cached.value(subset)
                phi[player] += weight * gain
    return phi


class ExactShapleyExplainer(Explainer):
    """Exact SHAP values under the marginal-imputation value function.

    Parameters
    ----------
    predict_fn:
        Scalar model output to explain.
    background:
        Reference rows for imputing absent features.  Keep this small
        (tens of rows): cost is ``O(2^d * |background|)`` model calls.
    feature_names:
        Optional column names for the resulting attribution.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        *,
        feature_names: list[str] | None = None,
        config: RuntimeConfig | None = None,
    ) -> None:
        self.predict_fn = predict_fn
        self.background = check_array(background, name="background", ndim=2)
        self.feature_names = feature_names
        self.config = config or RuntimeConfig()

    def explain(self, instance: np.ndarray) -> FeatureAttribution:
        instance = check_array(instance, name="instance", ndim=1)
        runtime = GameRuntime(
            MarginalImputationGame(
                self.predict_fn, instance, self.background
            ),
            config=self.config,
        )
        with runtime.stats.timer():
            phi = exact_shapley_values(runtime)
            base = runtime.empty_value()
            prediction = runtime.grand_value()
        names = self.feature_names or [f"x{i}" for i in range(len(instance))]
        return FeatureAttribution(
            feature_names=list(names),
            values=phi,
            base_value=base,
            prediction=prediction,
            metadata={
                "method": "exact_shapley",
                "n_coalitions_evaluated": runtime.stats.n_coalition_evals,
                **runtime.stats.as_metadata(),
            },
        )
