"""Regression tests for the runtime-ledger bugfix sweep.

Each test pins one fix that the serving layer leans on and that was red
before it landed:

1. :class:`CoalitionCache` is bounded (``max_entries`` + FIFO eviction,
   surfaced as ``EvalStats.cache_evictions``) — an unbounded cache leaks
   in a long-running server;
2. ``EvalStats.since()`` propagates ``extra`` (it used to drop the dict,
   silently stripping per-explanation metadata);
3. nested ``EvalStats.timer()`` blocks count the outermost span only
   (nesting used to double-count wall time, deflating ``rows_per_s``);
4. ``EvalStats.wrap_predict_fn`` is idempotent (re-instrumenting a
   long-lived game used to stack counting wrappers and multiply
   ``n_model_evals``).
"""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers.shapley.games import MarginalImputationGame
from xaidb.runtime import EvalStats, GameRuntime, RuntimeConfig
from xaidb.runtime.cache import CoalitionCache


def _mask(bits: str) -> np.ndarray:
    return np.array([b == "1" for b in bits], dtype=bool)


# ---------------------------------------------------- 1. bounded cache
def test_cache_evicts_fifo_at_max_entries():
    cache = CoalitionCache(4, max_entries=3)
    masks = ["1000", "0100", "0010", "0001", "1100"]
    for i, bits in enumerate(masks):
        cache.put(_mask(bits), float(i))
    assert len(cache) == 3
    assert cache.n_evictions == 2
    # FIFO: the two oldest inserts are gone, the newest three remain
    assert cache.get(_mask("1000")) is None
    assert cache.get(_mask("0100")) is None
    assert cache.get(_mask("0001")) == 3.0
    assert cache.get(_mask("1100")) == 4.0


def test_cache_store_batch_respects_bound():
    cache = CoalitionCache(3, max_entries=2)
    masks = np.array(
        [[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 0]], dtype=bool
    )
    cache.store_batch(masks, np.arange(4.0))
    assert len(cache) == 2
    assert cache.n_evictions == 2
    # eviction never changes values: survivors read back exactly
    values, missing = cache.lookup_batch(masks)
    assert list(missing) == [0, 1]
    assert values[2] == 2.0 and values[3] == 3.0


def test_cache_rejects_bad_bound_and_none_is_unbounded():
    with pytest.raises(ValidationError):
        CoalitionCache(4, max_entries=0)
    cache = CoalitionCache(2, max_entries=None)
    cache.put(_mask("10"), 1.0)
    cache.put(_mask("01"), 2.0)
    cache.put(_mask("11"), 3.0)
    assert len(cache) == 3
    assert cache.n_evictions == 0


def test_runtime_surfaces_evictions_in_stats():
    rng = np.random.default_rng(0)
    game = MarginalImputationGame(
        lambda X: X.sum(axis=1),
        instance=np.arange(4.0),
        background=rng.normal(size=(3, 4)),
    )
    stats = EvalStats()
    runtime = GameRuntime(
        game,
        config=RuntimeConfig(max_cache_entries=4),
        stats=stats,
    )
    # all 16 masks over 4 players: 12 must be evicted to hold the bound
    bits = np.arange(16)[:, None] >> np.arange(4)[None, :]
    all_masks = (bits & 1).astype(bool)
    values = runtime.values_batch(all_masks)
    assert runtime.n_cached == 4
    assert stats.cache_evictions == 12
    assert "cache_evictions" in stats.as_metadata()
    # eviction is a cost knob, not a correctness knob
    unbounded = GameRuntime(
        MarginalImputationGame(
            lambda X: X.sum(axis=1),
            instance=np.arange(4.0),
            background=game.background,
        )
    )
    np.testing.assert_array_equal(
        values, unbounded.values_batch(all_masks)
    )


def test_shared_stats_accumulate_evictions_as_deltas():
    """Two runtimes writing to one ledger must not re-add each other's
    eviction counts (the sync is delta-based, not absolute)."""
    stats = EvalStats()
    runtimes = [
        GameRuntime(
            MarginalImputationGame(
                lambda X: X.sum(axis=1),
                instance=np.arange(3.0),
                background=np.eye(3),
            ),
            config=RuntimeConfig(max_cache_entries=2),
            stats=stats,
        )
        for _ in range(2)
    ]
    bits = np.arange(8)[:, None] >> np.arange(3)[None, :]
    all_masks = (bits & 1).astype(bool)
    for runtime in runtimes:
        runtime.values_batch(all_masks)  # 8 stored, bound 2 → 6 evicted
    assert stats.cache_evictions == 12


# -------------------------------------------- 2. since() keeps `extra`
def test_since_propagates_extra_with_numeric_deltas():
    stats = EvalStats(n_model_evals=100)
    stats.extra.update(n_candidates=10, phase="sample", exact=True)
    snapshot = stats.copy()
    stats.count_rows(50)
    stats.extra["n_candidates"] = 25
    stats.extra["coverage"] = 0.8
    delta = stats.since(snapshot)
    assert delta.n_model_evals == 50
    # numeric keys present in both snapshots are differenced...
    assert delta.extra["n_candidates"] == 15
    # ...new keys and non-numeric values (incl. bools) keep the current
    # value instead of being dropped
    assert delta.extra["coverage"] == 0.8
    assert delta.extra["phase"] == "sample"
    assert delta.extra["exact"] is True


def test_copy_since_merge_round_trip_on_extra():
    a = EvalStats(extra={"n_candidates": 10, "phase": "sample"})
    b = EvalStats(extra={"n_candidates": 5, "phase": "refine"})
    merged = a.copy().merge(b)
    assert merged.extra == {"n_candidates": 15, "phase": "refine"}
    # merge then since(b-shaped snapshot) recovers a's numeric share
    assert merged.since(b).extra["n_candidates"] == 10
    # and the originals were not mutated by copy()
    assert a.extra["n_candidates"] == 10


# --------------------------------------- 3. re-entrant timer, outermost
def test_nested_timer_counts_outermost_span_only(monkeypatch):
    import xaidb.runtime.stats as stats_module

    tick = iter(range(1, 100))
    monkeypatch.setattr(
        stats_module.time, "perf_counter", lambda: float(next(tick))
    )
    stats = EvalStats()
    with stats.timer():  # start = 1
        with stats.timer():  # start = 2
            pass  # inner exit must NOT add (2nd span would double-count)
    # outer exit reads tick 3 → wall = 3 - 1; the pre-fix behaviour
    # accumulated both spans (1 + 3 = 4)
    assert stats.wall_time_s == 2.0
    with stats.timer():  # start = 4
        pass  # exit reads 5
    assert stats.wall_time_s == 3.0  # sequential blocks still add up


def test_timer_depth_recovers_after_exception():
    stats = EvalStats()
    with pytest.raises(RuntimeError):
        with stats.timer():
            with stats.timer():
                raise RuntimeError("boom")
    with stats.timer():
        pass
    assert stats._timer_depth == 0
    assert stats.wall_time_s > 0.0


# ------------------------------------- 4. idempotent instrumentation
def test_wrap_predict_fn_is_idempotent():
    stats = EvalStats()
    base = lambda X: np.asarray(X).sum(axis=1)  # noqa: E731
    once = stats.wrap_predict_fn(base)
    twice = stats.wrap_predict_fn(once)
    assert twice.__wrapped__ is base  # wrappers never stack
    twice(np.ones((5, 3)))
    assert stats.n_model_evals == 5  # not 10


def test_rewrapping_moves_counting_to_the_new_ledger():
    first, second = EvalStats(), EvalStats()
    fn = second.wrap_predict_fn(
        first.wrap_predict_fn(lambda X: np.zeros(len(X)))
    )
    fn(np.ones((4, 2)))
    assert first.n_model_evals == 0  # old wrapper was replaced...
    assert second.n_model_evals == 4  # ...so rows count exactly once


def test_reinstrumented_game_counts_each_row_once():
    """A dispatcher reusing a long-lived game builds a fresh runtime per
    request; the Nth runtime must not count every row N times."""
    rng = np.random.default_rng(1)
    background = rng.normal(size=(5, 3))
    instance = np.arange(3.0)
    masks = np.array([[1, 0, 0], [0, 1, 1], [1, 1, 1]], dtype=bool)

    shared_game = MarginalImputationGame(
        lambda X: X.sum(axis=1), instance, background
    )
    ledger = EvalStats()
    for _ in range(3):  # three requests over the same game
        runtime = GameRuntime(
            shared_game, config=RuntimeConfig(cache=False), stats=ledger
        )
    runtime.values_batch(masks)

    fresh = GameRuntime(
        MarginalImputationGame(
            lambda X: X.sum(axis=1), instance, background
        ),
        config=RuntimeConfig(cache=False),
    )
    fresh.values_batch(masks)
    # pre-fix the triple-wrapped game counted 3x the fresh baseline
    assert ledger.n_model_evals == fresh.stats.n_model_evals > 0
