"""ALE tests plus targeted coverage for previously untested paths."""

import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import (
    accumulated_local_effects,
    partial_dependence,
    predict_positive_proba,
)


class TestAccumulatedLocalEffects:
    def test_linear_model_linear_ale(self):
        """For an additive model, local finite differences within every
        bin equal slope * bin width exactly, so ALE slopes are exact."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        f = lambda Z: 3.0 * Z[:, 0] + Z[:, 1]
        edges, ale = accumulated_local_effects(f, X, feature=0, n_bins=8)
        slopes = np.diff(ale) / np.diff(edges)
        assert np.allclose(slopes, 3.0, atol=1e-8)

    def test_ale_is_centred(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 2))
        f = lambda Z: Z[:, 0] ** 2
        __, ale = accumulated_local_effects(f, X, feature=0, n_bins=10)
        assert abs(ale.mean()) < abs(ale).max()  # roughly centred

    def test_ale_beats_pdp_under_correlation(self):
        """The textbook ALE example: x1 ≈ x0, f = x1 - x0 (so moving x0
        alone is off-manifold).  The true local effect of x0 at fixed x1
        is slope -1; ALE recovers it, while the PDP slope is also -1 here
        but evaluated off-manifold — instead check the off-manifold
        artefact: with f = x0 * x1 and strong correlation, the PDP of x0
        bends (uses impossible negative products) while the ALE slope
        stays near E[x1 | x0] locally.  We assert the two disagree, and
        that ALE matches the on-manifold finite-difference ground truth
        better."""
        rng = np.random.default_rng(2)
        x0 = rng.normal(size=2000)
        x1 = x0 + 0.1 * rng.normal(size=2000)  # strongly correlated
        X = np.column_stack([x0, x1])
        f = lambda Z: Z[:, 0] * Z[:, 1]

        edges, ale = accumulated_local_effects(f, X, feature=0, n_bins=10)
        grid, pdp = partial_dependence(f, X, feature=0, n_grid=10)

        # ground truth on-manifold local slope of x0 at value v is
        # d/dx0 [x0 * E[x1|x0=v]] ≈ 2v (since x1 ≈ x0)
        ale_slopes = np.diff(ale) / np.diff(edges)
        truth = 2.0 * (edges[:-1] + edges[1:]) / 2.0
        ale_error = float(np.abs(ale_slopes - truth).mean())
        pdp_slopes = np.diff(pdp) / np.diff(grid)
        pdp_truth = 2.0 * (grid[:-1] + grid[1:]) / 2.0
        pdp_error = float(np.abs(pdp_slopes - pdp_truth).mean())
        # PDP's slope is E[x1] ~ 0 everywhere (it ignores the correlation),
        # so its error against the on-manifold truth is much larger
        assert ale_error < 0.5 * pdp_error

    def test_validation(self):
        X = np.random.default_rng(3).normal(size=(50, 2))
        f = lambda Z: Z[:, 0]
        with pytest.raises(ValidationError):
            accumulated_local_effects(f, X, feature=9)
        with pytest.raises(ValidationError):
            accumulated_local_effects(f, X, feature=0, n_bins=1)

    def test_constant_feature_rejected(self):
        X = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        with pytest.raises(ValidationError, match="too few distinct"):
            accumulated_local_effects(lambda Z: Z[:, 1], X, feature=0)


class TestShapleyFlowNodeCredit:
    def test_node_credit_flow_conservation(self):
        from xaidb.causal import (
            AdditiveNoiseMechanism,
            CausalGraph,
            StructuralCausalModel,
        )
        from xaidb.explainers.shapley import ShapleyFlowExplainer

        graph = CausalGraph(["A", "B"], [("A", "B")])
        scm = StructuralCausalModel(
            graph,
            {
                "A": AdditiveNoiseMechanism(lambda p: 0.0, noise_scale=1.0),
                "B": AdditiveNoiseMechanism(lambda p: p["A"], noise_scale=0.1),
            },
        )
        explainer = ShapleyFlowExplainer(
            lambda X: X[:, 1], scm, ["A", "B"], n_orderings=20
        )
        credits = explainer.explain(
            {"A": 1.0, "B": 1.0}, {"A": 0.0, "B": 0.0}, random_state=0
        )
        node_credit = explainer.node_credit(credits)
        # the root's net outflow equals the total transmitted effect
        assert node_credit["A"] == pytest.approx(1.0, abs=1e-9)
        # B is a pure conduit: inflow equals outflow, net 0
        assert node_credit["B"] == pytest.approx(0.0, abs=1e-9)


class TestMiscEdgePaths:
    def test_group_prediction_influence(self, income, income_logistic):
        from xaidb.datavaluation import InfluenceFunctions

        influence = InfluenceFunctions(
            income_logistic, income.dataset.X, income.dataset.y
        )
        deltas = influence.group_prediction_influence(
            [0, 1, 2], income.dataset.X[:5], order="second"
        )
        assert deltas.shape == (5,)
        assert np.all(np.isfinite(deltas))

    def test_geco_range_expansion_validation(self, credit, income_logistic):
        from xaidb.explainers.counterfactual import GecoExplainer

        with pytest.raises(ValidationError):
            GecoExplainer(
                lambda X: np.zeros(len(X)), credit.dataset,
                range_expansion=-1.0,
            )

    def test_geco_range_expansion_widens_box(self, credit):
        from xaidb.explainers.counterfactual import GecoExplainer

        f = lambda X: np.full(len(X), 0.6)
        narrow = GecoExplainer(f, credit.dataset)
        wide = GecoExplainer(f, credit.dataset, range_expansion=1.0)
        duration = credit.dataset.feature_index("duration")
        assert wide.space.upper[duration] > narrow.space.upper[duration]
        assert wide.space.lower[duration] < narrow.space.lower[duration]

    def test_label_flip_directions(self, income):
        from xaidb.pipelines import LabelFlipCorruption

        X, y = income.dataset.X, income.dataset.y
        rng = np.random.default_rng(0)
        up = LabelFlipCorruption(fraction=0.1, direction="up")
        __, y_up, __, record_up = up.apply(X, y.copy(), np.arange(len(y)), rng)
        for row in record_up.touched_rows:
            assert y[row] == 0.0 and y_up[row] == 1.0

        down = LabelFlipCorruption(fraction=0.1, direction="down")
        __, y_down, __, record_down = down.apply(
            X, y.copy(), np.arange(len(y)), np.random.default_rng(1)
        )
        for row in record_down.touched_rows:
            assert y[row] == 1.0 and y_down[row] == 0.0

    def test_label_flip_direction_validation(self):
        from xaidb.pipelines import LabelFlipCorruption

        with pytest.raises(ValidationError):
            LabelFlipCorruption(direction="sideways")

    def test_treeshap_class_index_zero(self, income):
        from xaidb.explainers.shapley import TreeShapExplainer
        from xaidb.models import DecisionTreeClassifier

        model = DecisionTreeClassifier(max_depth=3).fit(
            income.dataset.X, income.dataset.y
        )
        explainer = TreeShapExplainer(model, class_index=0)
        att = explainer.explain(income.dataset.X[0])
        assert att.additive_check(atol=1e-10)
        # P(class 0) attribution is the negation of P(class 1)'s
        other = TreeShapExplainer(model, class_index=1).explain(
            income.dataset.X[0]
        )
        assert np.allclose(att.values, -other.values, atol=1e-10)

    def test_utility_min_points(self, income):
        from xaidb.datavaluation import UtilityFunction
        from xaidb.models import LogisticRegression

        utility = UtilityFunction(
            LogisticRegression(),
            income.dataset.X[:50],
            income.dataset.y[:50],
            min_points=10,
        )
        small = utility(income.dataset.X, income.dataset.y, list(range(5)))
        assert small == utility.null_utility()

    def test_bag_of_words_unfitted(self):
        from xaidb.explainers import BagOfWordsClassifier

        with pytest.raises(ValidationError):
            BagOfWordsClassifier().predict_proba(["hello"])
