"""E19 — Fooling LIME and SHAP with adversarial scaffolding
(Slack et al. 2020, Table 1 shape).

Workload: the COMPAS-like discrete recidivism data with a racially biased
model.  Reproduced shape (the paper's headline numbers):

- without the scaffold, LIME and KernelSHAP put 'race' top-1 on ~100% of
  instances;
- with the scaffold, the sensitive feature almost never appears top-1 —
  the innocuous cover feature does — while deployed predictions on real
  rows remain 100% biased.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.attacks import ScaffoldedClassifier, train_ood_detector
from xaidb.data import make_recidivism
from xaidb.explainers import LimeExplainer
from xaidb.explainers.shapley import KernelShapExplainer

N_INSTANCES = 10


def compute_rows():
    workload = make_recidivism(
        700, biased=True, discrete=True, random_state=1
    )
    dataset = workload.dataset
    race = dataset.feature_index("race")
    priors = dataset.feature_index("priors")

    def biased(X):
        return (X[:, race] > 0.5).astype(float) * 0.8 + 0.1

    def innocuous(X):
        return (X[:, priors] > 0).astype(float) * 0.8 + 0.1

    # one detector per target explainer, matching its probe distribution
    # (exactly as in the paper: the adversary knows which explainer the
    # auditor will run)
    detectors = {
        "lime": train_ood_detector(dataset, style="lime", random_state=0),
        "kernel shap": train_ood_detector(
            dataset, style="shap", random_state=0
        ),
    }
    lime = LimeExplainer(dataset, n_samples=500)
    background = dataset.X[:20]

    def top1_race_rate(f, explainer_name):
        hits = 0
        for i in range(N_INSTANCES):
            if explainer_name == "lime":
                attribution = lime.explain(f, dataset.X[i], random_state=i)
            else:
                attribution = KernelShapExplainer(
                    f, background, feature_names=dataset.feature_names
                ).explain(dataset.X[i], random_state=i)
            hits += attribution.top(1)[0][0] == "race"
        return hits / N_INSTANCES

    rows = []
    for explainer_name, detector in detectors.items():
        scaffold = ScaffoldedClassifier(biased, innocuous, detector)
        rows.append(
            (
                explainer_name,
                top1_race_rate(biased, explainer_name),
                top1_race_rate(scaffold, explainer_name),
                float(np.mean(scaffold(dataset.X) == biased(dataset.X))),
            )
        )
    return rows


def test_e19_fooling(benchmark):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "E19: fraction of instances with 'race' as top-1 feature "
        "(paper: ~1.0 naked, ~0 scaffolded; fooling SHAP is harder because "
        "its probes are hybrids of real rows)",
        ["explainer", "biased model", "scaffolded", "deployed bias kept"],
        rows,
    )
    for explainer_name, naked, cloaked, deployed in rows:
        assert naked >= 0.8, explainer_name
        assert cloaked <= 0.4, explainer_name
        # deployed behaviour must remain predominantly biased
        assert deployed >= 0.6, explainer_name
    by_name = {row[0]: row for row in rows}
    # the LIME attack is the cleaner one (paper's observation)
    assert by_name["lime"][3] >= by_name["kernel shap"][3]
