"""Shapley flow: edge-based credit assignment on a causal graph
(Wang, Wiens & Lundberg 2021).

Set-based Shapley values force a choice between crediting only root causes
(asymmetric/on-manifold) or only direct inputs (off-manifold/marginal).
Shapley flow resolves the tension by attributing to the *edges* of the
causal graph: the credit of an edge is the output change it transmits,
averaged over random depth-first update orderings.

Implementation: the model output is added as a sink node fed by every
feature.  One Monte-Carlo pass starts all variables at their baseline
values, then visits the (virtual) source's edges in random order; each
traversed edge recomputes its target from the *current* parent values
(using the foreground instance's abducted noise, so a fully-updated graph
reproduces the instance) and recursively continues depth-first.  Whenever
the sink's value changes, the change is credited to **every edge on the
active source-to-sink path**, which yields the paper's flow-conservation
property by construction:

- credit into the sink sums to ``f(x) - f(baseline)`` (efficiency);
- at every internal node, inflow equals outflow.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from xaidb.causal.scm import StructuralCausalModel
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, PredictFn
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array

__all__ = ["ShapleyFlowExplainer"]

_SINK = "__output__"


class ShapleyFlowExplainer(Explainer):
    """Edge attributions for a model over SCM-governed features.

    Parameters
    ----------
    predict_fn:
        Scalar model output over the feature matrix (columns in
        ``feature_nodes`` order).
    scm:
        Structural causal model over (at least) the feature nodes.
    feature_nodes:
        SCM node per model input column.
    n_orderings:
        Monte-Carlo DFS passes.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        scm: StructuralCausalModel,
        feature_nodes: Sequence[Hashable],
        *,
        n_orderings: int = 100,
    ) -> None:
        missing = [n for n in feature_nodes if n not in scm.graph]
        if missing:
            raise ValidationError(f"SCM is missing feature nodes: {missing}")
        if n_orderings < 1:
            raise ValidationError("n_orderings must be >= 1")
        self.predict_fn = predict_fn
        self.scm = scm
        self.feature_nodes = list(feature_nodes)
        self.n_orderings = n_orderings
        # graph restricted to features, plus the model sink
        self._subgraph = scm.graph.subgraph_on(self.feature_nodes)
        self._edges: list[tuple] = list(self._subgraph.edges) + [
            (node, _SINK) for node in self.feature_nodes
        ]

    # ------------------------------------------------------------------
    def _model_value(self, values: dict) -> float:
        row = np.asarray(
            [[values[node] for node in self.feature_nodes]], dtype=float
        )
        return float(self.predict_fn(row)[0])

    def _mechanism_value(self, node, values: dict, noise: dict) -> float:
        parents = self.scm.graph.parents(node)
        parent_values = {p: np.asarray([values[p]]) for p in parents}
        out = self.scm.mechanisms[node].compute(parent_values, noise[node])
        return float(np.asarray(out)[0])

    def explain(
        self,
        instance: dict | np.ndarray,
        baseline: dict | np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> dict[tuple, float]:
        """Edge credits for explaining ``f(instance)`` against ``baseline``.

        ``instance`` and ``baseline`` may be dicts over feature nodes or
        arrays in ``feature_nodes`` order.  Returns ``{(source, target):
        credit}`` including the virtual edges ``(feature, "__output__")``.
        """
        foreground = self._as_mapping(instance)
        background = self._as_mapping(baseline)
        rng = check_random_state(random_state)
        # abduct foreground noise so a fully-updated graph reproduces it
        noise = {}
        for node in self.feature_nodes:
            parents = self._subgraph.parents(node)
            parent_values = {
                p: np.asarray([foreground[p]]) for p in parents
            }
            # parents outside the feature set are impossible here because
            # the subgraph restriction keeps endogenous structure intact
            noise[node] = self.scm.mechanisms[node].abduct(
                np.asarray([foreground[node]]), parent_values
            )
        credits = {edge: 0.0 for edge in self._edges}
        roots = self._subgraph.roots()
        for _ in range(self.n_orderings):
            self._one_pass(
                roots, foreground, background, noise, credits, rng
            )
        return {edge: credit / self.n_orderings for edge, credit in credits.items()}

    # ------------------------------------------------------------------
    def _one_pass(
        self, roots, foreground, background, noise, credits, rng
    ) -> None:
        values = dict(background)
        state = {"output": self._model_value(values)}

        def visit(node, path: list[tuple]) -> None:
            children = list(self._subgraph.children(node)) + [_SINK]
            order = list(rng.permutation(len(children)))
            for child_pos in order:
                child = children[child_pos]
                edge = (node, child)
                if child == _SINK:
                    new_output = self._model_value(values)
                    delta = new_output - state["output"]
                    # xailint: disable=XDB006 (exact-zero edge flows are skipped, not compared approximately)
                    if delta != 0.0:
                        for path_edge in path + [edge]:
                            credits[path_edge] += delta
                        state["output"] = new_output
                    continue
                values[child] = self._mechanism_value(child, values, noise)
                visit(child, path + [edge])

        root_order = list(rng.permutation(len(roots)))
        for root_pos in root_order:
            root = roots[root_pos]
            values[root] = foreground[root]
            visit(root, [])

    def _as_mapping(self, point) -> dict:
        if isinstance(point, dict):
            missing = [n for n in self.feature_nodes if n not in point]
            if missing:
                raise ValidationError(f"point is missing nodes: {missing}")
            return {n: float(point[n]) for n in self.feature_nodes}
        array = check_array(point, name="point", ndim=1)
        if array.shape[0] != len(self.feature_nodes):
            raise ValidationError("point length != number of feature nodes")
        return dict(zip(self.feature_nodes, array.tolist()))

    # ------------------------------------------------------------------
    @staticmethod
    def node_credit(credits: dict[tuple, float]) -> dict:
        """Aggregate edge credits into per-source-node credit (outflow of
        each node minus inflow; for root causes this is their total
        transmitted effect)."""
        outflow: dict = {}
        inflow: dict = {}
        for (source, target), credit in credits.items():
            outflow[source] = outflow.get(source, 0.0) + credit
            inflow[target] = inflow.get(target, 0.0) + credit
        return {
            node: outflow.get(node, 0.0) - inflow.get(node, 0.0)
            for node in outflow
        }
