"""Transaction databases for frequent-itemset mining (§2.2.1).

The tutorial positions association-rule mining (Agrawal et al. 1993/1994,
Han et al. 2000) as the data-management substrate behind rule-based
explanations.  :class:`TransactionDatabase` is the shared input format for
the Apriori and FP-Growth implementations in :mod:`xaidb.rules.mining`,
and :func:`make_transactions` generates the synthetic market-basket
workloads used in experiment E13's support-threshold sweep.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from xaidb.exceptions import ValidationError
from xaidb.utils.rng import RandomState, check_random_state

__all__ = ["TransactionDatabase", "make_transactions"]


@dataclass
class TransactionDatabase:
    """A bag of transactions, each a frozenset of hashable items."""

    transactions: list[frozenset] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.transactions = [frozenset(t) for t in self.transactions]

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self):
        return iter(self.transactions)

    @property
    def items(self) -> set:
        """The universe of items appearing in any transaction."""
        universe: set = set()
        for transaction in self.transactions:
            universe |= transaction
        return universe

    def support_count(self, itemset: Iterable) -> int:
        """Number of transactions containing every item of ``itemset``."""
        needle = frozenset(itemset)
        return sum(1 for t in self.transactions if needle <= t)

    def support(self, itemset: Iterable) -> float:
        """Fraction of transactions containing ``itemset``."""
        if not self.transactions:
            raise ValidationError("support undefined on an empty database")
        # xailint: disable=XDB023 (the empty-database guard above raises first)
        return self.support_count(itemset) / len(self.transactions)

    def item_counts(self) -> Counter:
        """Counter of single-item supports (used to seed both miners)."""
        counts: Counter = Counter()
        for transaction in self.transactions:
            counts.update(transaction)
        return counts

    @classmethod
    def from_dataset_rows(cls, rows: Sequence[dict]) -> "TransactionDatabase":
        """Convert dict-rows to transactions of ``"column=value"`` items —
        the standard reduction that lets itemset miners run over tabular
        data (each row becomes one transaction)."""
        transactions = [
            frozenset(f"{key}={value}" for key, value in row.items())
            for row in rows
        ]
        return cls(transactions)


def make_transactions(
    n_transactions: int = 1000,
    n_items: int = 50,
    *,
    n_patterns: int = 8,
    pattern_length: int = 4,
    pattern_probability: float = 0.35,
    noise_items: int = 3,
    random_state: RandomState = None,
) -> TransactionDatabase:
    """Generate a synthetic market-basket database with planted patterns.

    Each transaction independently includes each of ``n_patterns`` planted
    itemsets (of size ``pattern_length``) with probability
    ``pattern_probability`` and then adds ``noise_items`` uniformly random
    items.  The planted patterns are therefore the frequent itemsets any
    correct miner must recover — tests use them as ground truth.
    """
    if n_transactions < 1 or n_items < pattern_length:
        raise ValidationError("workload dimensions are inconsistent")
    rng = check_random_state(random_state)
    patterns = [
        frozenset(
            int(i)
            for i in rng.choice(n_items, size=pattern_length, replace=False)
        )
        for _ in range(n_patterns)
    ]
    transactions = []
    for _ in range(n_transactions):
        basket: set[int] = set()
        for pattern in patterns:
            if rng.random() < pattern_probability:
                basket |= pattern
        basket |= {
            int(i) for i in rng.integers(0, n_items, size=noise_items)
        }
        transactions.append(frozenset(basket))
    return TransactionDatabase(transactions)
