import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.models import GaussianNB, KNeighborsClassifier, MLPClassifier, accuracy


class TestKNeighborsClassifier:
    def test_k1_memorises_training_data(self, moons):
        model = KNeighborsClassifier(n_neighbors=1).fit(moons.X, moons.y)
        assert accuracy(moons.y, model.predict(moons.X)) == 1.0

    def test_kneighbors_returns_self_first_on_training_point(self, moons):
        model = KNeighborsClassifier(n_neighbors=3).fit(moons.X, moons.y)
        neighbors = model.kneighbors(moons.X[:5])
        assert np.array_equal(neighbors[:, 0], np.arange(5))

    def test_proba_is_vote_fraction(self):
        X = np.asarray([[0.0], [0.1], [0.2], [10.0]])
        y = np.asarray([0.0, 0.0, 1.0, 1.0])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        proba = model.predict_proba(np.asarray([[0.05]]))
        assert proba[0, 0] == pytest.approx(2.0 / 3.0)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValidationError):
            KNeighborsClassifier(n_neighbors=10).fit(
                np.ones((5, 1)), np.asarray([0, 0, 1, 1, 1.0])
            )

    def test_deterministic_tie_breaking(self):
        X = np.asarray([[0.0], [1.0], [1.0], [2.0]])
        y = np.asarray([0.0, 0.0, 1.0, 1.0])
        model = KNeighborsClassifier(n_neighbors=2).fit(X, y)
        a = model.kneighbors(np.asarray([[1.0]]))
        b = model.kneighbors(np.asarray([[1.0]]))
        assert np.array_equal(a, b)


class TestGaussianNB:
    def test_separable_gaussians(self):
        rng = np.random.default_rng(0)
        X = np.vstack(
            [rng.normal(-2, 1, size=(100, 2)), rng.normal(2, 1, size=(100, 2))]
        )
        y = np.concatenate([np.zeros(100), np.ones(100)])
        model = GaussianNB().fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_class_priors_learned(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 1))
        y = np.concatenate([np.zeros(80), np.ones(20)])
        model = GaussianNB().fit(X, y)
        assert model.class_prior_[0] == pytest.approx(0.8)

    def test_probabilities_valid(self, income):
        model = GaussianNB().fit(income.dataset.X, income.dataset.y)
        proba = model.predict_proba(income.dataset.X[:30])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(40), np.concatenate([np.zeros(20), np.ones(20)])])
        y = np.concatenate([np.zeros(20), np.ones(20)])
        model = GaussianNB().fit(X, y)
        assert accuracy(y, model.predict(X)) == 1.0


class TestMLPClassifier:
    def test_learns_moons(self, moons):
        model = MLPClassifier(
            hidden_sizes=(16,), max_iter=500, random_state=0
        ).fit(moons.X, moons.y)
        assert accuracy(moons.y, model.predict(moons.X)) > 0.9

    def test_input_gradient_matches_finite_difference(self, moons):
        model = MLPClassifier(
            hidden_sizes=(8,), max_iter=300, random_state=0
        ).fit(moons.X, moons.y)
        x = moons.X[0]
        gradient = model.input_gradient(x, 1)
        eps = 1e-5
        for j in range(2):
            step = np.zeros(2)
            step[j] = eps
            plus = model.predict_proba((x + step)[None, :])[0, 1]
            minus = model.predict_proba((x - step)[None, :])[0, 1]
            assert gradient[j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-5)

    def test_randomize_parameters_changes_predictions(self, moons):
        model = MLPClassifier(
            hidden_sizes=(8,), max_iter=300, random_state=0
        ).fit(moons.X, moons.y)
        shuffled = model.randomize_parameters(random_state=1)
        original = model.predict_proba(moons.X)
        broken = shuffled.predict_proba(moons.X)
        assert not np.allclose(original, broken, atol=0.05)

    def test_randomize_does_not_touch_original(self, moons):
        model = MLPClassifier(
            hidden_sizes=(8,), max_iter=100, random_state=0
        ).fit(moons.X, moons.y)
        before = [w.copy() for w in model.weights_]
        model.randomize_parameters(random_state=2)
        assert all(np.array_equal(a, b) for a, b in zip(before, model.weights_))

    def test_partial_randomization_keeps_lower_layers(self, moons):
        model = MLPClassifier(
            hidden_sizes=(8,), max_iter=100, random_state=0
        ).fit(moons.X, moons.y)
        top_only = model.randomize_parameters(layers=1, random_state=3)
        assert np.array_equal(top_only.weights_[0], model.weights_[0])
        assert not np.array_equal(top_only.weights_[-1], model.weights_[-1])

    def test_invalid_hidden_sizes(self):
        with pytest.raises(ValidationError):
            MLPClassifier(hidden_sizes=())
        with pytest.raises(ValidationError):
            MLPClassifier(hidden_sizes=(0,))

    def test_class_index_bounds_in_gradient(self, moons):
        model = MLPClassifier(
            hidden_sizes=(4,), max_iter=50, random_state=0
        ).fit(moons.X, moons.y)
        with pytest.raises(ValidationError):
            model.input_gradient(moons.X[0], 5)
