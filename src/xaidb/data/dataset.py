"""The :class:`Dataset` tabular container.

xaidb works on dense numeric matrices; categorical features are stored as
integer codes alongside a :class:`FeatureSpec` that remembers the category
labels.  This keeps the ML substrate purely numerical while letting
explainers (LIME discretisation, Anchors predicates, counterfactual
feasibility constraints) reason about feature semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["FeatureSpec", "Dataset"]


@dataclass(frozen=True)
class FeatureSpec:
    """Metadata for one column of a :class:`Dataset`.

    Attributes
    ----------
    name:
        Column name.
    kind:
        Either ``"numeric"`` or ``"categorical"``.
    categories:
        For categorical features, the tuple of category labels; the stored
        value ``k`` encodes ``categories[k]``.  ``None`` for numeric
        features.
    actionable:
        Whether counterfactual/recourse search is allowed to change this
        feature (e.g. ``age`` and ``race`` are typically immutable).
    monotone:
        Optional recourse direction constraint: ``+1`` means the feature may
        only increase (e.g. ``education``), ``-1`` only decrease, ``0``
        unconstrained.
    """

    name: str
    kind: str = "numeric"
    categories: tuple[Any, ...] | None = None
    actionable: bool = True
    monotone: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "categorical"):
            raise ValidationError(
                f"feature {self.name!r}: kind must be 'numeric' or "
                f"'categorical', got {self.kind!r}"
            )
        if self.kind == "categorical" and not self.categories:
            raise ValidationError(
                f"categorical feature {self.name!r} needs a non-empty "
                f"categories tuple"
            )
        if self.kind == "numeric" and self.categories is not None:
            raise ValidationError(
                f"numeric feature {self.name!r} must not define categories"
            )
        if self.monotone not in (-1, 0, 1):
            raise ValidationError(
                f"feature {self.name!r}: monotone must be -1, 0 or +1"
            )

    @property
    def is_categorical(self) -> bool:
        return self.kind == "categorical"

    def decode(self, value: float) -> Any:
        """Map a stored numeric value back to its human-readable label."""
        if not self.is_categorical:
            return float(value)
        index = int(round(value))
        if not 0 <= index < len(self.categories):  # type: ignore[arg-type]
            raise ValidationError(
                f"code {index} out of range for feature {self.name!r}"
            )
        return self.categories[index]  # type: ignore[index]

    def encode(self, label: Any) -> float:
        """Map a human-readable label to its stored numeric code."""
        if not self.is_categorical:
            return float(label)
        try:
            return float(self.categories.index(label))  # type: ignore[union-attr]
        except ValueError as exc:
            raise ValidationError(
                f"unknown category {label!r} for feature {self.name!r}"
            ) from exc


@dataclass
class Dataset:
    """A dense tabular dataset with feature metadata and optional labels.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n_rows, n_features)``; categorical
        columns hold integer codes.
    y:
        Optional label vector of length ``n_rows``.
    features:
        One :class:`FeatureSpec` per column.  If omitted, anonymous numeric
        specs ``x0..x{d-1}`` are generated.
    target_name:
        Name of the label column (for display).
    target_classes:
        For classification data, the tuple of class labels encoded as
        ``0..k-1`` in ``y``.
    """

    X: np.ndarray
    y: np.ndarray | None = None
    features: list[FeatureSpec] = field(default_factory=list)
    target_name: str = "target"
    target_classes: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        self.X = check_array(self.X, name="X", ndim=2)
        if self.y is not None:
            self.y = check_array(self.y, name="y", ndim=1)
            check_matching_lengths(("X", self.X), ("y", self.y))
        if not self.features:
            self.features = [
                FeatureSpec(name=f"x{i}") for i in range(self.X.shape[1])
            ]
        if len(self.features) != self.X.shape[1]:
            raise ValidationError(
                f"got {len(self.features)} feature specs for "
                f"{self.X.shape[1]} columns"
            )
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise ValidationError("feature names must be unique")

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def feature_names(self) -> list[str]:
        return [f.name for f in self.features]

    @property
    def categorical_indices(self) -> list[int]:
        return [i for i, f in enumerate(self.features) if f.is_categorical]

    @property
    def numeric_indices(self) -> list[int]:
        return [i for i, f in enumerate(self.features) if not f.is_categorical]

    def feature_index(self, name: str) -> int:
        """Column index of feature ``name``."""
        try:
            return self.feature_names.index(name)
        except ValueError as exc:
            raise ValidationError(f"unknown feature {name!r}") from exc

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        labelled = "labelled" if self.y is not None else "unlabelled"
        return (
            f"Dataset({self.n_rows} rows x {self.n_features} features, "
            f"{labelled})"
        )

    # ------------------------------------------------------------------
    # construction and conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, Any]],
        features: Sequence[FeatureSpec],
        *,
        y: Iterable[Any] | None = None,
        target_name: str = "target",
        target_classes: tuple[Any, ...] | None = None,
    ) -> "Dataset":
        """Build a dataset from a list of dict rows, encoding categoricals."""
        if not records:
            raise ValidationError("records must not be empty")
        matrix = np.empty((len(records), len(features)), dtype=float)
        for row_index, record in enumerate(records):
            for col_index, spec in enumerate(features):
                if spec.name not in record:
                    raise ValidationError(
                        f"record {row_index} is missing feature {spec.name!r}"
                    )
                matrix[row_index, col_index] = spec.encode(record[spec.name])
        y_array = None if y is None else np.asarray(list(y), dtype=float)
        return cls(
            X=matrix,
            y=y_array,
            features=list(features),
            target_name=target_name,
            target_classes=target_classes,
        )

    def row_as_dict(self, index: int, *, decode: bool = True) -> dict[str, Any]:
        """Return row ``index`` as a ``{feature_name: value}`` mapping."""
        row = self.X[index]
        if decode:
            return {
                spec.name: spec.decode(value)
                for spec, value in zip(self.features, row)
            }
        return dict(zip(self.feature_names, row.tolist()))

    # ------------------------------------------------------------------
    # slicing and splitting
    # ------------------------------------------------------------------
    def subset(self, rows: Sequence[int] | np.ndarray) -> "Dataset":
        """Row-subset view (copies data) preserving all metadata."""
        rows = np.asarray(rows)
        return Dataset(
            X=self.X[rows].copy(),
            y=None if self.y is None else self.y[rows].copy(),
            features=list(self.features),
            target_name=self.target_name,
            target_classes=self.target_classes,
        )

    def drop_rows(self, rows: Sequence[int] | np.ndarray) -> "Dataset":
        """Return a copy of the dataset without the given row indices."""
        mask = np.ones(self.n_rows, dtype=bool)
        mask[np.asarray(rows)] = False
        return self.subset(np.flatnonzero(mask))

    def split(
        self,
        *,
        test_fraction: float = 0.25,
        random_state: RandomState = None,
    ) -> tuple["Dataset", "Dataset"]:
        """Shuffle-split into (train, test) datasets."""
        if not 0.0 < test_fraction < 1.0:
            raise ValidationError(
                f"test_fraction must be in (0, 1), got {test_fraction}"
            )
        rng = check_random_state(random_state)
        order = rng.permutation(self.n_rows)
        n_test = max(1, int(round(self.n_rows * test_fraction)))
        test_rows, train_rows = order[:n_test], order[n_test:]
        if train_rows.size == 0:
            raise ValidationError("split left the training set empty")
        return self.subset(train_rows), self.subset(test_rows)
