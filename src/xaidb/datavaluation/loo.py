"""Leave-one-out data values — the "naive way of computing the influence
of a data point" (tutorial §2.3.2): remove it, retrain, diff the metric.

Exact but O(n) retrainings; it is both the correctness oracle for
influence functions (E16) and the weaker baseline Data Shapley is
compared against (E14).
"""

from __future__ import annotations

import numpy as np

from xaidb.datavaluation.utility import UtilityFunction
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = ["leave_one_out_values"]


def leave_one_out_values(
    utility: UtilityFunction,
    X_train: np.ndarray,
    y_train: np.ndarray,
) -> np.ndarray:
    """``value_i = v(D) - v(D \\ {i})`` for every training point.

    Positive values mark points that help validation performance; points
    with noisy/corrupted labels typically come out negative.
    """
    X_train = check_array(X_train, name="X_train", ndim=2)
    y_train = check_array(y_train, name="y_train", ndim=1)
    check_matching_lengths(("X_train", X_train), ("y_train", y_train))
    n = len(y_train)
    full = utility(X_train, y_train)
    values = np.empty(n)
    everyone = np.arange(n)
    for i in range(n):
        subset = everyone[everyone != i]
        values[i] = full - utility(X_train, y_train, subset)
    return values
