"""The batched explanation back-end: (model, explainer, config) → work.

The dispatcher owns two registries — models (by digest) and explainer
factories (by name) — and turns one coalesced micro-batch into exactly
one batched explainer call.  Backends are built once per
``(model, explainer, config digest)`` and cached, so a hot workload
pays explainer construction (quantile bins, perturbation statistics)
once, not per request; every backend's batch entry point is seeded
per instance, which keeps the batched results **bitwise identical** to
the per-request serial path (asserted in ``tests/service/`` and by
benchmark A12).

Built-in explainer names: ``"lime"``, ``"kernel_shap"``, ``"anchors"``.
Custom backends register via :meth:`Dispatcher.register_explainer` with
a factory ``(entry, config) -> (instances, seeds) -> (results, stats)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.explainers.base import PredictFn
from xaidb.explainers.lime import LimeExplainer
from xaidb.explainers.shapley import KernelShapExplainer
from xaidb.rules.anchors import AnchorsExplainer
from xaidb.runtime.stats import EvalStats
from xaidb.service.types import (
    UnknownExplainerError,
    UnknownModelError,
    config_digest,
)

__all__ = ["ModelEntry", "Dispatcher", "BackendFn", "BackendFactory"]

#: A built backend: ``(instances, per-instance seeds) -> (results,
#: evaluation ledger or None)``.
BackendFn = Callable[
    [np.ndarray, list[int | None]], tuple[list[Any], EvalStats | None]
]
#: Builds a backend for one (model entry, explainer config) pair.
BackendFactory = Callable[["ModelEntry", dict[str, Any]], BackendFn]


@dataclass
class ModelEntry:
    """One served model: its prediction function plus the side inputs
    different explainer families need (training data for LIME/Anchors
    perturbation statistics, background rows for KernelSHAP)."""

    digest: str
    predict_fn: PredictFn
    dataset: Dataset | None = None
    background: np.ndarray | None = None


# ----------------------------------------------------------- built-ins
def _lime_factory(entry: ModelEntry, config: dict[str, Any]) -> BackendFn:
    if entry.dataset is None:
        raise UnknownModelError(
            f"model {entry.digest!r} has no dataset; LIME needs one for "
            f"perturbation statistics"
        )
    explainer = LimeExplainer(entry.dataset, **config)

    def run(instances, seeds):
        results = explainer.explain_batch(
            entry.predict_fn, instances, seeds=seeds
        )
        return results, explainer.batch_stats_

    return run


def _kernel_shap_factory(
    entry: ModelEntry, config: dict[str, Any]
) -> BackendFn:
    background = entry.background
    if background is None and entry.dataset is not None:
        background = entry.dataset.X
    if background is None:
        raise UnknownModelError(
            f"model {entry.digest!r} has neither background rows nor a "
            f"dataset; KernelSHAP needs a background"
        )
    explainer = KernelShapExplainer(
        entry.predict_fn, background, **config
    )

    def run(instances, seeds):
        results = explainer.explain_batch(instances, seeds=seeds)
        return results, explainer.batch_stats_

    return run


def _anchors_factory(entry: ModelEntry, config: dict[str, Any]) -> BackendFn:
    if entry.dataset is None:
        raise UnknownModelError(
            f"model {entry.digest!r} has no dataset; Anchors needs one "
            f"for its perturbation distribution"
        )
    explainer = AnchorsExplainer(entry.predict_fn, entry.dataset, **config)

    def run(instances, seeds):
        results = explainer.explain_batch(instances, seeds=seeds)
        return results, explainer.batch_stats_

    return run


_BUILTIN_FACTORIES: dict[str, BackendFactory] = {
    "lime": _lime_factory,
    "kernel_shap": _kernel_shap_factory,
    "anchors": _anchors_factory,
}


class Dispatcher:
    """Model + explainer registries with a per-batch-key backend cache.

    Thread-safety note: :meth:`dispatch` runs in worker threads (the
    server calls it via ``asyncio.to_thread``), but the server
    serialises dispatches *per batch key*, and the registries are
    written only at setup time — so no locking is needed as long as
    registration precedes serving.
    """

    def __init__(self) -> None:
        self._models: dict[str, ModelEntry] = {}
        self._factories: dict[str, BackendFactory] = dict(
            _BUILTIN_FACTORIES
        )
        self._backends: dict[tuple[str, str, str], BackendFn] = {}

    # ------------------------------------------------------------------
    def register_model(
        self,
        digest: str,
        predict_fn: PredictFn,
        *,
        dataset: Dataset | None = None,
        background: np.ndarray | None = None,
    ) -> ModelEntry:
        """Register a served model under ``digest``; re-registering a
        digest replaces the entry and drops its cached backends."""
        entry = ModelEntry(
            digest=digest,
            predict_fn=predict_fn,
            dataset=dataset,
            background=(
                None
                if background is None
                else np.asarray(background, dtype=float)
            ),
        )
        self._models[digest] = entry
        self._backends = {
            key: backend
            for key, backend in self._backends.items()
            if key[0] != digest
        }
        return entry

    def register_explainer(self, name: str, factory: BackendFactory) -> None:
        """Register (or replace) an explainer factory under ``name``."""
        self._factories[name] = factory
        self._backends = {
            key: backend
            for key, backend in self._backends.items()
            if key[1] != name
        }

    @property
    def models(self) -> tuple[str, ...]:
        return tuple(self._models)

    @property
    def explainers(self) -> tuple[str, ...]:
        return tuple(self._factories)

    # ------------------------------------------------------------------
    def _backend(
        self, model: str, explainer: str, config: dict[str, Any]
    ) -> BackendFn:
        key = (model, explainer, config_digest(config))
        backend = self._backends.get(key)
        if backend is None:
            entry = self._models.get(model)
            if entry is None:
                raise UnknownModelError(
                    f"no model registered under digest {model!r}"
                )
            factory = self._factories.get(explainer)
            if factory is None:
                raise UnknownExplainerError(
                    f"no explainer registered under {explainer!r} "
                    f"(have: {sorted(self._factories)})"
                )
            backend = factory(entry, dict(config))
            self._backends[key] = backend
        return backend

    def dispatch(
        self,
        model: str,
        explainer: str,
        config: dict[str, Any],
        instances: np.ndarray,
        seeds: list[int | None],
    ) -> tuple[list[Any], EvalStats | None]:
        """Run one coalesced batch through its backend.

        Returns one result per instance (order-aligned) plus the
        backend's evaluation ledger for this batch, ready to fold into
        :attr:`~xaidb.service.stats.ServiceStats.runtime`.
        """
        backend = self._backend(model, explainer, config)
        return backend(np.asarray(instances, dtype=float), seeds)
