"""Evaluation metrics for the ML substrate.

Data-valuation methods (Data Shapley, influence functions) treat "the
performance metric" as a first-class game payoff, so these are plain
functions over label/score arrays rather than methods on models.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.utils.validation import check_array, check_matching_lengths

__all__ = [
    "accuracy",
    "confusion_matrix",
    "precision",
    "recall",
    "f1_score",
    "log_loss",
    "roc_auc",
    "mean_squared_error",
    "r2_score",
]


def _check_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_array(y_true, name="y_true", ndim=1)
    y_pred = check_array(y_pred, name="y_pred", ndim=1)
    check_matching_lengths(("y_true", y_true), ("y_pred", y_pred))
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """2x2 matrix ``[[TN, FP], [FN, TP]]`` for binary 0/1 labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    matrix = np.zeros((2, 2), dtype=int)
    for true_label, predicted in zip(y_true.astype(int), y_pred.astype(int)):
        if true_label not in (0, 1) or predicted not in (0, 1):
            raise ValidationError("confusion_matrix expects binary 0/1 labels")
        matrix[true_label, predicted] += 1
    return matrix


def precision(y_true, y_pred) -> float:
    """TP / (TP + FP); defined as 0 when nothing is predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    predicted_positive = matrix[0, 1] + matrix[1, 1]
    return float(matrix[1, 1] / predicted_positive) if predicted_positive else 0.0


def recall(y_true, y_pred) -> float:
    """TP / (TP + FN); defined as 0 when there are no positives."""
    matrix = confusion_matrix(y_true, y_pred)
    actual_positive = matrix[1, 0] + matrix[1, 1]
    return float(matrix[1, 1] / actual_positive) if actual_positive else 0.0


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2.0 * p * r / (p + r) if (p + r) else 0.0


def log_loss(y_true, y_prob, *, eps: float = 1e-12) -> float:
    """Binary cross-entropy given positive-class probabilities."""
    y_true, y_prob = _check_pair(y_true, y_prob)
    clipped = np.clip(y_prob, eps, 1.0 - eps)
    return float(
        -np.mean(y_true * np.log(clipped) + (1.0 - y_true) * np.log(1.0 - clipped))
    )


def roc_auc(y_true, y_score) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties in scores receive mid-ranks, matching the standard definition.
    """
    y_true, y_score = _check_pair(y_true, y_score)
    positives = y_true > 0.5
    n_pos = int(positives.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_auc needs both classes present")
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=float)
    sorted_scores = y_score[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[positives].sum())
    return (rank_sum_pos - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination ``1 - SS_res / SS_tot``."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    # xailint: disable=XDB006 (exact-zero denominator guard)
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot
