"""E5 — Shapley axioms on model games + QII marginal influence
(Shapley 1953; Datta, Sen & Zick 2016).

Reproduced shape: on the income workload, the exact SHAP attribution
(i) satisfies efficiency exactly, (ii) gives the constructed dummy
feature ~zero credit, and (iii) QII's Shapley aggregate ranks the same
top feature as exact SHAP while its *unary* measure already exposes the
gender feature's indirect-only influence.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.explainers import predict_positive_proba
from xaidb.explainers.shapley import ExactShapleyExplainer, QIIExplainer
from xaidb.models import LogisticRegression

N_INSTANCES = 10


def compute_rows():
    workload = make_income(1200, random_state=0)
    dataset = workload.dataset
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)
    background = dataset.X[:25]
    exact = ExactShapleyExplainer(
        f, background, feature_names=dataset.feature_names
    )
    qii = QIIExplainer(
        f, background, feature_names=dataset.feature_names
    )
    shap_abs = np.zeros(dataset.n_features)
    qii_abs = np.zeros(dataset.n_features)
    efficiency_errors = []
    for i in range(N_INSTANCES):
        attribution = exact.explain(dataset.X[i])
        shap_abs += np.abs(attribution.values)
        efficiency_errors.append(
            abs(
                attribution.base_value
                + attribution.values.sum()
                - attribution.prediction
            )
        )
        qii_att = qii.shapley_qii(
            dataset.X[i], n_permutations=150, random_state=i
        )
        qii_abs += np.abs(qii_att.values)
    shap_abs /= N_INSTANCES
    qii_abs /= N_INSTANCES
    rows = [
        (name, shap_abs[j], qii_abs[j], workload.true_label_weights[name])
        for j, name in enumerate(dataset.feature_names)
    ]
    return rows, float(np.max(efficiency_errors))


def test_e05_shapley_axioms(benchmark):
    rows, max_efficiency_error = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "E5: mean |attribution| per feature (paper: dummy ~ 0, efficiency exact)",
        ["feature", "exact SHAP", "QII Shapley", "true weight"],
        rows,
    )
    print(f"max efficiency violation: {max_efficiency_error:.2e}")
    by_name = {row[0]: row for row in rows}
    assert max_efficiency_error < 1e-8
    # dummy feature gets near-zero credit from both methods
    strongest = max(row[1] for row in rows)
    assert by_name["random_noise"][1] < 0.15 * strongest
    # top feature by exact SHAP is also QII's top feature
    top_shap = max(rows, key=lambda r: r[1])[0]
    top_qii = max(rows, key=lambda r: r[2])[0]
    assert top_shap == top_qii
