"""A4 (ablation) — causal explanations on a *fitted* SCM vs the true SCM.

In practice the analyst has the causal graph but not the mechanisms; the
mechanisms must be estimated from data
(:func:`xaidb.causal.fit_linear_gaussian_scm`).  This ablation measures
how much of the causal-Shapley signal survives estimation, as a function
of the fitting sample size: correlation with the true-SCM attribution
should rise toward 1 with more data, and the global methods (PDP,
permutation importance) built on the same model are shown alongside as
graph-free baselines.
"""

import numpy as np

from benchmarks._tables import print_table
from xaidb.causal import fit_linear_gaussian_scm
from xaidb.data import make_loans
from xaidb.explainers import (
    permutation_importance,
    predict_positive_proba,
)
from xaidb.explainers.shapley import CausalShapleyExplainer
from xaidb.models import LogisticRegression, roc_auc

FIT_SIZES = [100, 500, 2500]


def compute_rows():
    workload = make_loans(2000, random_state=0)
    dataset = workload.dataset
    features = [spec.name for spec in dataset.features]
    model = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)
    f = predict_positive_proba(model)
    x = dataset.X[2]

    true_attribution = CausalShapleyExplainer(
        f, workload.scm, features, n_samples=800
    ).explain(x, random_state=0, decompose=False)

    rows = []
    for size in FIT_SIZES:
        data = {
            node: workload.scm.sample(size, random_state=1)[node]
            for node in workload.graph.nodes
        }
        fitted = fit_linear_gaussian_scm(workload.graph, data)
        fitted_attribution = CausalShapleyExplainer(
            f, fitted, features, n_samples=800
        ).explain(x, random_state=0, decompose=False)
        corr = float(
            np.corrcoef(true_attribution.values, fitted_attribution.values)[0, 1]
        )
        max_gap = float(
            np.abs(true_attribution.values - fitted_attribution.values).max()
        )
        rows.append((size, corr, max_gap))

    # graph-free global baseline for context
    importance = permutation_importance(
        f, dataset.X, dataset.y, roc_auc,
        n_repeats=3, feature_names=features, random_state=2,
    )
    baseline_rows = importance.ranked()
    return rows, baseline_rows, true_attribution


def test_a04_fitted_scm(benchmark):
    rows, baseline_rows, true_attribution = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "A4 (ablation): causal Shapley on a fitted SCM vs the true SCM "
        "(estimation quality rises with fitting data)",
        ["fit sample size", "correlation with true-SCM phi", "max |gap|"],
        rows,
    )
    print_table(
        "context: graph-free permutation importance of the same model",
        ["feature", "AUC drop"],
        baseline_rows,
    )
    correlations = [row[1] for row in rows]
    # estimation converges: the largest sample matches the true SCM well
    assert correlations[-1] > 0.95
    assert correlations[-1] >= correlations[0] - 0.05
