"""Relations: named collections of provenance-carrying rows."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping, Sequence

from xaidb.db.provenance import Provenance
from xaidb.exceptions import SchemaError

__all__ = ["Row", "Relation"]


@dataclass(frozen=True)
class Row:
    """One tuple: an immutable value mapping plus its provenance."""

    values: tuple[tuple[str, Any], ...]
    provenance: Provenance

    @classmethod
    def make(
        cls, values: Mapping[str, Any], provenance: Provenance
    ) -> "Row":
        return cls(tuple(sorted(values.items())), provenance)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.values)

    def __getitem__(self, column: str) -> Any:
        for name, value in self.values:
            if name == column:
                return value
        raise SchemaError(f"row has no column {column!r}")

    def value_key(self) -> tuple:
        """Hashable key over values only (ignoring provenance), used for
        duplicate elimination."""
        return self.values


@dataclass
class Relation:
    """A named relation over a fixed set of columns.

    Base relations give every row an atomic provenance token
    ``"<name>:<i>"`` (or caller-provided ids); derived relations carry
    whatever the algebra computed.
    """

    name: str
    columns: list[str]
    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in {self.columns}")
        for row in self.rows:
            self._check_row(row)

    def _check_row(self, row: Row) -> None:
        names = [name for name, __ in row.values]
        if sorted(names) != sorted(self.columns):
            raise SchemaError(
                f"row columns {sorted(names)} do not match relation "
                f"columns {sorted(self.columns)}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        name: str,
        records: Sequence[Mapping[str, Any]],
        *,
        tuple_ids: Sequence[Hashable] | None = None,
    ) -> "Relation":
        """Build a base relation; each record becomes a row with an atomic
        provenance token."""
        if not records:
            raise SchemaError("cannot infer schema from zero records")
        columns = sorted(records[0].keys())
        if tuple_ids is not None and len(tuple_ids) != len(records):
            raise SchemaError("tuple_ids length must match records")
        rows = []
        for i, record in enumerate(records):
            if sorted(record.keys()) != columns:
                raise SchemaError(f"record {i} has inconsistent columns")
            token = tuple_ids[i] if tuple_ids is not None else f"{name}:{i}"
            rows.append(Row.make(record, Provenance.atom(token)))
        return cls(name=name, columns=columns, rows=rows)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_values(self, column: str) -> list[Any]:
        if column not in self.columns:
            raise SchemaError(f"{self.name} has no column {column!r}")
        return [row[column] for row in self.rows]

    def tuple_ids(self) -> list[Hashable]:
        """All base-tuple ids appearing in any row's lineage."""
        seen: set = set()
        ordered: list = []
        for row in self.rows:
            for token in sorted(row.provenance.lineage(), key=str):
                if token not in seen:
                    seen.add(token)
                    ordered.append(token)
        return ordered

    def restrict_to(self, present: Iterable[Hashable]) -> "Relation":
        """The sub-relation of rows derivable from the given base tuples
        (the 'possible world' used by Shapley-of-tuples interventions)."""
        available = frozenset(present)
        kept = [row for row in self.rows if row.provenance.satisfied_by(available)]
        return Relation(name=self.name, columns=list(self.columns), rows=kept)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [row.as_dict() for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name}: {len(self.rows)} rows x {self.columns})"
