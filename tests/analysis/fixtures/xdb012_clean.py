"""Clean fixture for XDB012: the one suppression matches a real
finding and carries its reason."""

__all__ = ["f"]


def f(a, bucket=[]):  # xailint: disable=XDB007 (fixture: shared sentinel)
    return bucket + [a]
