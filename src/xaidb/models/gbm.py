"""Gradient-boosted trees (squared loss regression, logloss classification).

Follows the classic Friedman formulation: stage ``m`` fits a CART
regression tree to the negative gradient of the loss at the current
ensemble output, then each leaf's value is set by a one-step Newton line
search within the leaf.  The per-stage trees, their leaf assignments over
the training data, and the raw-score decomposition are all exposed because

- TreeSHAP sums per-tree attributions (the raw margin is additive), and
- LeafRefit influence (:mod:`xaidb.datavaluation.tree_influence`) removes
  a training point from every leaf it touched and re-derives leaf values.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.base import Classifier, Regressor
from xaidb.models.tree import DecisionTreeRegressor
from xaidb.models.tree_kernels import EnsembleKernel
from xaidb.utils.linalg import sigmoid
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array, check_fitted, check_positive

__all__ = ["GradientBoostedRegressor", "GradientBoostedClassifier"]


class _BoostingMixin:
    def _init_params(
        self, n_estimators, learning_rate, max_depth, min_samples_leaf,
        subsample, random_state,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        check_positive(learning_rate, name="learning_rate")
        if not 0.0 < subsample <= 1.0:
            raise ValidationError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: list[DecisionTreeRegressor] | None = None
        self._stage_kernel: EnsembleKernel | None = None
        self.init_score_: float | None = None
        # per tree: the training-row indices used to fit it (LeafRefit needs
        # to know which rows shaped which leaves)
        self.tree_train_rows_: list[np.ndarray] | None = None

    def _boost(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        negative_gradient,
        leaf_value,
    ) -> None:
        """Generic boosting loop.

        ``negative_gradient(y, raw)`` returns per-row pseudo-residuals and
        ``leaf_value(y_rows, raw_rows)`` the Newton leaf estimate from the
        rows landing in a leaf.
        """
        rng = check_random_state(self.random_state)
        seeds = spawn_seeds(rng, self.n_estimators)
        n = len(y)
        raw = np.full(n, self.init_score_)
        self.trees_ = []
        self._stage_kernel = None  # packs leaf values; rebuilt post-fit
        self.tree_train_rows_ = []
        for seed in seeds:
            stage_rng = check_random_state(seed)
            if self.subsample < 1.0:
                size = max(2, int(round(self.subsample * n)))
                rows = stage_rng.choice(n, size=size, replace=False)
            else:
                rows = np.arange(n)
            residuals = negative_gradient(y, raw)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=seed,
            )
            tree.fit(X[rows], residuals[rows])
            # Newton re-estimate of each leaf from the rows it contains.
            leaves = tree.tree_.apply(X[rows])
            for leaf in np.unique(leaves):
                in_leaf = rows[leaves == leaf]
                tree.tree_.value[leaf, 0] = leaf_value(y[in_leaf], raw[in_leaf])
            raw = raw + self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
            self.tree_train_rows_.append(rows)

    def _kernel(self) -> EnsembleKernel:
        """Stacked stage-tree kernel, packed lazily after fitting (the
        boosting loop rewrites leaf values via the Newton step, so the
        pack must happen once the ensemble is final)."""
        if self._stage_kernel is None:
            self._stage_kernel = EnsembleKernel.for_regressors(
                [tree.tree_ for tree in self.trees_]
            )
        return self._stage_kernel

    def _raw_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["trees_"])
        X = check_array(X, name="X", ndim=2)
        raw = np.full(X.shape[0], self.init_score_)
        self._kernel().accumulate(X, raw, scale=self.learning_rate)
        return raw

    def staged_raw_scores(self, X: np.ndarray) -> np.ndarray:
        """Raw margin after each boosting stage, shape ``(stages+1, n)``.

        Stage 0 is the constant initial score; useful for debugging and for
        early-stopping style analyses in the benchmarks.
        """
        check_fitted(self, ["trees_"])
        X = check_array(X, name="X", ndim=2)
        per_stage = self._kernel().leaf_values(X)  # (stages, n)
        raw = np.full(X.shape[0], self.init_score_)
        stages = [raw.copy()]
        for stage_values in per_stage:
            raw = raw + self.learning_rate * stage_values
            stages.append(raw.copy())
        return np.asarray(stages)


class GradientBoostedRegressor(_BoostingMixin, Regressor):
    """Gradient boosting with squared loss."""

    def __init__(
        self,
        *,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int | None = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: RandomState = None,
    ) -> None:
        self._init_params(
            n_estimators, learning_rate, max_depth, min_samples_leaf,
            subsample, random_state,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedRegressor":
        X, y = self._validate_fit_args(X, y)
        self.init_score_ = float(np.mean(y))
        self._boost(
            X,
            y,
            negative_gradient=lambda y_true, raw: y_true - raw,
            leaf_value=lambda y_rows, raw_rows: float(np.mean(y_rows - raw_rows)),
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._raw_scores(X)


class GradientBoostedClassifier(_BoostingMixin, Classifier):
    """Binary gradient boosting with logistic loss.

    The raw score is the log-odds margin; ``predict_proba`` applies the
    sigmoid.  Leaf values use the standard one-step Newton estimate
    ``sum(residual) / sum(p(1-p))``.
    """

    def __init__(
        self,
        *,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int | None = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: RandomState = None,
    ) -> None:
        self._init_params(
            n_estimators, learning_rate, max_depth, min_samples_leaf,
            subsample, random_state,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedClassifier":
        X, y = self._validate_fit_args(X, y)
        y_index = self._encode_labels(y).astype(float)
        if len(self.classes_) != 2:
            raise ValidationError(
                f"GradientBoostedClassifier is binary; got "
                f"{len(self.classes_)} classes"
            )
        positive_rate = float(np.clip(np.mean(y_index), 1e-6, 1.0 - 1e-6))
        self.init_score_ = float(np.log(positive_rate / (1.0 - positive_rate)))

        def leaf_value(y_rows: np.ndarray, raw_rows: np.ndarray) -> float:
            probabilities = sigmoid(raw_rows)
            numerator = float(np.sum(y_rows - probabilities))
            denominator = float(
                np.sum(probabilities * (1.0 - probabilities))
            )
            if denominator < 1e-12:
                return 0.0
            return numerator / denominator

        self._boost(
            X,
            y_index,
            negative_gradient=lambda y_true, raw: y_true - sigmoid(raw),
            leaf_value=leaf_value,
        )
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw log-odds margin."""
        return self._raw_scores(X)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = sigmoid(self._raw_scores(X))
        return np.column_stack([1.0 - positive, positive])
