"""Dirty fixture for XDB015: float64 attribution values degraded on
their way to an explain* return, across a call boundary."""

import numpy as np

__all__ = ["scores_for", "counts_for", "Explainer"]


def scores_for(X):
    return np.zeros((8,), dtype=np.float64)  # summary: float64[8]


def counts_for(X):
    return np.ones((8,), dtype=np.int64)  # summary: int64[8]


class Explainer:
    def explain(self, X):
        att = scores_for(X)
        att = att.astype(np.float32)  # finding 1: narrows float64
        return att

    def explain_ratio(self, X):
        hits = counts_for(X)
        total = counts_for(X)
        ratio = hits / total  # finding 2: int/int true division
        return ratio
