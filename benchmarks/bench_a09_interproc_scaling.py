"""A9 (ablation) — interprocedural summary-cache scaling (docs/LINTING.md).

Reproduced shape: the interprocedural tier (XDB014-XDB017) adds a
project-wide call graph plus bottom-up function summaries — three
fixpoint analyses per function over the whole corpus — which would make
every warm scan pay the cold price the moment one file changes (the
corpus digest shields only the *unchanged* case).  The per-SCC Merkle
cache must confine that cost to the SCCs reachable from the edit:

1. *summary hit rate*: after touching one file, >= 80 % of the call
   graph's SCCs serve their summaries from ``.xailint_cache.json``
   (here: all but the touched file's own SCCs);
2. *speedup*: the touched-file warm scan is >= 3x faster than the cold
   scan, and the fully-unchanged warm scan is served wholesale from the
   corpus digest without rebuilding the analysis at all;
3. *soundness*: the warm scan is finding-for-finding identical to a
   cache-bypassed scan of the same corpus — summaries can never change
   a verdict, only its cost.

The corpus is a copy of the repo's own scan set so the benchmark can
touch a file without dirtying the working tree.
"""

import shutil
import time

from pathlib import Path

from benchmarks._tables import print_table
from xaidb.analysis import run_paths

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The repo-standard scan set (mirrors tools/xailint.py defaults).
SCAN_NAMES = ("src", "benchmarks", "examples", "tools")

#: The file the warm scenario edits: a leaf module (nothing in the
#: corpus calls into it), so only its own SCCs should recompute.
TOUCHED = Path("tools") / "check.py"


def _fingerprint(result):
    return [
        (f.path, f.line, f.col, f.rule_id, f.message)
        for f in result.findings + result.suppressed
    ]


def _copy_corpus(destination: Path) -> list[Path]:
    paths = []
    for name in SCAN_NAMES:
        source = REPO_ROOT / name
        if not source.is_dir():
            continue
        shutil.copytree(
            source,
            destination / name,
            ignore=shutil.ignore_patterns("__pycache__"),
        )
        paths.append(destination / name)
    return paths


def _timed_scan(paths, root, cache_path):
    started = time.perf_counter()
    result = run_paths(paths, root=root, cache_path=cache_path)
    return result, time.perf_counter() - started


def compute_rows(corpus_root: Path):
    paths = _copy_corpus(corpus_root)
    cache_path = corpus_root / ".xailint_cache.json"

    cold, cold_seconds = _timed_scan(paths, corpus_root, cache_path)
    unchanged, unchanged_seconds = _timed_scan(
        paths, corpus_root, cache_path
    )
    touched = corpus_root / TOUCHED
    touched.write_text(
        touched.read_text(encoding="utf-8") + "\n# a9 touch\n",
        encoding="utf-8",
    )
    warm, warm_seconds = _timed_scan(paths, corpus_root, cache_path)
    uncached, _ = _timed_scan(paths, corpus_root, None)
    speedup = cold_seconds / warm_seconds

    total_sccs = warm.stats.summary_hits + warm.stats.summary_misses
    rows = [
        (
            "cold (empty cache)",
            cold.stats.summary_misses,
            "0%",
            f"{cold_seconds * 1e3:.1f}",
            "1.0x",
        ),
        (
            "warm (unchanged)",
            0,
            "- (corpus digest)",
            f"{unchanged_seconds * 1e3:.1f}",
            f"{cold_seconds / unchanged_seconds:.0f}x",
        ),
        (
            f"warm ({TOUCHED} touched)",
            warm.stats.summary_misses,
            f"{warm.stats.summary_hit_rate:.1%}",
            f"{warm_seconds * 1e3:.1f}",
            f"{speedup:.1f}x",
        ),
    ]
    context = {
        "cold": cold,
        "unchanged": unchanged,
        "warm": warm,
        "uncached": uncached,
        "speedup": speedup,
        "total_sccs": total_sccs,
    }
    return rows, context


def test_a09_interproc_scaling(benchmark, tmp_path):
    rows, context = benchmark.pedantic(
        compute_rows,
        args=(tmp_path / "corpus",),
        rounds=1,
        iterations=1,
    )
    print_table(
        "A9 (ablation): interprocedural summary caching — cold vs warm "
        "scan with one file touched (per-SCC Merkle cache)",
        ["scan", "sccs recomputed", "summary hit rate", "wall ms",
         "speedup"],
        rows,
    )
    cold, warm = context["cold"], context["warm"]
    unchanged = context["unchanged"]
    # an unchanged corpus never rebuilds the analysis at all
    assert unchanged.stats.project_from_cache
    assert unchanged.stats.summary_misses == 0
    # one touched leaf file: only its own SCCs recompute
    assert warm.stats.summary_hit_rate >= 0.8
    assert 0 < warm.stats.summary_misses < context["total_sccs"]
    # the warm latency target the tier was designed against
    assert context["speedup"] >= 3.0
    # soundness: summaries can never change a verdict
    assert _fingerprint(unchanged) == _fingerprint(cold)
    assert _fingerprint(warm) == _fingerprint(context["uncached"])
    # the gate this benchmark models is currently green
    assert cold.ok, [f.message for f in cold.findings]
