"""Evaluation accounting for the shared runtime.

Every perturbation-based explainer ultimately spends its budget on model
evaluations (the tutorial's central cost claim); :class:`EvalStats` is the
one ledger they all write to, so benchmarks and serving layers can compare
methods by *work done* rather than wall-clock alone.  Explainers attach
``stats.as_metadata()`` to their :class:`~xaidb.explainers.base.
FeatureAttribution` so ``n_model_evals``, ``cache_hit_rate`` and
``wall_time_s`` travel with every explanation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

__all__ = ["EvalStats"]

# Structural twin of ``xaidb.explainers.base.PredictFn`` — re-declared
# here because the runtime layer sits *below* the explainers package
# (explainers import the runtime, never the reverse).
_PredictFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class EvalStats:
    """Counters for one explanation run (or one shared runtime).

    Attributes
    ----------
    n_model_evals:
        Total *rows* scored by the model function.  This is the unit the
        tutorial's cost analysis is written in: one perturbed input, one
        forward pass.
    n_coalition_evals:
        Coalition values actually computed (cache misses that reached the
        game's value function).
    cache_hits / cache_misses:
        Memo-cache outcomes, over both scalar and batch lookups.
    wall_time_s:
        Seconds accumulated inside :meth:`timer` blocks.  Nested blocks
        on the *same* ledger count the outermost span only, so an outer
        ``explain_batch`` timer wrapped around inner per-explanation
        timed sections never double-counts wall time (which would
        inflate the denominator of :attr:`rows_per_s`).
    cache_evictions:
        Entries dropped from a bounded :class:`~xaidb.runtime.cache.
        CoalitionCache` to stay within ``max_entries`` — nonzero means
        the working set no longer fits and hit rates are paying for it.
    n_pool_reuses:
        Pooled ``parallel_map`` calls served by already-warm workers of
        the persistent :class:`~xaidb.runtime.parallel.WorkerPool`
        (each one is a process-pool spawn the run did not pay for).
    n_serial_fallbacks:
        ``parallel_map`` calls that could not cross the process
        boundary (unpicklable work, dead workers) and ran serially
        instead.  Results are identical either way; a nonzero count on
        a hot path means the requested parallelism silently bought
        nothing.
    """

    n_model_evals: int = 0
    n_coalition_evals: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    wall_time_s: float = 0.0
    n_pool_reuses: int = 0
    n_serial_fallbacks: int = 0
    extra: dict[str, Any] = field(default_factory=dict)
    #: Live :meth:`timer` nesting depth — bookkeeping, not a counter
    #: (never copied, compared or merged).
    _timer_depth: int = field(
        default=0, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of coalition lookups served from the memo cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def rows_per_s(self) -> float:
        """Model-evaluation throughput over the timed blocks — the
        hardware-utilisation number benchmark A10 tracks."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.n_model_evals / self.wall_time_s

    def count_rows(self, n_rows: int) -> None:
        self.n_model_evals += int(n_rows)

    def wrap_predict_fn(self, predict_fn: _PredictFn) -> _PredictFn:
        """Wrap ``predict_fn`` so every scored row is counted here.

        Instrumentation is *idempotent*: wrapping a function that is
        already a counting wrapper (its own, or another ledger's)
        replaces that wrapper instead of stacking a second one — a
        dispatcher that re-instruments a long-lived game on every
        request must not multiply ``n_model_evals`` by the number of
        times the game has been wrapped.  The original callable is kept
        on the wrapper as :attr:`__wrapped__`.
        """
        predict_fn = getattr(predict_fn, "__wrapped__", predict_fn)

        def counted(X: np.ndarray) -> np.ndarray:
            X = np.asarray(X)
            self.count_rows(X.shape[0] if X.ndim > 1 else 1)
            return predict_fn(X)

        counted.__wrapped__ = predict_fn
        return counted

    @contextmanager
    def timer(self) -> Iterator["EvalStats"]:
        """Accumulate the wall-time of the enclosed block.

        Re-entrancy-safe: when timer blocks on the same ledger nest
        (an outer batch timer around inner per-call timed sections),
        only the outermost block adds to :attr:`wall_time_s`.
        """
        start = time.perf_counter()
        self._timer_depth += 1
        try:
            yield self
        finally:
            self._timer_depth -= 1
            if self._timer_depth == 0:
                self.wall_time_s += time.perf_counter() - start

    # ------------------------------------------------------------------
    def copy(self) -> "EvalStats":
        """Counter snapshot (``extra`` is shallow-copied)."""
        return EvalStats(
            n_model_evals=self.n_model_evals,
            n_coalition_evals=self.n_coalition_evals,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_evictions=self.cache_evictions,
            wall_time_s=self.wall_time_s,
            n_pool_reuses=self.n_pool_reuses,
            n_serial_fallbacks=self.n_serial_fallbacks,
            extra=dict(self.extra),
        )

    def since(self, earlier: "EvalStats") -> "EvalStats":
        """Counters accumulated after the ``earlier`` snapshot — how a
        shared runtime attributes work to one explanation call.

        ``extra`` travels with the delta, like :meth:`copy`: numeric
        values that exist in both snapshots are differenced; everything
        else (labels, configs, keys added after the snapshot) keeps the
        current value.  Dropping the dict here silently stripped
        per-explanation metadata attribution.
        """
        extra: dict[str, Any] = {}
        for key, value in self.extra.items():
            prior = earlier.extra.get(key)
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and isinstance(prior, (int, float))
                and not isinstance(prior, bool)
            ):
                extra[key] = value - prior
            else:
                extra[key] = value
        return EvalStats(
            n_model_evals=self.n_model_evals - earlier.n_model_evals,
            n_coalition_evals=(
                self.n_coalition_evals - earlier.n_coalition_evals
            ),
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            cache_evictions=self.cache_evictions - earlier.cache_evictions,
            wall_time_s=self.wall_time_s - earlier.wall_time_s,
            n_pool_reuses=self.n_pool_reuses - earlier.n_pool_reuses,
            n_serial_fallbacks=(
                self.n_serial_fallbacks - earlier.n_serial_fallbacks
            ),
            extra=extra,
        )

    def merge(self, other: "EvalStats") -> "EvalStats":
        """Fold another ledger into this one (e.g. per-worker stats).

        ``extra`` folds too: numeric values shared by both ledgers add,
        anything else takes ``other``'s value — the same convention
        :meth:`since` inverts.
        """
        self.n_model_evals += other.n_model_evals
        self.n_coalition_evals += other.n_coalition_evals
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.wall_time_s += other.wall_time_s
        self.n_pool_reuses += other.n_pool_reuses
        self.n_serial_fallbacks += other.n_serial_fallbacks
        for key, value in other.extra.items():
            mine = self.extra.get(key)
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and isinstance(mine, (int, float))
                and not isinstance(mine, bool)
            ):
                self.extra[key] = mine + value
            else:
                self.extra[key] = value
        return self

    def as_metadata(self) -> dict[str, Any]:
        """The counter block explainers splice into attribution metadata."""
        return {
            "n_model_evals": int(self.n_model_evals),
            "cache_hit_rate": float(self.cache_hit_rate),
            "cache_evictions": int(self.cache_evictions),
            "wall_time_s": float(self.wall_time_s),
            "rows_per_s": float(self.rows_per_s),
            "n_pool_reuses": int(self.n_pool_reuses),
            "n_serial_fallbacks": int(self.n_serial_fallbacks),
        }
