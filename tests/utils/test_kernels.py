import numpy as np
import pytest

from xaidb.utils.kernels import exponential_kernel, pairwise_distances


class TestPairwiseDistances:
    def test_euclidean_known_values(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(a)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 0] == pytest.approx(0.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(10, 3))
        d = pairwise_distances(a)
        assert np.allclose(d, d.T, atol=1e-12)

    def test_sqeuclidean_is_square(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(5, 2))
        b = rng.normal(size=(4, 2))
        assert np.allclose(
            pairwise_distances(a, b, metric="sqeuclidean"),
            pairwise_distances(a, b) ** 2,
        )

    def test_manhattan(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, -2.0]])
        assert pairwise_distances(a, b, metric="manhattan")[0, 0] == pytest.approx(3.0)

    def test_hamming(self):
        a = np.array([[1.0, 0.0, 1.0, 1.0]])
        b = np.array([[1.0, 1.0, 0.0, 1.0]])
        assert pairwise_distances(a, b, metric="hamming")[0, 0] == pytest.approx(0.5)

    def test_cosine_orthogonal(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert pairwise_distances(a, b, metric="cosine")[0, 0] == pytest.approx(1.0)

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError, match="same number of columns"):
            pairwise_distances(np.ones((2, 2)), np.ones((2, 3)))

    def test_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            pairwise_distances(np.ones((2, 2)), metric="minkowski99")


class TestExponentialKernel:
    def test_zero_distance_gives_one(self):
        assert exponential_kernel(np.zeros(3), 1.0)[0] == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = exponential_kernel(np.array([0.0, 1.0, 2.0]), 1.0)
        assert w[0] > w[1] > w[2]

    def test_width_scaling(self):
        narrow = exponential_kernel(np.array([1.0]), 0.5)
        wide = exponential_kernel(np.array([1.0]), 2.0)
        assert narrow < wide

    def test_requires_positive_width(self):
        from xaidb.exceptions import ValidationError

        with pytest.raises(ValidationError):
            exponential_kernel(np.array([1.0]), 0.0)
