import numpy as np
import pytest

from xaidb.exceptions import NotFittedError, ValidationError
from xaidb.models import (
    LogisticRegression,
    RandomForestClassifier,
    StandardScaler,
    clone,
    train_test_split,
)


class TestStandardScaler:
    def test_transform_standardises(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(500, 2))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column_not_divided(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_column_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 2)))
        with pytest.raises(ValidationError):
            scaler.transform(np.ones((5, 3)))


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = np.ones((100, 2)), np.zeros(100)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_fraction=0.2, random_state=0)
        assert len(X_te) == 20
        assert len(X_tr) == 80
        assert len(y_tr) == 80

    def test_partition_is_exact(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.arange(20, dtype=float)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, random_state=1)
        combined = sorted(np.concatenate([y_tr, y_te]).tolist())
        assert combined == list(range(20))

    def test_rows_stay_aligned(self):
        X = np.arange(30, dtype=float).reshape(-1, 1)
        y = np.arange(30, dtype=float)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, random_state=2)
        assert np.array_equal(X_tr[:, 0], y_tr)
        assert np.array_equal(X_te[:, 0], y_te)

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            train_test_split(np.ones((4, 1)), np.ones(4), test_fraction=0.0)


class TestClone:
    def test_clone_copies_hyperparameters(self):
        model = RandomForestClassifier(n_estimators=7, max_depth=3, random_state=5)
        copy = clone(model)
        assert copy.n_estimators == 7
        assert copy.max_depth == 3
        assert copy.random_state == 5

    def test_clone_is_unfitted(self, income):
        model = LogisticRegression().fit(income.dataset.X, income.dataset.y)
        copy = clone(model)
        assert copy.coef_ is None

    def test_clone_refits_identically(self, income):
        model = LogisticRegression(l2=0.5).fit(income.dataset.X, income.dataset.y)
        refit = clone(model).fit(income.dataset.X, income.dataset.y)
        assert np.allclose(model.coef_, refit.coef_)
