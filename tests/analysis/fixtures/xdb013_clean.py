"""Clean fixture for XDB013: every store is observable on some path."""

__all__ = ["loop_carried", "branch_use", "underscore_slot", "closure"]


def loop_carried(xs):
    total = 0.0
    for x in xs:
        total += x  # read on the next iteration and after the loop
    return total


def branch_use(a):
    x = a * a  # read on the not-taken branch
    if a > 0:
        x = 1.0
    return x


def underscore_slot(pairs):
    total = 0.0
    for pair in pairs:
        lo, _hi = pair[0], pair[1]  # sanctioned unused-slot spelling
        total += lo
    return total


def closure(a):
    captured = a + 1  # read inside the nested scope

    def inner():
        return captured

    return inner
