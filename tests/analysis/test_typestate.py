"""The pass F typestate machinery: the label-set lattice obeys the
laws the fixpoint solver assumes (property-tested with hypothesis),
structural protocol matching finds exactly the lifecycle classes, and
the per-function facts stay silent the moment a proof has a hole
(may-join, escape)."""

from __future__ import annotations

import ast
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from xaidb.analysis.registry import FileContext, ProjectContext
from xaidb.analysis.typestate import (
    ESCAPED,
    PROTOCOL_BY_NAME,
    PROTOCOLS,
    join_states,
    parse_label,
    protocol_index,
    state_label,
    step_label,
    step_states,
)

# ---------------------------------------------------------------------------
# lattice laws
# ---------------------------------------------------------------------------

_ALL_LABELS = sorted(
    state_label(proto.name, s_in, s_cur)
    for proto in PROTOCOLS
    for s_in in proto.states
    for s_cur in (*proto.states, ESCAPED)
)
_ALL_METHODS = sorted(
    {method for proto in PROTOCOLS for method in proto.alphabet}
    | {"unknown_method", "tolist"}
)

labels = st.frozensets(st.sampled_from(_ALL_LABELS), max_size=8)
methods = st.sampled_from(_ALL_METHODS)


@settings(max_examples=300)
@given(a=labels, b=labels)
def test_join_is_commutative(a, b):
    assert join_states(a, b) == join_states(b, a)


@settings(max_examples=300)
@given(a=labels, b=labels, c=labels)
def test_join_is_associative(a, b, c):
    assert join_states(join_states(a, b), c) == join_states(
        a, join_states(b, c)
    )


@settings(max_examples=300)
@given(a=labels)
def test_join_is_idempotent(a):
    assert join_states(a, a) == a


@settings(max_examples=300)
@given(a=labels, b=labels, method=methods)
def test_transfer_is_monotone(a, b, method):
    """a ⊆ b implies step(a) ⊆ step(b) — the precondition for the
    fixpoint solver to terminate on the right answer."""
    small, large = a, join_states(a, b)
    assert step_states(small, method) <= step_states(large, method)


@settings(max_examples=300)
@given(a=labels, b=labels, method=methods)
def test_transfer_distributes_over_join(a, b, method):
    """The transfer is a join-morphism, so solving with merged inputs
    equals merging the solved outputs (no precision lost at joins)."""
    assert step_states(join_states(a, b), method) == join_states(
        step_states(a, method), step_states(b, method)
    )


@settings(max_examples=300)
@given(label=st.sampled_from(_ALL_LABELS), method=methods)
def test_step_refutes_escapes_or_stays_in_the_protocol(label, method):
    proto_name, s_in, s_cur = parse_label(label)
    proto = PROTOCOL_BY_NAME[proto_name]
    stepped = step_label(label, method)
    if s_cur == ESCAPED:
        assert stepped == label  # escape is absorbing
    elif method not in proto.alphabet:
        assert stepped is None  # out-of-alphabet call refutes
    else:
        out_proto, out_in, out_cur = parse_label(stepped)
        assert (out_proto, out_in) == (proto_name, s_in)
        assert out_cur in proto.states


def test_step_follows_the_transition_table_or_self_loops():
    fit = step_label(state_label("estimator", "unfitted", "unfitted"), "fit")
    assert fit == state_label("estimator", "unfitted", "fitted")
    # predict has no transition entry: the automaton self-loops
    stay = step_label(
        state_label("estimator", "unfitted", "unfitted"), "predict"
    )
    assert stay == state_label("estimator", "unfitted", "unfitted")


# ---------------------------------------------------------------------------
# structural matching + proof holes
# ---------------------------------------------------------------------------


def _interproc(source: str):
    ctx = FileContext(
        path=Path("module.py"),
        relpath="module.py",
        source=source,
        tree=ast.parse(source),
        in_xaidb_package=True,
        module_name="xaidb.fx",
    )
    return ProjectContext(files=[ctx]).interproc()


_POOLISH = '''
class Pool:
    def map(self, fn, chunks):
        return [fn(c) for c in chunks]
    def share(self, a):
        return a
    def close(self):
        pass

class NotAPool:
    def map(self, fn, chunks):
        return [fn(c) for c in chunks]
'''


def test_protocol_index_matches_structurally():
    index = protocol_index(_interproc(_POOLISH).graph)
    matched = index.protocols_for_class("xaidb.fx.Pool")
    assert [p.name for p in matched] == ["pool"]
    # close() is required: map alone is any container type
    assert not index.protocols_for_class("xaidb.fx.NotAPool")


def test_protocol_index_sees_inherited_methods():
    source = _POOLISH + (
        "class SubPool(Pool):\n"
        "    def warm(self):\n"
        "        return 1\n"
    )
    index = protocol_index(_interproc(source).graph)
    matched = index.protocols_for_class("xaidb.fx.SubPool")
    assert [p.name for p in matched] == ["pool"]


_ESTIMATOR = '''
class Model:
    def fit(self, X, y):
        return self
    def predict(self, X):
        return X
'''


def _violations(source: str, qualname: str):
    interproc = _interproc(_ESTIMATOR + source)
    cfg, problem, in_states = interproc.solution("typestate", qualname)
    return problem.facts(cfg, in_states).violations


def test_may_join_keeps_the_rule_silent():
    # one branch fits: the use is not provably-unfitted any more
    violations = _violations(
        "def maybe(X, y, flag):\n"
        "    model = Model()\n"
        "    if flag:\n"
        "        model.fit(X, y)\n"
        "    return model.predict(X)\n",
        "xaidb.fx.maybe",
    )
    assert violations == []


def test_escape_poisons_the_proof():
    # the object reaches unknown code that may fit it for us
    violations = _violations(
        "def escaped(X, register):\n"
        "    model = Model()\n"
        "    register(model)\n"
        "    return model.predict(X)\n",
        "xaidb.fx.escaped",
    )
    assert violations == []


def test_straight_line_misuse_is_provable():
    violations = _violations(
        "def broken(X):\n"
        "    model = Model()\n"
        "    return model.predict(X)\n",
        "xaidb.fx.broken",
    )
    assert [(v.kind, v.method) for v in violations] == [
        ("before", "predict")
    ]
    assert violations[0].states == ("unfitted",)
