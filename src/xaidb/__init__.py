"""xaidb — an explainable-AI toolkit with a data-management lens.

This package reproduces the system landscape of the SIGMOD/ICDE 2022
tutorial *"Explainable AI: Foundations, Applications, Opportunities for
Data Management Research"* (Pradhan, Lahiri, Galhotra, Salimi).  It
implements, from scratch on top of numpy/scipy/networkx:

- ``xaidb.models`` — the ML substrate (linear/logistic regression, CART
  trees, random forests, gradient boosting, k-NN, naive Bayes, a small MLP);
- ``xaidb.data`` — tabular datasets, synthetic workload generators with
  ground-truth structural causal models, and perturbation samplers;
- ``xaidb.causal`` — causal graphs and structural causal models with
  interventions and counterfactual inference;
- ``xaidb.explainers`` — feature-based explanations: LIME, surrogates,
  exact/sampled/Kernel/Tree SHAP, QII, asymmetric & causal Shapley values,
  Shapley flow, counterfactual explanations (DiCE-style, GeCo-style,
  LEWIS-style) and algorithmic recourse;
- ``xaidb.rules`` — rule-based explanations: Anchors, interpretable
  decision sets, Apriori/FP-Growth, logic-based sufficient reasons;
- ``xaidb.datavaluation`` — training-data-based explanations: leave-one-out,
  Data Shapley, KNN-Shapley, distributional Shapley, influence functions
  (first- and second-order), GBDT influence;
- ``xaidb.db`` — a mini relational engine with why-provenance, Shapley
  values of tuples in query answering, responsibility-based query
  explanations and complaint-driven training-data debugging;
- ``xaidb.pipelines`` — provenance-tracked ML pipelines and stage-level
  error attribution;
- ``xaidb.incremental`` — provenance-based incremental model updates
  (PrIU-style) and low-latency machine unlearning (HedgeCut-style);
- ``xaidb.attacks`` — adversarial scaffolding attacks on post-hoc
  explainers;
- ``xaidb.evaluation`` — faithfulness, fidelity, stability, robustness and
  sanity-check metrics for explanations;
- ``xaidb.runtime`` — the shared evaluation substrate: batch-aware
  coalition/value memoisation, bounded-memory chunked evaluation and an
  opt-in deterministic process-pool map, with per-explanation evaluation
  accounting (see ``docs/RUNTIME.md``).
"""

from xaidb._version import __version__
from xaidb.exceptions import (
    ConvergenceError,
    InfeasibleError,
    NotFittedError,
    ProvenanceError,
    SchemaError,
    ValidationError,
    XaidbError,
)

__all__ = [
    "__version__",
    "XaidbError",
    "ValidationError",
    "NotFittedError",
    "ConvergenceError",
    "InfeasibleError",
    "SchemaError",
    "ProvenanceError",
]
