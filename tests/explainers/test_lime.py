import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import LimeExplainer, predict_positive_proba


class TestLimeExplainer:
    def test_deterministic_with_seed(self, income, income_logistic):
        lime = LimeExplainer(income.dataset, n_samples=300)
        f = predict_positive_proba(income_logistic)
        a = lime.explain(f, income.dataset.X[0], random_state=0)
        b = lime.explain(f, income.dataset.X[0], random_state=0)
        assert np.allclose(a.values, b.values)

    def test_recovers_important_features_of_linear_model(self, income, income_logistic):
        """On a logistic model, LIME's top features should be the model's
        own largest |coefficient| features (scales are standardised)."""
        lime = LimeExplainer(income.dataset, n_samples=2000)
        f = predict_positive_proba(income_logistic)
        att = lime.explain(f, income.dataset.X[3], random_state=1)
        model_top = set(
            np.asarray(income.dataset.feature_names)[
                np.argsort(-np.abs(income_logistic.coef_))[:3]
            ]
        )
        lime_top = {name for name, __ in att.top(3)}
        assert len(model_top & lime_top) >= 2

    def test_dummy_feature_gets_small_weight(self, income, income_logistic):
        lime = LimeExplainer(income.dataset, n_samples=2000)
        f = predict_positive_proba(income_logistic)
        att = lime.explain(f, income.dataset.X[5], random_state=2)
        values = att.as_dict()
        strongest = max(abs(v) for v in values.values())
        assert abs(values["random_noise"]) < 0.5 * strongest

    def test_score_reported_and_high_for_smooth_model(self, income, income_logistic):
        lime = LimeExplainer(income.dataset, n_samples=1000)
        f = predict_positive_proba(income_logistic)
        att = lime.explain(f, income.dataset.X[0], random_state=3)
        assert 0.0 <= att.metadata["score"] <= 1.0
        assert att.metadata["score"] > 0.2

    def test_feature_selection_limits_nonzero(self, income, income_logistic):
        lime = LimeExplainer(income.dataset, n_samples=500, n_features_to_show=2)
        f = predict_positive_proba(income_logistic)
        att = lime.explain(f, income.dataset.X[0], random_state=4)
        assert int(np.sum(att.values != 0)) <= 2
        assert len(att.metadata["selected_features"]) == 2

    def test_prediction_recorded(self, income, income_logistic):
        lime = LimeExplainer(income.dataset, n_samples=300)
        f = predict_positive_proba(income_logistic)
        x = income.dataset.X[7]
        att = lime.explain(f, x, random_state=5)
        assert att.prediction == pytest.approx(float(f(x[None, :])[0]))

    def test_default_kernel_width(self, income):
        lime = LimeExplainer(income.dataset)
        assert lime.kernel_width == pytest.approx(
            0.75 * np.sqrt(income.dataset.n_features)
        )

    def test_rejects_tiny_sample_budget(self, income):
        with pytest.raises(ValidationError):
            LimeExplainer(income.dataset, n_samples=5)

    def test_rejects_bad_predict_fn(self, income):
        lime = LimeExplainer(income.dataset, n_samples=100)
        with pytest.raises(ValidationError, match="one scalar per row"):
            lime.explain(
                lambda X: np.zeros((len(X), 2)), income.dataset.X[0]
            )

    def test_more_samples_more_stable(self, income, income_logistic):
        """The E2 phenomenon in miniature: across seeds, attributions with
        a large sample budget vary less than with a small one."""
        f = predict_positive_proba(income_logistic)
        x = income.dataset.X[0]

        def spread(n_samples):
            lime = LimeExplainer(income.dataset, n_samples=n_samples)
            runs = np.vstack(
                [lime.explain(f, x, random_state=s).values for s in range(5)]
            )
            return float(runs.std(axis=0).mean())

        assert spread(2000) < spread(100)
