"""Property-based tests of the Shapley machinery: for random games, the
exact enumerator must satisfy all four Shapley axioms, and the other
estimators must agree with it."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from xaidb.explainers.shapley import exact_shapley_values
from xaidb.explainers.shapley.games import CachedGame, FunctionGame
from xaidb.utils.combinatorics import all_subsets


def random_game(n_players: int, seed: int) -> FunctionGame:
    """A random TU game with v(∅)=0, tabulated over all coalitions."""
    rng = np.random.default_rng(seed)
    table = {
        frozenset(subset): float(rng.normal())
        for subset in all_subsets(range(n_players))
    }
    table[frozenset()] = 0.0
    return FunctionGame(n_players, lambda s: table[frozenset(s)])


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 5), seed=st.integers(0, 10_000))
def test_efficiency_axiom(n, seed):
    game = random_game(n, seed)
    phi = exact_shapley_values(game)
    assert np.isclose(phi.sum(), game.grand_value() - game.empty_value())


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 5), seed=st.integers(0, 10_000))
def test_additivity_axiom(n, seed):
    """phi(v + w) = phi(v) + phi(w)."""
    game_v = random_game(n, seed)
    game_w = random_game(n, seed + 1)
    combined = FunctionGame(
        n, lambda s: game_v.value(s) + game_w.value(s)
    )
    assert np.allclose(
        exact_shapley_values(combined),
        exact_shapley_values(game_v) + exact_shapley_values(game_w),
        atol=1e-10,
    )


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 5), seed=st.integers(0, 10_000))
def test_dummy_axiom(n, seed):
    """Adding a player that contributes nothing yields phi = 0 for it and
    preserves everyone else's value."""
    inner = random_game(n, seed)
    extended = FunctionGame(
        n + 1, lambda s: inner.value([p for p in s if p < n])
    )
    phi = exact_shapley_values(extended)
    assert np.isclose(phi[n], 0.0, atol=1e-12)
    assert np.allclose(phi[:n], exact_shapley_values(inner), atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 5), seed=st.integers(0, 10_000))
def test_symmetry_axiom(n, seed):
    """Make players 0 and 1 interchangeable by symmetrising the value
    function; their Shapley values must then coincide."""
    inner = random_game(n, seed)

    def swap(coalition):
        swapped = set()
        for p in coalition:
            swapped.add({0: 1, 1: 0}.get(p, p))
        return swapped

    symmetric = FunctionGame(
        n, lambda s: (inner.value(s) + inner.value(swap(s))) / 2.0
    )
    phi = exact_shapley_values(symmetric)
    assert np.isclose(phi[0], phi[1], atol=1e-10)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(2, 4), seed=st.integers(0, 1_000))
def test_permutation_sampling_unbiased_in_the_limit(n, seed):
    from xaidb.explainers.shapley import permutation_shapley_values

    game = CachedGame(random_game(n, seed))
    exact = exact_shapley_values(game)
    estimate, __ = permutation_shapley_values(game, 3000, random_state=seed)
    assert np.allclose(estimate, exact, atol=0.15)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_kernel_shap_matches_exact_on_random_models(seed):
    """Exhaustive KernelSHAP == exact Shapley on random linear models."""
    from xaidb.explainers.shapley import ExactShapleyExplainer, KernelShapExplainer

    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 6))
    weights = rng.normal(size=d)

    def f(X):
        return X @ weights

    background = rng.normal(size=(8, d))
    x = rng.normal(size=d)
    exact = ExactShapleyExplainer(f, background).explain(x)
    kernel = KernelShapExplainer(f, background).explain(x, random_state=0)
    assert np.allclose(exact.values, kernel.values, atol=1e-6)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1_000))
def test_linear_model_shapley_closed_form(seed):
    """For f(x) = w.x with marginal imputation, phi_i = w_i (x_i - mean of
    background column i) — the textbook closed form."""
    from xaidb.explainers.shapley import ExactShapleyExplainer

    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 6))
    weights = rng.normal(size=d)
    background = rng.normal(size=(10, d))
    x = rng.normal(size=d)
    att = ExactShapleyExplainer(lambda X: X @ weights, background).explain(x)
    closed_form = weights * (x - background.mean(axis=0))
    assert np.allclose(att.values, closed_form, atol=1e-8)
