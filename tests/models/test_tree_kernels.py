"""Exactness contract of the vectorized tree-inference kernels.

The frontier-traversal kernels must be *bitwise* interchangeable with the
retained row-wise reference (``TreeStructure.apply_row`` /
``apply_rowwise``): identical leaf routing on threshold ties, NaN inputs
and single-node trees, and accumulated ensemble outputs identical to the
historical per-tree Python loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from xaidb.models import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    EnsembleKernel,
    GradientBoostedClassifier,
    GradientBoostedRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    TreeKernel,
)
from xaidb.models.tree import TreeStructure
from xaidb.utils.linalg import sigmoid


# ---------------------------------------------------------------- helpers
def _random_structure(
    rng: np.random.Generator, n_features: int, max_depth: int
) -> TreeStructure:
    """A random (possibly degenerate) binary tree built directly, so the
    tests cover shapes the greedy CART builder would never emit —
    including depth-0 single-node trees and repeated thresholds."""
    left: list[int] = []
    right: list[int] = []
    feature: list[int] = []
    threshold: list[float] = []
    value: list[float] = []

    def grow(depth: int) -> int:
        index = len(feature)
        left.append(-1)
        right.append(-1)
        feature.append(-1)
        threshold.append(0.0)
        value.append(float(rng.normal()))
        if depth < max_depth and rng.random() < 0.8:
            feature[index] = int(rng.integers(n_features))
            # draw from a tiny grid so evaluation rows tie exactly
            threshold[index] = float(rng.choice([-0.5, 0.0, 0.25, 1.0]))
            left[index] = grow(depth + 1)
            right[index] = grow(depth + 1)
        return index

    grow(0)
    n_nodes = len(feature)
    return TreeStructure(
        children_left=np.asarray(left, dtype=int),
        children_right=np.asarray(right, dtype=int),
        feature=np.asarray(feature, dtype=int),
        threshold=np.asarray(threshold, dtype=float),
        value=np.asarray(value, dtype=float).reshape(-1, 1),
        n_node_samples=np.ones(n_nodes),
    )


def _adversarial_rows(
    rng: np.random.Generator, tree: TreeStructure, n_features: int
) -> np.ndarray:
    """Random rows plus rows pinned exactly on every split threshold
    (the ``<=`` tie boundary) and rows with NaN entries."""
    X = rng.normal(size=(32, n_features))
    internal = np.flatnonzero(tree.children_left >= 0)
    tie_rows = [
        np.full(n_features, tree.threshold[node]) for node in internal
    ]
    nan_rows = rng.normal(size=(8, n_features))
    nan_rows[rng.random(size=nan_rows.shape) < 0.3] = np.nan
    parts = [X, nan_rows] + ([np.asarray(tie_rows)] if tie_rows else [])
    return np.concatenate(parts)


# ------------------------------------------------- single-tree kernel
@pytest.mark.parametrize("max_depth", list(range(0, 13)))
def test_random_structure_apply_bitwise_matches_rowwise(max_depth):
    rng = np.random.default_rng(100 + max_depth)
    for trial in range(3):
        tree = _random_structure(rng, n_features=4, max_depth=max_depth)
        X = _adversarial_rows(rng, tree, n_features=4)
        assert np.array_equal(tree.apply(X), tree.apply_rowwise(X))


def test_single_node_tree_routes_everything_to_root():
    tree = _random_structure(np.random.default_rng(0), 3, max_depth=0)
    assert tree.node_count == 1
    X = np.asarray([[1.0, 2.0, 3.0], [np.nan, np.nan, np.nan]])
    assert np.array_equal(tree.apply(X), np.zeros(2, dtype=int))
    assert np.array_equal(tree.apply(X), tree.apply_rowwise(X))


def test_nan_rows_route_right_like_reference():
    """``NaN <= t`` is False in both paths, so NaN always goes right."""
    tree = TreeStructure(
        children_left=np.asarray([1, -1, -1]),
        children_right=np.asarray([2, -1, -1]),
        feature=np.asarray([0, -1, -1]),
        threshold=np.asarray([0.5, 0.0, 0.0]),
        value=np.asarray([[0.0], [1.0], [2.0]]),
        n_node_samples=np.asarray([3.0, 2.0, 1.0]),
    )
    X = np.asarray([[np.nan], [0.5], [0.50000000001]])
    leaves = tree.apply(X)
    assert np.array_equal(leaves, [2, 1, 2])  # tie goes left, NaN right
    assert np.array_equal(leaves, tree.apply_rowwise(X))


@pytest.mark.parametrize("max_depth", [1, 3, 6, None])
def test_fitted_trees_apply_matches_rowwise(max_depth):
    rng = np.random.default_rng(7)
    X = rng.normal(size=(120, 5))
    y_reg = X[:, 0] - 2.0 * X[:, 2] + 0.1 * rng.normal(size=120)
    y_clf = (y_reg > 0).astype(int)
    for model in (
        DecisionTreeRegressor(max_depth=max_depth, random_state=0).fit(
            X, y_reg
        ),
        DecisionTreeClassifier(max_depth=max_depth, random_state=0).fit(
            X, y_clf
        ),
    ):
        X_test = _adversarial_rows(rng, model.tree_, 5)
        X_test = X_test[~np.isnan(X_test).any(axis=1)]  # models reject NaN
        assert np.array_equal(
            model.tree_.apply(X_test), model.tree_.apply_rowwise(X_test)
        )


def test_kernel_is_cached_per_structure():
    tree = _random_structure(np.random.default_rng(3), 4, max_depth=4)
    assert tree.kernel is tree.kernel
    assert isinstance(tree.kernel, TreeKernel)


# ------------------------------------------------- stacked ensemble kernel
def test_ensemble_apply_matches_per_tree_kernels():
    rng = np.random.default_rng(11)
    structures = [
        _random_structure(rng, 4, max_depth=depth) for depth in range(0, 8)
    ]
    kernel = EnsembleKernel.for_regressors(structures)
    X = np.concatenate(
        [_adversarial_rows(rng, tree, 4) for tree in structures]
    )
    stacked = kernel.apply(X)
    assert stacked.shape == (len(structures), X.shape[0])
    for t, tree in enumerate(structures):
        local = stacked[t] - kernel.offsets[t]
        assert np.array_equal(local, tree.apply_rowwise(X))
        assert np.array_equal(
            kernel.leaf_values(X)[t], tree.value[local, 0]
        )


def test_forest_classifier_proba_bitwise_matches_per_tree_loop():
    rng = np.random.default_rng(21)
    X = rng.normal(size=(90, 4))
    # rare class 2 so some bootstrap trees miss it and need realignment
    y = (X[:, 0] > 0).astype(int)
    y[:4] = 2
    forest = RandomForestClassifier(
        n_estimators=12, max_depth=4, random_state=5
    ).fit(X, y)
    X_test = rng.normal(size=(40, 4))
    proba = forest.predict_proba(X_test)

    # the historical per-tree realignment loop, over the row-wise oracle
    reference = np.zeros((40, len(forest.classes_)))
    for estimator in forest.estimators_:
        leaves = estimator.tree_.apply_rowwise(X_test)
        codes = np.asarray(estimator.classes_, dtype=int)
        reference[:, codes] += estimator.tree_.value[leaves]
    reference /= len(forest.estimators_)

    assert np.array_equal(proba, reference)
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-12)


def test_forest_regressor_bitwise_matches_per_tree_loop():
    rng = np.random.default_rng(22)
    X = rng.normal(size=(80, 3))
    y = X[:, 0] * X[:, 1] + 0.1 * rng.normal(size=80)
    forest = RandomForestRegressor(
        n_estimators=10, max_depth=5, random_state=6
    ).fit(X, y)
    X_test = rng.normal(size=(30, 3))
    reference = np.zeros(30)
    for estimator in forest.estimators_:
        leaves = estimator.tree_.apply_rowwise(X_test)
        reference += estimator.tree_.value[leaves, 0]
    reference /= len(forest.estimators_)
    assert np.array_equal(forest.predict(X_test), reference)


def test_gbm_regressor_bitwise_matches_stage_loop():
    rng = np.random.default_rng(23)
    X = rng.normal(size=(80, 3))
    y = np.sin(X[:, 0]) + 0.1 * rng.normal(size=80)
    gbm = GradientBoostedRegressor(
        n_estimators=15, max_depth=3, learning_rate=0.1, random_state=7
    ).fit(X, y)
    X_test = rng.normal(size=(30, 3))
    reference = np.full(30, gbm.init_score_)
    for stage in gbm.trees_:
        leaves = stage.tree_.apply_rowwise(X_test)
        reference += gbm.learning_rate * stage.tree_.value[leaves, 0]
    assert np.array_equal(gbm.predict(X_test), reference)


def test_gbm_classifier_bitwise_matches_stage_loop():
    rng = np.random.default_rng(24)
    X = rng.normal(size=(80, 3))
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    gbm = GradientBoostedClassifier(
        n_estimators=12, max_depth=3, learning_rate=0.2, random_state=8
    ).fit(X, y)
    X_test = rng.normal(size=(30, 3))
    reference = np.full(30, gbm.init_score_)
    for stage in gbm.trees_:
        leaves = stage.tree_.apply_rowwise(X_test)
        reference += gbm.learning_rate * stage.tree_.value[leaves, 0]
    proba = gbm.predict_proba(X_test)[:, 1]
    assert np.array_equal(proba, sigmoid(reference))


def test_gbm_refit_resets_stage_kernel():
    """Refitting must rebuild the stacked kernel — stale leaf values
    from the previous fit would silently corrupt predictions."""
    rng = np.random.default_rng(25)
    X = rng.normal(size=(60, 2))
    y1 = X[:, 0]
    y2 = -X[:, 0]
    gbm = GradientBoostedRegressor(
        n_estimators=5, max_depth=2, random_state=9
    )
    first = gbm.fit(X, y1).predict(X)
    second = gbm.fit(X, y2).predict(X)
    assert not np.array_equal(first, second)
    reference = np.full(60, gbm.init_score_)
    for stage in gbm.trees_:
        reference += gbm.learning_rate * stage.tree_.value[
            stage.tree_.apply_rowwise(X), 0
        ]
    assert np.array_equal(second, reference)
