"""Permutation-sampling (Monte-Carlo) Shapley estimation.

The classic unbiased estimator: draw random player orderings, accumulate
each player's marginal contribution when it joins the coalition of its
predecessors.  With antithetic sampling every permutation is paired with
its reverse, which cancels a large share of the variance at no extra
model cost.

Draws are independent given their seeds: each one derives its ordering
from a child seed spawned via :func:`xaidb.utils.rng.spawn_seeds`, so the
estimator is *embarrassingly parallel* — ``n_jobs > 1`` fans draws out
over :func:`xaidb.runtime.parallel_map` and returns bit-identical values
to the serial path (workers trade the cross-permutation memo cache for
wall-clock; the values themselves are deterministic either way).
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, FeatureAttribution, PredictFn
from xaidb.explainers.shapley.games import CachedGame, Game, MarginalImputationGame
from xaidb.runtime import EvalStats, GameRuntime, RuntimeConfig, parallel_map
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array

__all__ = ["permutation_shapley_values", "PermutationShapleyExplainer"]


def _walk(game: Game, order: np.ndarray) -> np.ndarray:
    """Marginal contributions along one player ordering."""
    n = game.n_players
    marginal = np.zeros(n)
    coalition: list[int] = []
    previous = game.value(())
    for player in order:
        coalition.append(int(player))
        current = game.value(coalition)
        marginal[int(player)] = current - previous
        previous = current
    return marginal


def _permutation_draw(
    task: tuple[Game, int, bool],
) -> list[np.ndarray]:
    """One seeded draw (plus its antithetic partner) — the process-pool
    work unit.  All randomness comes from the task's spawned seed."""
    game, seed, antithetic = task
    order = check_random_state(seed).permutation(game.n_players)
    walks = [_walk(game, order)]
    if antithetic:
        walks.append(_walk(game, order[::-1]))
    return walks


def permutation_shapley_values(
    game: Game,
    n_permutations: int = 200,
    *,
    antithetic: bool = True,
    random_state: RandomState = None,
    n_jobs: int | None = None,
    stats: EvalStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo Shapley values.

    Parameters
    ----------
    n_jobs:
        Worker processes for the independent permutation draws
        (``None``/``1`` = serial, sharing one memo cache across draws).
        Parallel and serial return identical values for a fixed
        ``random_state``.
    stats:
        Optional :class:`~xaidb.runtime.EvalStats` ledger; pooled draws
        record warm-pool reuse there (a :class:`~xaidb.runtime.
        GameRuntime` caller passes its own stats, so reuse shows up in
        the attribution metadata).

    Returns
    -------
    (phi, standard_errors):
        Estimated values and their per-player Monte-Carlo standard errors
        (over permutations).
    """
    if n_permutations < 1:
        raise ValidationError("n_permutations must be >= 1")
    cached = game if game.provides_cache else CachedGame(game)
    n = game.n_players
    n_draws = (n_permutations + 1) // 2 if antithetic else n_permutations
    seeds = spawn_seeds(random_state, n_draws)
    draws = parallel_map(
        _permutation_draw,
        [(cached, seed, antithetic) for seed in seeds],
        n_jobs=n_jobs,
        stats=stats,
    )
    contributions = [walk for draw in draws for walk in draw]
    samples = np.asarray(contributions[:n_permutations])
    phi = samples.mean(axis=0)
    if len(samples) > 1:
        errors = samples.std(axis=0, ddof=1) / np.sqrt(len(samples))
    else:
        errors = np.full(n, np.nan)
    return phi, errors


class PermutationShapleyExplainer(Explainer):
    """SHAP values by permutation sampling over the marginal-imputation
    game (the model-agnostic fallback when features are too many for
    exact enumeration and KernelSHAP's regression is unwanted)."""

    def __init__(
        self,
        predict_fn: PredictFn,
        background: np.ndarray,
        *,
        n_permutations: int = 200,
        antithetic: bool = True,
        feature_names: list[str] | None = None,
        config: RuntimeConfig | None = None,
    ) -> None:
        self.predict_fn = predict_fn
        self.background = check_array(background, name="background", ndim=2)
        self.n_permutations = n_permutations
        self.antithetic = antithetic
        self.feature_names = feature_names
        self.config = config or RuntimeConfig()

    def explain(
        self,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> FeatureAttribution:
        instance = check_array(instance, name="instance", ndim=1)
        runtime = GameRuntime(
            MarginalImputationGame(
                self.predict_fn, instance, self.background
            ),
            config=self.config,
        )
        with runtime.stats.timer():
            phi, errors = permutation_shapley_values(
                runtime,
                self.n_permutations,
                antithetic=self.antithetic,
                random_state=random_state,
                n_jobs=self.config.n_jobs,
                stats=runtime.stats,
            )
            base_value = runtime.empty_value()
            prediction = runtime.grand_value()
        names = self.feature_names or [f"x{i}" for i in range(len(instance))]
        return FeatureAttribution(
            feature_names=list(names),
            values=phi,
            base_value=base_value,
            prediction=prediction,
            metadata={
                "method": "permutation_shapley",
                "standard_errors": errors.tolist(),
                "n_permutations": self.n_permutations,
                "n_coalitions_evaluated": runtime.stats.n_coalition_evals,
                **runtime.stats.as_metadata(),
            },
        )
