"""Clean fixture for XDB031: the same fan-out, but every task body
either raises the boundary's modelled ServiceError hierarchy or
handles its own failure — nothing untyped can escape."""

import asyncio

__all__ = ["ServiceError", "RefreshError", "refresh_all", "evict_all"]


class ServiceError(Exception):
    """The boundary's modelled failure type."""


class RefreshError(ServiceError):
    """A modelled refresh failure."""


async def _modelled_refresh(key):
    if not key:
        raise RefreshError(key)  # a ServiceError: the boundary models it
    return key


async def _guarded_evict(key):
    try:
        return int(key)
    except ValueError:
        return None  # handled inside the task body


async def refresh_all(keys):
    for key in keys:
        asyncio.create_task(_modelled_refresh(key))


async def evict_all(keys):
    for key in keys:
        asyncio.ensure_future(_guarded_evict(key))
