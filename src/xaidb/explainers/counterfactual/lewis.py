"""LEWIS-style probabilistic contrastive counterfactuals
(Galhotra, Pradhan & Salimi 2021).

LEWIS explains a black-box decision with *probabilities of causation* over
a structural causal model:

- **necessity** ``PN = P(f would be negative had X_j been x'_j | X_j = x_j,
  f positive)`` — was this feature value *necessary* for the decision?
- **sufficiency** ``PS = P(f would be positive had X_j been x_j | X_j =
  x'_j, f negative)`` — is it *sufficient* to obtain the decision?
- **PNS** — joint necessity-and-sufficiency over the whole population.

All three are counterfactual (rung-3) quantities: they are estimated by
sampling units from the SCM, abducting each unit's exogenous noise, and
re-running the mechanisms under the contrastive intervention.

The same machinery yields *recourse*: for an individual with a negative
decision, rank candidate interventions on actionable features by the
probability they flip this individual's outcome (exact abduction given the
fully observed feature vector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from xaidb.causal.scm import StructuralCausalModel
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, PredictFn
from xaidb.utils.rng import RandomState, check_random_state

__all__ = ["NecessitySufficiencyScores", "LewisExplainer"]


@dataclass
class NecessitySufficiencyScores:
    """Probabilities of causation for one contrastive pair of values."""

    feature: str
    factual_value: float
    contrastive_value: float
    necessity: float
    sufficiency: float
    pns: float
    n_units: int


class LewisExplainer(Explainer):
    """Necessity/sufficiency explanation scores and probabilistic recourse.

    Parameters
    ----------
    predict_fn:
        The black box's positive-decision probability over feature matrix
        columns ordered as ``feature_nodes``.
    scm:
        Structural causal model over the feature nodes.
    feature_nodes:
        SCM node per model column.
    n_units:
        Population sample size for score estimation.
    decision_threshold:
        Positive decision when ``predict_fn >= threshold``.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        scm: StructuralCausalModel,
        feature_nodes: Sequence[Hashable],
        *,
        n_units: int = 2000,
        decision_threshold: float = 0.5,
    ) -> None:
        missing = [n for n in feature_nodes if n not in scm.graph]
        if missing:
            raise ValidationError(f"SCM is missing feature nodes: {missing}")
        if n_units < 1:
            raise ValidationError(f"n_units must be >= 1, got {n_units}")
        self.predict_fn = predict_fn
        self.scm = scm
        self.feature_nodes = list(feature_nodes)
        self.n_units = n_units
        self.decision_threshold = decision_threshold

    # ------------------------------------------------------------------
    def _decide(self, matrix: np.ndarray) -> np.ndarray:
        scores = np.asarray(self.predict_fn(matrix), dtype=float)
        return scores >= self.decision_threshold

    def _population(self, random_state: RandomState) -> list[dict]:
        """Sample units as full observations over the *feature* nodes
        (nodes outside the feature set are sampled too so abduction has a
        complete observation)."""
        columns = self.scm.sample(self.n_units, random_state=random_state)
        return [
            {node: float(columns[node][i]) for node in self.scm.graph.nodes}
            for i in range(self.n_units)
        ]

    def _unit_features(self, unit: dict) -> np.ndarray:
        return np.asarray([unit[node] for node in self.feature_nodes])

    def _counterfactual_decision(
        self, unit: dict, interventions: dict
    ) -> bool:
        twin = self.scm.counterfactual(unit, interventions)
        features = np.asarray(
            [[twin[node] for node in self.feature_nodes]]
        )
        return bool(self._decide(features)[0])

    # ------------------------------------------------------------------
    def scores(
        self,
        feature: Hashable,
        factual_value: float,
        contrastive_value: float,
        *,
        tolerance: float | None = None,
        random_state: RandomState = None,
    ) -> NecessitySufficiencyScores:
        """Population-level PN, PS and PNS for ``feature`` taking
        ``factual_value`` versus ``contrastive_value``.

        For continuous features no unit hits a value exactly, so the
        conditioning events use a matching band: a unit "has" a value when
        its observed feature lies within ``tolerance`` of it.  The default
        band is half the gap between the two contrasted values, which
        keeps the factual and contrastive populations disjoint.  Units
        matching neither side are excluded from the conditional estimates
        (they carry no evidence about this contrast).
        """
        if feature not in self.scm.graph:
            raise ValidationError(f"unknown feature node {feature!r}")
        if tolerance is None:
            tolerance = abs(factual_value - contrastive_value) / 2.0
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        rng = check_random_state(random_state)
        units = self._population(rng)
        decisions = self._decide(
            np.asarray([self._unit_features(u) for u in units])
        )

        def matches(observed: float, value: float) -> bool:
            return abs(observed - value) <= tolerance

        necessity_events = necessity_trials = 0
        sufficiency_events = sufficiency_trials = 0
        pns_events = 0
        for unit, decision in zip(units, decisions):
            observed = unit[feature]
            if matches(observed, factual_value) and decision:
                necessity_trials += 1
                flipped = not self._counterfactual_decision(
                    unit, {feature: contrastive_value}
                )
                necessity_events += int(flipped)
            if matches(observed, contrastive_value) and not decision:
                sufficiency_trials += 1
                achieved = self._counterfactual_decision(
                    unit, {feature: factual_value}
                )
                sufficiency_events += int(achieved)
            positive_world = self._counterfactual_decision(
                unit, {feature: factual_value}
            )
            negative_world = self._counterfactual_decision(
                unit, {feature: contrastive_value}
            )
            pns_events += int(positive_world and not negative_world)

        return NecessitySufficiencyScores(
            feature=str(feature),
            factual_value=factual_value,
            contrastive_value=contrastive_value,
            necessity=(
                necessity_events / necessity_trials if necessity_trials else 0.0
            ),
            sufficiency=(
                sufficiency_events / sufficiency_trials
                if sufficiency_trials
                else 0.0
            ),
            # xailint: disable=XDB023 (init validates n_units >= 1 and _population samples exactly that many units)
            pns=pns_events / len(units),
            n_units=len(units),
        )

    # ------------------------------------------------------------------
    def recourse(
        self,
        observation: dict,
        candidate_interventions: Sequence[dict],
        *,
        random_state: RandomState = None,
        n_noise_samples: int = 200,
    ) -> list[tuple[dict, float]]:
        """Rank candidate interventions for an individual by the
        probability they flip the decision to positive.

        ``observation`` must cover every SCM node.  With fully invertible
        mechanisms the counterfactual is deterministic (probability 0 or
        1); ``n_noise_samples`` is kept for API symmetry with partial
        abduction and future stochastic decision functions.

        Returns the candidates sorted by flip probability (descending);
        each item is ``(intervention, probability)``.
        """
        missing = [n for n in self.scm.graph.nodes if n not in observation]
        if missing:
            raise ValidationError(f"observation is missing nodes: {missing}")
        if not candidate_interventions:
            raise ValidationError("no candidate interventions supplied")
        ranked = []
        for intervention in candidate_interventions:
            flipped = self._counterfactual_decision(dict(observation), intervention)
            ranked.append((dict(intervention), 1.0 if flipped else 0.0))
        ranked.sort(key=lambda pair: (-pair[1], len(pair[0])))
        return ranked

    def explain(
        self,
        contrasts: Sequence[tuple[Hashable, float, float]],
        *,
        random_state: RandomState = None,
    ) -> list[NecessitySufficiencyScores]:
        """Alias for :meth:`explanation_table` (the Explainer-interface
        entry point)."""
        return self.explanation_table(contrasts, random_state=random_state)

    def explanation_table(
        self,
        contrasts: Sequence[tuple[Hashable, float, float]],
        *,
        random_state: RandomState = None,
    ) -> list[NecessitySufficiencyScores]:
        """Convenience: score a batch of ``(feature, factual, contrastive)``
        triples with a shared population sample seed, for E10's table."""
        rng = check_random_state(random_state)
        seeds = rng.integers(0, 2**31 - 1, size=len(contrasts))
        return [
            self.scores(feature, factual, contrastive, random_state=int(seed))
            for (feature, factual, contrastive), seed in zip(contrasts, seeds)
        ]
