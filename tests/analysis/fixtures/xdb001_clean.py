"""XDB001 clean fixture: only sanctioned dependencies."""

import numpy as np
import scipy.linalg
from xaidb.explainers import lime  # intra-package, not the banned `lime`

__all__ = ["use_them"]


def use_them() -> None:
    np.zeros(1)
    scipy.linalg.norm([1.0])
    lime  # pragma: no cover
