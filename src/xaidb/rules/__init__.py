"""Rule-based explanations (tutorial §2.2) and their data-management
substrate (§2.2.1): frequent-itemset mining (Apriori, FP-Growth),
association rules, Anchors, interpretable decision sets, and logic-based
sufficient-reason explanations (§2.2.2)."""

from xaidb.rules.anchors import Anchor, AnchorsExplainer
from xaidb.rules.decision_set import DecisionSetClassifier, Rule
from xaidb.rules.labeling import (
    ABSTAIN,
    LabelingFunction,
    LabelModel,
    apply_labeling_functions,
    mine_labeling_rules,
)
from xaidb.rules.logic import (
    all_sufficient_reasons,
    is_sufficient_reason,
    necessary_features,
    sufficient_reason,
)
from xaidb.rules.mining import (
    AssociationRule,
    apriori,
    association_rules,
    fp_growth,
)

__all__ = [
    "apriori",
    "fp_growth",
    "association_rules",
    "AssociationRule",
    "Anchor",
    "AnchorsExplainer",
    "Rule",
    "DecisionSetClassifier",
    "sufficient_reason",
    "all_sufficient_reasons",
    "is_sufficient_reason",
    "necessary_features",
    "ABSTAIN",
    "LabelingFunction",
    "LabelModel",
    "apply_labeling_functions",
    "mine_labeling_rules",
]
