"""Dirty fixture for XDB022: SharedMemory acquisitions with paths to
the function exit that never close or unlink the segment."""

import numpy as np
from multiprocessing import shared_memory

__all__ = ["stage_block", "stage_matrix"]


def stage_block(nbytes):
    segment = shared_memory.SharedMemory(create=True, size=nbytes)  # finding 1
    if nbytes > 4096:
        return None  # early exit leaks the mapping
    view = np.ndarray((nbytes,), dtype=np.uint8, buffer=segment.buf)
    out = view.copy()
    segment.close()
    segment.unlink()
    return out


def stage_matrix(data):
    segment = shared_memory.SharedMemory(create=True, size=data.nbytes)  # finding 2
    if data.ndim != 2:
        raise ValueError("expected a matrix")  # raise path leaks the mapping
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
    view[...] = data
    segment.close()
    segment.unlink()
    return data.shape
