"""XDB010 — locally-constructed generator reaches a stochastic call.

XDB002 bans the legacy global-state APIs but is blind to a
flow-sensitive failure mode: a function inside ``xaidb`` that builds
its *own* ``np.random.Generator`` (``rng = np.random.default_rng()`` or
``default_rng(42)``) and then samples from it.  The call sites look
seeded, yet no caller can reproduce the run — the seed never threads
through the API, which is exactly the silent-drift channel E2/E19/E20
measure.

The rule runs the :class:`~xaidb.analysis.dataflow.ValueTaint` analysis
per function: a generator constructed with no caller-derived seed is
*tainted*; values derived (through any assignment chain, tuple
unpacking or augmented assignment) from a function parameter or from
``check_random_state(...)`` are *clean*.  A stochastic Generator-method
call on a tainted value is a finding.  ``np.random.default_rng(seed)``
where ``seed`` derives from a parameter is clean — deriving a child
stream from a caller seed is sanctioned.

Scope: function bodies inside the ``xaidb`` package.  Module-level
script code (benchmarks, examples) legitimately pins literal seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.cfg import function_cfg
from xaidb.analysis.dataflow import (
    ValueTaint,
    function_params,
    item_exprs,
    iter_functions,
    replay,
    solve_forward,
)
from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["RngOriginRule", "STOCHASTIC_METHODS"]

#: np.random.Generator methods that consume entropy.
STOCHASTIC_METHODS = {
    "random",
    "normal",
    "standard_normal",
    "uniform",
    "integers",
    "choice",
    "shuffle",
    "permutation",
    "permuted",
    "exponential",
    "poisson",
    "binomial",
    "multinomial",
    "beta",
    "gamma",
    "laplace",
    "logistic",
    "dirichlet",
    "geometric",
    "chisquare",
    "triangular",
    "hypergeometric",
    "standard_exponential",
    "standard_gamma",
    "bytes",
}

_PARAM = "param"
_TAINTED = "tainted"


def _is_default_rng(func: ast.AST) -> bool:
    """``np.random.default_rng`` / ``numpy.random.default_rng`` /
    bare ``default_rng`` (from-import)."""
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    return isinstance(func, ast.Attribute) and func.attr == "default_rng"


def _is_check_random_state(func: ast.AST) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "check_random_state"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "check_random_state"
    )


class _SeedTaint(ValueTaint):
    """Labels: ``param`` (caller-derived) and ``tainted`` (local rng)."""

    def eval_call(self, call: ast.Call, state) -> frozenset[str]:
        if _is_check_random_state(call.func):
            return frozenset({_PARAM})
        if _is_default_rng(call.func):
            arg_labels = super().eval_call(call, state)
            if _PARAM in arg_labels:
                return frozenset({_PARAM})
            return frozenset({_TAINTED})
        return super().eval_call(call, state)


@register
class RngOriginRule(FileRule):
    rule_id = "XDB010"
    symbol = "rng-origin-untracked"
    description = (
        "A np.random.Generator constructed inside the function (no "
        "caller-derived seed, not via check_random_state) reaches a "
        "stochastic call: the seed never threads through the API, so "
        "callers cannot reproduce the run."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_xaidb_package:
            return
        for fn in iter_functions(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        cfg = function_cfg(fn)
        problem = _SeedTaint(
            entry={name: frozenset({_PARAM}) for name in function_params(fn)}
        )
        in_states = solve_forward(cfg, problem)
        findings: list[Finding] = []
        seen: set[int] = set()

        def visit(item: ast.AST, state) -> None:
            # walk only this item's own header expressions — compound
            # bodies are separate items in successor blocks
            for root in item_exprs(item):
                for node in ast.walk(root):
                    self._check_call(ctx, fn, problem, state, node,
                                     seen, findings)

        replay(cfg, problem, in_states, visit)
        yield from findings

    def _check_call(self, ctx, fn, problem, state, node, seen, findings):
        if not isinstance(node, ast.Call) or id(node) in seen:
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in STOCHASTIC_METHODS
        ):
            return
        receiver_labels = problem.eval_expr(func.value, state)
        if _TAINTED not in receiver_labels:
            return
        seen.add(id(node))
        receiver = (
            func.value.id
            if isinstance(func.value, ast.Name)
            else "<expression>"
        )
        findings.append(
            ctx.finding(
                self,
                node,
                f"generator {receiver!r} feeding .{func.attr}() in "
                f"{fn.name!r} was built locally with no caller-derived "
                f"seed; accept a random_state parameter and thread it "
                f"via check_random_state",
            )
        )
