"""The interprocedural summary cache: warm scans recompute only the
SCCs reachable from an edit and stay finding-for-finding identical to
cold scans (the guarantee docs/LINTING.md "Summary caching" states;
bench A9 measures the speedup on the real repo)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from xaidb.analysis import run_paths

FIXTURES = Path(__file__).parent / "fixtures"


def _fingerprint(result):
    return [
        (f.path, f.line, f.col, f.rule_id, f.message)
        for f in result.findings
    ]


@pytest.fixture()
def project(tmp_path):
    """A corpus under ``src/xaidb/`` (the path anchor the engine keys
    ``in_xaidb_package`` on) with known interprocedural findings."""
    pkg = tmp_path / "src" / "xaidb"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text('"""Cache-test corpus."""\n')
    for target, fixture in (
        ("rng.py", "xdb016_dirty.py"),
        ("mutation.py", "xdb017_dirty.py"),
        ("geometry.py", "xdb014_clean.py"),
    ):
        (pkg / target).write_text(
            (FIXTURES / fixture).read_text(encoding="utf-8")
        )
    return tmp_path


def _scan(project, cached=True):
    cache_path = project / ".xailint_cache.json" if cached else None
    return run_paths(
        [project / "src"], root=project, cache_path=cache_path
    )


def test_cold_scan_computes_summaries_and_finds_the_planted_bugs(project):
    cold = _scan(project)
    assert cold.stats.summary_misses > 0
    assert cold.stats.summary_hits == 0
    counts = cold.counts_by_rule()
    assert counts["XDB016"] == 2
    assert counts["XDB017"] == 2


def test_untouched_corpus_serves_project_results_wholesale(project):
    cold = _scan(project)
    warm = _scan(project)
    # nothing changed: the project-rule layer short-circuits above the
    # summary cache entirely
    assert warm.stats.project_from_cache
    assert warm.stats.summary_misses == 0
    assert _fingerprint(warm) == _fingerprint(cold)


def test_touching_one_file_recomputes_only_reachable_sccs(project):
    cold = _scan(project)
    total_sccs = cold.stats.summary_misses
    geometry = project / "src" / "xaidb" / "geometry.py"
    geometry.write_text(geometry.read_text() + "\n# touched\n")
    warm = _scan(project)
    assert not warm.stats.project_from_cache  # corpus digest changed
    # same condensation, mostly served from cache: only geometry.py's
    # SCCs (nothing else calls into it) recompute
    assert warm.stats.summary_hits + warm.stats.summary_misses == total_sccs
    assert warm.stats.summary_hits > 0
    assert 0 < warm.stats.summary_misses < total_sccs
    assert _fingerprint(warm) == _fingerprint(cold)


def test_warm_scan_is_finding_identical_to_an_uncached_scan(project):
    _scan(project)  # populate
    geometry = project / "src" / "xaidb" / "geometry.py"
    geometry.write_text(geometry.read_text() + "\n# touched\n")
    warm = _scan(project)
    assert warm.stats.summary_hits > 0  # summaries actually reused
    uncached = _scan(project, cached=False)
    assert _fingerprint(warm) == _fingerprint(uncached)


def test_corrupt_summary_entries_degrade_to_misses_not_wrong_results(
    project,
):
    cache_path = project / ".xailint_cache.json"
    cold = _scan(project)
    document = json.loads(cache_path.read_text())
    assert document["summaries"]  # the section round-trips to disk
    for key in document["summaries"]:
        document["summaries"][key] = [{"bogus": 1}]
    cache_path.write_text(json.dumps(document))
    geometry = project / "src" / "xaidb" / "geometry.py"
    geometry.write_text(geometry.read_text() + "\n# touched\n")
    rescanned = _scan(project)
    assert rescanned.stats.summary_hits == 0  # nothing adoptable
    assert _fingerprint(rescanned) == _fingerprint(cold)


def test_typestate_findings_survive_the_cache_round_trip(tmp_path):
    """Pass F (typestate) and pass G (may-raise) live in the cached
    summaries: a warm scan must replay the XDB028 findings — witness
    lines included — without recomputing anything."""
    fixtures = Path(__file__).parent / "fixtures"
    pkg = tmp_path / "src" / "xaidb"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text('"""Typestate cache corpus."""\n')
    (pkg / "lifecycle.py").write_text(
        (fixtures / "xdb028_dirty.py").read_text(encoding="utf-8")
    )
    cold = _scan(tmp_path)
    assert cold.counts_by_rule().get("XDB028") == 2
    warm = _scan(tmp_path)
    assert warm.stats.project_from_cache
    assert warm.stats.summary_misses == 0
    assert _fingerprint(warm) == _fingerprint(cold)
    # the interprocedural witness is part of the replayed message
    messages = " | ".join(f.message for f in warm.findings)
    assert "the illegal call is inside xaidb.lifecycle._score_all:" in (
        messages
    )


def test_cache_version_bump_invalidates_old_documents(project):
    from xaidb.analysis.cache import CACHE_VERSION

    assert CACHE_VERSION == 4  # v4 added the pass F/G summary fields
    cache_path = project / ".xailint_cache.json"
    cold = _scan(project)
    document = json.loads(cache_path.read_text())
    document["version"] = CACHE_VERSION - 1
    cache_path.write_text(json.dumps(document))
    rescan = _scan(project)
    assert not rescan.stats.project_from_cache
    assert rescan.stats.summary_hits == 0  # pre-bump summaries dropped
    assert _fingerprint(rescan) == _fingerprint(cold)


def test_stale_summary_keys_are_pruned_after_edits(project):
    cache_path = project / ".xailint_cache.json"
    _scan(project)
    geometry = project / "src" / "xaidb" / "geometry.py"
    geometry.write_text(geometry.read_text() + "\n# touched\n")
    rescan = _scan(project)
    document = json.loads(cache_path.read_text())
    # content-addressed entries for the old geometry.py digests are
    # gone: the store holds exactly this run's SCC keys
    assert len(document["summaries"]) == (
        rescan.stats.summary_hits + rescan.stats.summary_misses
    )
