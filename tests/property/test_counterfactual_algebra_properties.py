"""Property-based tests: counterfactual feasibility invariants and
relational-algebra composition laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from xaidb.data import Dataset, FeatureSpec
from xaidb.db import Relation, project, select, union
from xaidb.explainers.counterfactual import ActionSpace


# ----------------------------------------------------------------------
# ActionSpace invariants
# ----------------------------------------------------------------------
@st.composite
def dataset_and_points(draw):
    n = draw(st.integers(8, 30))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    features = [
        FeatureSpec("free"),
        FeatureSpec("up_only", monotone=1),
        FeatureSpec("frozen", actionable=False),
        FeatureSpec("cat", kind="categorical", categories=("a", "b", "c")),
    ]
    X = np.column_stack(
        [
            rng.normal(size=n),
            rng.normal(size=n),
            rng.normal(size=n),
            rng.integers(0, 3, size=n).astype(float),
        ]
    )
    dataset = Dataset(X=X, features=features)
    origin = X[draw(st.integers(0, n - 1))]
    wild = origin + rng.normal(0, draw(st.floats(0.1, 5.0)), size=4)
    return dataset, origin, wild


@settings(max_examples=60, deadline=None)
@given(setup=dataset_and_points())
def test_clip_always_produces_feasible_points(setup):
    dataset, origin, wild = setup
    space = ActionSpace.from_dataset(dataset)
    clipped = space.clip(origin, wild)
    assert space.is_feasible(origin, clipped)


@settings(max_examples=60, deadline=None)
@given(setup=dataset_and_points())
def test_clip_is_idempotent(setup):
    dataset, origin, wild = setup
    space = ActionSpace.from_dataset(dataset)
    once = space.clip(origin, wild)
    twice = space.clip(origin, once)
    assert np.allclose(once, twice)


@settings(max_examples=60, deadline=None)
@given(setup=dataset_and_points())
def test_clip_preserves_immutables_and_monotone(setup):
    dataset, origin, wild = setup
    space = ActionSpace.from_dataset(dataset)
    clipped = space.clip(origin, wild)
    assert clipped[2] == origin[2]  # frozen
    assert clipped[1] >= origin[1] - 1e-12  # up_only
    assert clipped[3] in (0.0, 1.0, 2.0)  # categorical snapped


@settings(max_examples=60, deadline=None)
@given(setup=dataset_and_points())
def test_origin_is_feasible_from_itself(setup):
    dataset, origin, __ = setup
    space = ActionSpace.from_dataset(dataset)
    assert space.is_feasible(origin, origin.copy())


# ----------------------------------------------------------------------
# relational algebra composition laws
# ----------------------------------------------------------------------
@st.composite
def small_relation(draw):
    n = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    records = [
        {"a": int(rng.integers(0, 3)), "b": int(rng.integers(0, 3))}
        for __ in range(n)
    ]
    return Relation.from_dicts("r", records)


@settings(max_examples=60, deadline=None)
@given(relation=small_relation(), t1=st.integers(0, 2), t2=st.integers(0, 2))
def test_select_composition_equals_conjunction(relation, t1, t2):
    composed = select(select(relation, lambda r: r["a"] >= t1),
                      lambda r: r["b"] >= t2)
    conjoined = select(relation, lambda r: r["a"] >= t1 and r["b"] >= t2)
    assert composed.to_dicts() == conjoined.to_dicts()
    assert [row.provenance for row in composed] == [
        row.provenance for row in conjoined
    ]


@settings(max_examples=60, deadline=None)
@given(relation=small_relation())
def test_project_is_idempotent(relation):
    once = project(relation, ["a"])
    twice = project(once, ["a"])
    assert once.to_dicts() == twice.to_dicts()
    assert [row.provenance for row in once] == [
        row.provenance for row in twice
    ]


@settings(max_examples=40, deadline=None)
@given(left=small_relation(), right=small_relation())
def test_union_commutes_on_values(left, right):
    ab = union(left, right)
    ba = union(right, left)
    key = lambda d: sorted(d.items())
    assert sorted(ab.to_dicts(), key=key) == sorted(ba.to_dicts(), key=key)


@settings(max_examples=60, deadline=None)
@given(relation=small_relation(), threshold=st.integers(0, 2))
def test_selection_commutes_with_restriction(relation, threshold):
    """sigma(restrict(R)) == restrict(sigma(R)) for any world."""
    world = frozenset(relation.tuple_ids()[::2])  # every other tuple
    left = select(relation.restrict_to(world), lambda r: r["a"] >= threshold)
    right = select(relation, lambda r: r["a"] >= threshold).restrict_to(world)
    assert left.to_dicts() == right.to_dicts()


@settings(max_examples=60, deadline=None)
@given(relation=small_relation())
def test_projection_provenance_covers_group(relation):
    """Each projected tuple's lineage is exactly the base tuples whose
    rows project onto it."""
    projected = project(relation, ["a"])
    for row in projected:
        expected = {
            f"r:{i}"
            for i, record in enumerate(relation.to_dicts())
            if record["a"] == row["a"]
        }
        assert set(row.provenance.lineage()) == expected
