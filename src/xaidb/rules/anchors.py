"""Anchors: high-precision model-agnostic rule explanations
(Ribeiro, Singh & Guestrin 2018).

An *anchor* for instance ``x`` is a set of feature predicates ``A`` such
that ``P(f(z) = f(x) | z ~ D(.|A)) >= tau``: whenever the rule holds, the
model (almost always) predicts the same as for ``x``.  The search is a
beam search over predicates; candidate precisions are estimated with the
**KL-LUCB** multi-armed-bandit procedure, which adaptively spends samples
to identify the best candidates with statistical confidence — the
"multi-armed bandit-based algorithm" the tutorial cites.

Numeric features are discretised into training-quantile bins; a predicate
pins a feature to the instance's bin (values are resampled inside the bin
during perturbation, so anchors remain *rules*, not point conditions).
The naive fixed-budget sampler is kept as ``candidate_selection=
"fixed"`` for the E11 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import PredictFn
from xaidb.runtime import EvalStats
from xaidb.utils.rng import RandomState, check_random_state, spawn_seeds
from xaidb.utils.validation import check_array, check_probability

__all__ = [
    "Anchor",
    "kl_bernoulli",
    "kl_upper_bound",
    "kl_lower_bound",
    "AnchorsExplainer",
]


@dataclass
class Anchor:
    """A fitted anchor rule."""

    predicates: list[str]
    feature_indices: list[int]
    precision: float
    coverage: float
    n_samples_used: int
    prediction: float
    #: Runtime accounting for the search (``n_model_evals``,
    #: ``cache_hit_rate``, ``wall_time_s``) — same counter block every
    #: :class:`~xaidb.explainers.base.FeatureAttribution` carries.
    eval_stats: dict | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rule = " AND ".join(self.predicates) if self.predicates else "TRUE"
        return (
            f"Anchor(IF {rule} THEN predict={self.prediction:g} "
            f"[precision={self.precision:.3f}, coverage={self.coverage:.3f}])"
        )


def kl_bernoulli(p: float, q: float) -> float:
    """KL divergence between Bernoulli(p) and Bernoulli(q)."""
    p = min(max(p, 1e-12), 1.0 - 1e-12)
    q = min(max(q, 1e-12), 1.0 - 1e-12)
    return p * np.log(p / q) + (1.0 - p) * np.log((1.0 - p) / (1.0 - q))


def kl_upper_bound(mean: float, n: int, beta: float) -> float:
    """Largest q with ``n * KL(mean, q) <= beta`` (bisection)."""
    if n == 0:
        return 1.0
    lo, hi = mean, 1.0
    for _ in range(40):
        mid = (lo + hi) / 2.0
        if n * kl_bernoulli(mean, mid) > beta:
            hi = mid
        else:
            lo = mid
    return lo


def kl_lower_bound(mean: float, n: int, beta: float) -> float:
    """Smallest q with ``n * KL(mean, q) <= beta`` (bisection)."""
    if n == 0:
        return 0.0
    lo, hi = 0.0, mean
    for _ in range(40):
        mid = (lo + hi) / 2.0
        if n * kl_bernoulli(mean, mid) > beta:
            lo = mid
        else:
            hi = mid
    return hi


class AnchorsExplainer:
    """Beam-search anchors with KL-LUCB candidate selection.

    Parameters
    ----------
    predict_fn:
        Positive-class probability of the model (decisions thresholded
        at 0.5).
    dataset:
        Training data for the perturbation distribution and coverage.
    precision_threshold:
        Target precision ``tau``.
    n_bins:
        Quantile bins for numeric predicates.
    beam_width:
        Candidates kept per rule length.
    delta:
        Bandit confidence parameter.
    candidate_selection:
        ``"kl_lucb"`` (default) or ``"fixed"`` (naive equal-budget
        baseline for the ablation).
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        dataset: Dataset,
        *,
        precision_threshold: float = 0.95,
        n_bins: int = 4,
        beam_width: int = 3,
        max_anchor_size: int | None = None,
        batch_size: int = 64,
        max_samples_per_candidate: int = 2000,
        delta: float = 0.05,
        candidate_selection: str = "kl_lucb",
    ) -> None:
        check_probability(precision_threshold, name="precision_threshold")
        if candidate_selection not in ("kl_lucb", "fixed"):
            raise ValidationError(
                "candidate_selection must be 'kl_lucb' or 'fixed'"
            )
        self.predict_fn = predict_fn
        self.dataset = dataset
        self.precision_threshold = precision_threshold
        self.n_bins = n_bins
        self.beam_width = beam_width
        self.max_anchor_size = max_anchor_size or dataset.n_features
        self.batch_size = batch_size
        self.max_samples_per_candidate = max_samples_per_candidate
        self.delta = delta
        self.candidate_selection = candidate_selection
        self._bin_edges = self._compute_bins()
        #: Ledger of the most recent :meth:`explain_batch` call.
        self.batch_stats_: EvalStats | None = None

    # ------------------------------------------------------------------
    def _compute_bins(self) -> dict[int, np.ndarray]:
        edges = {}
        for col in self.dataset.numeric_indices:
            quantiles = np.quantile(
                self.dataset.X[:, col],
                np.linspace(0, 1, self.n_bins + 1)[1:-1],
            )
            edges[col] = np.unique(quantiles)
        return edges

    def _bin_of(self, col: int, value: float) -> int:
        return int(np.searchsorted(self._bin_edges[col], value, side="right"))

    def _column_bins(self, col: int, values: np.ndarray) -> np.ndarray:
        return np.searchsorted(self._bin_edges[col], values, side="right")

    def _predicate_text(self, col: int, instance: np.ndarray) -> str:
        spec = self.dataset.features[col]
        if spec.is_categorical:
            return f"{spec.name} = {spec.decode(instance[col])}"
        edges = self._bin_edges[col]
        b = self._bin_of(col, instance[col])
        if len(edges) == 0:
            return f"{spec.name} = any"
        if b == 0:
            return f"{spec.name} <= {edges[0]:.3g}"
        if b == len(edges):
            return f"{spec.name} > {edges[-1]:.3g}"
        return f"{edges[b - 1]:.3g} < {spec.name} <= {edges[b]:.3g}"

    # ------------------------------------------------------------------
    def _satisfies(self, rows: np.ndarray, anchor: tuple[int, ...],
                   instance: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying every predicate of the anchor."""
        mask = np.ones(rows.shape[0], dtype=bool)
        for col in anchor:
            if self.dataset.features[col].is_categorical:
                mask &= rows[:, col] == instance[col]
            else:
                target_bin = self._bin_of(col, instance[col])
                mask &= self._column_bins(col, rows[:, col]) == target_bin
        return mask

    def _sample_under(
        self,
        anchor: tuple[int, ...],
        instance: np.ndarray,
        n: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw perturbations conditioned on the anchor: unconstrained
        features come from random training rows; anchored features are
        resampled from training values inside the instance's bin (or the
        exact category)."""
        rows = self.dataset.X[
            rng.integers(0, self.dataset.n_rows, size=n)
        ].copy()
        for col in anchor:
            if self.dataset.features[col].is_categorical:
                rows[:, col] = instance[col]
            else:
                target_bin = self._bin_of(col, instance[col])
                pool = self.dataset.X[
                    self._column_bins(col, self.dataset.X[:, col]) == target_bin,
                    col,
                ]
                if pool.size == 0:
                    rows[:, col] = instance[col]
                else:
                    rows[:, col] = pool[rng.integers(0, pool.size, size=n)]
        return rows

    # ------------------------------------------------------------------
    def explain(
        self,
        instance: np.ndarray,
        *,
        random_state: RandomState = None,
    ) -> Anchor:
        """Find an anchor for the model's decision at ``instance``."""
        instance = check_array(instance, name="instance", ndim=1)
        rng = check_random_state(random_state)
        eval_stats = EvalStats()
        timer = eval_stats.timer()
        timer.__enter__()
        counted_fn = eval_stats.wrap_predict_fn(self.predict_fn)
        decision = float(counted_fn(instance[None, :])[0]) >= 0.5
        stats: dict[tuple[int, ...], list[int]] = {}  # anchor -> [hits, n]
        total_samples = {"n": 0}

        def sample_precision(anchor: tuple[int, ...], n: int) -> None:
            rows = self._sample_under(anchor, instance, n, rng)
            agrees = (
                np.asarray(counted_fn(rows), dtype=float) >= 0.5
            ) == decision
            record = stats.setdefault(anchor, [0, 0])
            record[0] += int(agrees.sum())
            record[1] += n
            total_samples["n"] += n

        def mean(anchor: tuple[int, ...]) -> float:
            hits, n = stats.get(anchor, (0, 0))
            return hits / n if n else 0.0

        def count(anchor: tuple[int, ...]) -> int:
            return stats.get(anchor, (0, 0))[1]

        current_beam: list[tuple[int, ...]] = [()]
        best_anchor: tuple[int, ...] | None = None
        all_columns = list(range(self.dataset.n_features))

        for _ in range(self.max_anchor_size):
            candidates: list[tuple[int, ...]] = []
            for anchor in current_beam:
                used = set(anchor)
                for col in all_columns:
                    if col not in used:
                        candidates.append(tuple(sorted(anchor + (col,))))
            candidates = list(dict.fromkeys(candidates))
            if not candidates:
                break
            chosen = self._select_candidates(
                candidates, sample_precision, mean, count
            )
            # did any chosen candidate reach the precision threshold with
            # statistical confidence?
            verified = []
            for anchor in chosen:
                while (
                    count(anchor) < self.max_samples_per_candidate
                    and kl_lower_bound(
                        mean(anchor),
                        count(anchor),
                        np.log(1.0 / self.delta),
                    )
                    < self.precision_threshold
                    <= kl_upper_bound(
                        mean(anchor), count(anchor), np.log(1.0 / self.delta)
                    )
                ):
                    sample_precision(anchor, self.batch_size)
                lower = kl_lower_bound(
                    mean(anchor), count(anchor), np.log(1.0 / self.delta)
                )
                if lower >= self.precision_threshold:
                    verified.append(anchor)
            if verified:
                # among verified anchors prefer the highest coverage
                best_anchor = max(verified, key=self._coverage_of(instance))
                break
            current_beam = chosen

        if best_anchor is None:
            # fall back to the best candidate found (precision below tau)
            explored = [a for a in stats if a]
            if not explored:
                raise ValidationError("anchor search explored no candidates")
            best_anchor = max(explored, key=mean)

        coverage = self._coverage_of(instance)(best_anchor)
        timer.__exit__(None, None, None)
        return Anchor(
            predicates=[
                self._predicate_text(col, instance) for col in best_anchor
            ],
            feature_indices=list(best_anchor),
            precision=mean(best_anchor),
            coverage=coverage,
            n_samples_used=total_samples["n"],
            prediction=1.0 if decision else 0.0,
            eval_stats=eval_stats.as_metadata(),
        )

    # ------------------------------------------------------------------
    def explain_batch(
        self,
        instances: np.ndarray,
        *,
        random_state: RandomState = None,
        seeds: list[int | None] | None = None,
    ) -> list[Anchor]:
        """Find anchors for many instances — the serving dispatcher's
        batch entry point.

        Each instance's beam search runs under its own seed, so every
        anchor is bitwise identical to the serial ``explain(instance,
        random_state=seed)`` path; :attr:`batch_stats_` accumulates the
        per-search ledgers (rows scored, search wall-time).
        """
        instances = check_array(instances, name="instances", ndim=2)
        n = instances.shape[0]
        if seeds is None:
            seeds = spawn_seeds(random_state, n)
        elif len(seeds) != n:
            raise ValidationError(
                f"got {len(seeds)} seeds for {n} instances"
            )
        self.batch_stats_ = EvalStats()
        anchors = [
            self.explain(instances[i], random_state=seeds[i])
            for i in range(n)
        ]
        for anchor in anchors:
            if anchor.eval_stats:
                self.batch_stats_.count_rows(
                    anchor.eval_stats.get("n_model_evals", 0)
                )
                self.batch_stats_.wall_time_s += anchor.eval_stats.get(
                    "wall_time_s", 0.0
                )
        return anchors

    # ------------------------------------------------------------------
    def _coverage_of(self, instance: np.ndarray):
        def coverage(anchor: tuple[int, ...]) -> float:
            mask = self._satisfies(self.dataset.X, anchor, instance)
            return float(mask.mean())

        return coverage

    def _select_candidates(
        self, candidates, sample_precision, mean, count
    ) -> list[tuple[int, ...]]:
        """Pick the top ``beam_width`` candidates.

        KL-LUCB: iteratively sample the most ambiguous pair (lowest upper
        bound inside the provisional top set vs highest upper bound
        outside) until the sets separate or the budget runs out.
        """
        top_k = min(self.beam_width, len(candidates))
        for candidate in candidates:
            if count(candidate) == 0:
                sample_precision(candidate, self.batch_size)
        if self.candidate_selection == "fixed":
            for candidate in candidates:
                remaining = self.max_samples_per_candidate // 4 - count(candidate)
                if remaining > 0:
                    sample_precision(candidate, remaining)
            ranked = sorted(candidates, key=mean, reverse=True)
            return ranked[:top_k]

        beta = np.log(1.0 / self.delta)
        budget = self.max_samples_per_candidate * len(candidates) // 4
        while budget > 0:
            means = {c: mean(c) for c in candidates}
            ranked = sorted(candidates, key=lambda c: means[c], reverse=True)
            inside, outside = ranked[:top_k], ranked[top_k:]
            if not outside:
                break
            weakest = min(
                inside,
                key=lambda c: kl_lower_bound(means[c], count(c), beta),
            )
            strongest = max(
                outside,
                key=lambda c: kl_upper_bound(means[c], count(c), beta),
            )
            lower = kl_lower_bound(means[weakest], count(weakest), beta)
            upper = kl_upper_bound(means[strongest], count(strongest), beta)
            if lower >= upper:
                break  # confidently separated
            sample_precision(weakest, self.batch_size)
            sample_precision(strongest, self.batch_size)
            budget -= 2 * self.batch_size
        ranked = sorted(candidates, key=mean, reverse=True)
        return ranked[:top_k]
