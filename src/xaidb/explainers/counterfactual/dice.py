"""DiCE-style diverse counterfactual explanations (Mothilal et al. 2020).

Generates a *set* of ``k`` counterfactuals jointly optimising the DiCE
loss: a validity hinge on the flipped class, MAD-weighted proximity to the
original instance, and a diversity term that pushes the counterfactuals
apart.  The optimiser is gradient-free (random-restart stochastic local
search over the action space), so it works with any black box — the
model-agnostic setting the tutorial emphasises.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from xaidb.data.dataset import Dataset
from xaidb.exceptions import ValidationError
from xaidb.explainers.base import Explainer, PredictFn
from xaidb.explainers.counterfactual.base import (
    ActionSpace,
    Counterfactual,
    CounterfactualSet,
    mad_distance,
)
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_positive

__all__ = ["DiceExplainer"]


class DiceExplainer(Explainer):
    """Diverse counterfactual search over a dataset-derived action space.

    Parameters
    ----------
    predict_fn:
        Positive-class probability of the model to explain.
    dataset:
        Training data; supplies feature specs (immutability, monotonicity),
        value ranges and MAD scales.
    proximity_weight / diversity_weight:
        Trade-off weights of the DiCE objective.
    n_iterations:
        Local-search steps per counterfactual set.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        dataset: Dataset,
        *,
        proximity_weight: float = 0.5,
        diversity_weight: float = 1.0,
        n_iterations: int = 400,
        step_scale: float = 0.5,
    ) -> None:
        check_positive(n_iterations, name="n_iterations")
        self.predict_fn = predict_fn
        self.dataset = dataset
        self.space = ActionSpace.from_dataset(dataset)
        self.proximity_weight = proximity_weight
        self.diversity_weight = diversity_weight
        self.n_iterations = n_iterations
        self.step_scale = step_scale

    # ------------------------------------------------------------------
    def explain(self, instance: np.ndarray, **kwargs: Any) -> CounterfactualSet:
        """Alias for :meth:`generate` (the Explainer-interface entry point)."""
        return self.generate(instance, **kwargs)

    def generate(
        self,
        instance: np.ndarray,
        *,
        n_counterfactuals: int = 4,
        target_class: int | None = None,
        random_state: RandomState = None,
    ) -> CounterfactualSet:
        """Produce ``n_counterfactuals`` diverse counterfactuals.

        ``target_class`` defaults to the opposite of the model's current
        decision at ``instance``.
        """
        instance = check_array(instance, name="instance", ndim=1)
        if instance.shape[0] != self.space.n_features:
            raise ValidationError("instance width != dataset features")
        if n_counterfactuals < 1:
            raise ValidationError("n_counterfactuals must be >= 1")
        rng = check_random_state(random_state)
        original_score = float(self.predict_fn(instance[None, :])[0])
        if target_class is None:
            target_class = 0 if original_score >= 0.5 else 1

        population = self._initialise(instance, n_counterfactuals, target_class, rng)
        best = population.copy()
        best_loss = self._loss(best, instance, target_class)
        for _ in range(self.n_iterations):
            candidate = best.copy()
            member = rng.integers(0, n_counterfactuals)
            candidate[member] = self._mutate(instance, candidate[member], rng)
            loss = self._loss(candidate, instance, target_class)
            if loss < best_loss:
                best, best_loss = candidate, loss
        scores = np.asarray(self.predict_fn(best), dtype=float)
        counterfactuals = [
            Counterfactual(
                original=instance.copy(),
                counterfactual=best[i],
                feature_names=self.dataset.feature_names,
                original_score=original_score,
                counterfactual_score=float(scores[i]),
                distance=mad_distance(instance, best[i], self.space.mad),
            )
            for i in range(n_counterfactuals)
        ]
        return CounterfactualSet(counterfactuals, mad=self.space.mad)

    # ------------------------------------------------------------------
    def _initialise(
        self, instance: np.ndarray, k: int, target_class: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Seed the population half from training rows already classified
        as the target class (their actionable features copied onto the
        instance, then projected to feasibility — DiCE's kd-tree warm
        start) and half from feasible random perturbations."""
        population = np.tile(instance, (k, 1))
        scores = np.asarray(self.predict_fn(self.dataset.X), dtype=float)
        on_target = (
            np.flatnonzero(scores >= 0.5)
            if target_class == 1
            else np.flatnonzero(scores < 0.5)
        )
        actionable = self.space.actionable_indices()
        for i in range(k):
            if on_target.size and i % 2 == 0:
                donor = self.dataset.X[int(rng.choice(on_target))]
                seeded = instance.copy()
                seeded[actionable] = donor[actionable]
                population[i] = self.space.clip(instance, seeded)
            else:
                population[i] = self._mutate(instance, population[i], rng)
                population[i] = self._mutate(instance, population[i], rng)
        return population

    def _mutate(
        self,
        origin: np.ndarray,
        candidate: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Perturb one actionable feature and project back to feasibility."""
        actionable = self.space.actionable_indices()
        if not actionable:
            raise ValidationError("no actionable features to perturb")
        out = candidate.copy()
        feature = int(rng.choice(actionable))
        spec = self.space.features[feature]
        if spec.is_categorical:
            codes = self.space.category_codes[feature]
            out[feature] = float(rng.choice(codes))
        else:
            span = self.space.upper[feature] - self.space.lower[feature]
            out[feature] += rng.normal(0.0, self.step_scale * max(span, 1e-9) / 4)
        return self.space.clip(origin, out)

    def _loss(
        self, population: np.ndarray, instance: np.ndarray, target_class: int
    ) -> float:
        """The DiCE objective (lower is better)."""
        scores = np.asarray(self.predict_fn(population), dtype=float)
        target_probability = scores if target_class == 1 else 1.0 - scores
        # validity dominates: an invalid member costs far more than any
        # proximity/diversity trade-off can recoup (DiCE's y-loss priority)
        validity_loss = 10.0 * float(
            np.mean(np.maximum(0.0, 0.55 - target_probability))
        )
        proximity = float(
            np.mean(
                [mad_distance(instance, row, self.space.mad) for row in population]
            )
        )
        k = population.shape[0]
        if k > 1:
            pair_distances = [
                mad_distance(population[i], population[j], self.space.mad)
                for i in range(k)
                for j in range(i + 1, k)
            ]
            diversity = float(np.mean(pair_distances))
        else:
            diversity = 0.0
        normaliser = max(self.space.n_features, 1)
        return (
            validity_loss
            + self.proximity_weight * proximity / normaliser
            - self.diversity_weight * diversity / normaliser
        )
