"""Gradient-based attributions for differentiable models (tutorial §2.4).

These are the tabular analogues of saliency maps:

- :func:`saliency` — the raw input gradient of the class score;
- :func:`gradient_times_input` — multiplied by the input (first-order
  completeness heuristic);
- :func:`integrated_gradients` — path integral from a baseline, whose
  attributions provably sum to ``f(x) - f(baseline)`` (completeness);
- :func:`smoothgrad` — noise-averaged saliency, the standard variance
  reduction for fragile raw gradients.

Their fragility is exactly what the sanity-check experiment (E20)
demonstrates via :meth:`MLPClassifier.randomize_parameters`, and the
targeted fragility attack (:mod:`xaidb.attacks.fragility`) exploits.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import FeatureAttribution
from xaidb.models.mlp import MLPClassifier
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_positive

__all__ = [
    "saliency",
    "gradient_times_input",
    "integrated_gradients",
    "smoothgrad",
]


def saliency(
    model: MLPClassifier,
    instance: np.ndarray,
    *,
    class_index: int = 1,
    feature_names: list[str] | None = None,
) -> FeatureAttribution:
    """Absolute input gradient of the class probability (saliency map)."""
    instance = check_array(instance, name="instance", ndim=1)
    gradient = model.input_gradient(instance, class_index)
    names = feature_names or [f"x{i}" for i in range(len(instance))]
    probability = float(model.predict_proba(instance[None, :])[0, class_index])
    return FeatureAttribution(
        feature_names=list(names),
        values=np.abs(gradient),
        base_value=0.0,
        prediction=probability,
        metadata={"method": "saliency", "class_index": class_index},
    )


def gradient_times_input(
    model: MLPClassifier,
    instance: np.ndarray,
    *,
    class_index: int = 1,
    baseline: np.ndarray | None = None,
    feature_names: list[str] | None = None,
) -> FeatureAttribution:
    """Gradient x (input - baseline) attribution.

    With a zero baseline this is the classic gradient*input heuristic; a
    data-mean baseline gives a crude one-step integrated-gradients
    approximation.
    """
    instance = check_array(instance, name="instance", ndim=1)
    reference = (
        np.zeros_like(instance)
        if baseline is None
        else check_array(baseline, name="baseline", ndim=1)
    )
    gradient = model.input_gradient(instance, class_index)
    names = feature_names or [f"x{i}" for i in range(len(instance))]
    probability = float(model.predict_proba(instance[None, :])[0, class_index])
    return FeatureAttribution(
        feature_names=list(names),
        values=gradient * (instance - reference),
        base_value=0.0,
        prediction=probability,
        metadata={"method": "gradient_times_input", "class_index": class_index},
    )


def integrated_gradients(
    model: MLPClassifier,
    instance: np.ndarray,
    *,
    baseline: np.ndarray | None = None,
    class_index: int = 1,
    n_steps: int = 50,
    feature_names: list[str] | None = None,
) -> FeatureAttribution:
    """Integrated gradients (Sundararajan et al. 2017).

    Averages the input gradient along the straight path from ``baseline``
    to ``instance`` and multiplies by the displacement.  By the gradient
    theorem the attributions sum to ``f(instance) - f(baseline)`` up to
    Riemann-sum error (tested), restoring the completeness property raw
    saliency lacks.
    """
    instance = check_array(instance, name="instance", ndim=1)
    reference = (
        np.zeros_like(instance)
        if baseline is None
        else check_array(baseline, name="baseline", ndim=1)
    )
    if n_steps < 2:
        raise ValidationError("n_steps must be >= 2")
    # midpoint rule along the path
    alphas = (np.arange(n_steps) + 0.5) / n_steps
    total_gradient = np.zeros_like(instance)
    for alpha in alphas:
        point = reference + alpha * (instance - reference)
        total_gradient += model.input_gradient(point, class_index)
    average_gradient = total_gradient / n_steps
    values = average_gradient * (instance - reference)
    names = feature_names or [f"x{i}" for i in range(len(instance))]
    probability = float(model.predict_proba(instance[None, :])[0, class_index])
    base_probability = float(
        model.predict_proba(reference[None, :])[0, class_index]
    )
    return FeatureAttribution(
        feature_names=list(names),
        values=values,
        base_value=base_probability,
        prediction=probability,
        metadata={"method": "integrated_gradients", "n_steps": n_steps},
    )


def smoothgrad(
    model: MLPClassifier,
    instance: np.ndarray,
    *,
    class_index: int = 1,
    noise_scale: float = 0.15,
    n_samples: int = 25,
    feature_names: list[str] | None = None,
    random_state: RandomState = None,
) -> FeatureAttribution:
    """SmoothGrad (Smilkov et al. 2017): saliency averaged over Gaussian
    neighbours of the input.  Reduces the attribution variance that makes
    raw gradients fragile — the mitigation usually paired with the
    fragility critique the tutorial cites."""
    instance = check_array(instance, name="instance", ndim=1)
    check_positive(noise_scale, name="noise_scale")
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1")
    rng = check_random_state(random_state)
    total = np.zeros_like(instance)
    for __ in range(n_samples):
        noisy = instance + rng.normal(0.0, noise_scale, size=instance.shape)
        total += np.abs(model.input_gradient(noisy, class_index))
    names = feature_names or [f"x{i}" for i in range(len(instance))]
    probability = float(model.predict_proba(instance[None, :])[0, class_index])
    return FeatureAttribution(
        feature_names=list(names),
        values=total / n_samples,
        base_value=0.0,
        prediction=probability,
        metadata={
            "method": "smoothgrad",
            "noise_scale": noise_scale,
            "n_samples": n_samples,
        },
    )
