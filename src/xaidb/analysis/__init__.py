"""xailint — xaidb's self-hosted static-analysis pass.

The tutorial's central warning (PAPER.md §2) is that explanations lose
validity silently: unseeded randomness, hidden library behaviour and
impure explainers make a reproduction drift from the results it claims
to match without any test failing.  This package turns the repo's
scientific-correctness conventions into machine-checked invariants
(rule ids XDB001–XDB009, documented in ``docs/LINTING.md``) that gate
every PR via ``tests/analysis/test_lint_clean.py``.

Programmatic use::

    from xaidb.analysis import run_paths

    result = run_paths(["src", "benchmarks"])
    assert result.ok, [str(f) for f in result.findings]

Command line::

    python -m xaidb.analysis src benchmarks examples tools
"""

from xaidb.analysis.engine import discover_files, lint_source, run_paths
from xaidb.analysis.findings import Finding, LintResult
from xaidb.analysis.registry import (
    FileRule,
    ProjectRule,
    Rule,
    all_rules,
    register,
    rules_by_id,
)
from xaidb.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "FileRule",
    "ProjectRule",
    "register",
    "all_rules",
    "rules_by_id",
    "discover_files",
    "lint_source",
    "run_paths",
    "render_text",
    "render_json",
    "JSON_SCHEMA_VERSION",
]
