"""Cooperative games over feature coalitions.

Every Shapley estimator in xaidb evaluates a :class:`Game`: a value
function ``v(S)`` over subsets of ``n_players`` feature indices.  The
central instance is :class:`MarginalImputationGame` — SHAP's
interventional value function ``v(S) = E_z[f(x_S, z_{~S})]`` where
missing features are imputed from background data — but tests also plug
in analytic games (voting games, gloves games) with known closed-form
Shapley values.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import PredictFn
from xaidb.utils.validation import check_array

__all__ = ["Game", "FunctionGame", "CachedGame", "MarginalImputationGame"]


class Game:
    """A cooperative game: a value function over coalitions of players.

    Subclasses implement :meth:`value`; ``n_players`` is the ground set
    size.  Coalitions are passed as iterables of integer player indices.
    """

    #: True on wrappers that already memoise values (``CachedGame``,
    #: :class:`xaidb.runtime.GameRuntime`); estimators must not re-wrap
    #: such games in another memo layer (it would starve the inner
    #: cache's hit accounting).
    provides_cache = False

    def __init__(self, n_players: int) -> None:
        if n_players < 1:
            raise ValidationError("a game needs at least one player")
        self.n_players = n_players

    def value(self, coalition: Iterable[int]) -> float:
        raise NotImplementedError

    def grand_value(self) -> float:
        """``v(N)`` — the payoff of the full coalition."""
        return self.value(range(self.n_players))

    def empty_value(self) -> float:
        """``v(∅)`` — the base payoff."""
        return self.value(())


class FunctionGame(Game):
    """Wrap a plain callable ``v(frozenset) -> float`` as a game."""

    def __init__(self, n_players: int, func: Callable[[frozenset], float]) -> None:
        super().__init__(n_players)
        self._func = func

    def value(self, coalition: Iterable[int]) -> float:
        return float(self._func(frozenset(coalition)))


class CachedGame(Game):
    """Memoising wrapper: exact enumeration and KernelSHAP both revisit
    coalitions, and Monte-Carlo games are expensive to evaluate."""

    provides_cache = True

    def __init__(self, inner: Game) -> None:
        super().__init__(inner.n_players)
        self.inner = inner
        self._cache: dict[frozenset, float] = {}

    def value(self, coalition: Iterable[int]) -> float:
        key = frozenset(coalition)
        if key not in self._cache:
            self._cache[key] = float(self.inner.value(key))
        return self._cache[key]

    @property
    def n_evaluations(self) -> int:
        """Distinct coalitions evaluated so far."""
        return len(self._cache)


class MarginalImputationGame(Game):
    """SHAP's interventional value function.

    ``v(S)`` replaces the features *outside* ``S`` with values from each
    background row, averages the model output over the background set, and
    returns that expectation.  With the full coalition this is exactly
    ``f(x)``; with the empty coalition it is the mean background
    prediction — so Shapley values of this game satisfy local accuracy
    around those two anchors.

    Parameters
    ----------
    predict_fn:
        Scalar-output model function.
    instance:
        The input being explained, shape ``(d,)``.
    background:
        Reference rows used to impute "absent" features, shape ``(m, d)``.
    """

    def __init__(
        self,
        predict_fn: PredictFn,
        instance: np.ndarray,
        background: np.ndarray,
    ) -> None:
        instance = check_array(instance, name="instance", ndim=1)
        background = check_array(background, name="background", ndim=2)
        if background.shape[1] != instance.shape[0]:
            raise ValidationError(
                f"background has {background.shape[1]} columns, instance "
                f"has {instance.shape[0]}"
            )
        super().__init__(instance.shape[0])
        self.predict_fn = predict_fn
        self.instance = instance
        self.background = background

    def value(self, coalition: Iterable[int]) -> float:
        present = sorted(set(coalition))
        if any(not 0 <= i < self.n_players for i in present):
            raise ValidationError("coalition contains invalid player index")
        hybrid = self.background.copy()
        if present:
            hybrid[:, present] = self.instance[present]
        return float(np.mean(self.predict_fn(hybrid)))

    def values_batch(
        self, masks: np.ndarray, *, max_batch_rows: int | None = None
    ) -> np.ndarray:
        """Evaluate many coalitions at once.

        ``masks`` is a ``(n_coalitions, d)`` boolean matrix (True = feature
        present).  Hybrid rows are scored in as few ``predict_fn`` calls
        as ``max_batch_rows`` allows — batching is the difference between
        KernelSHAP being usable and not on slow models, while the row
        bound keeps peak memory at ``max_batch_rows × d`` instead of
        ``n_coalitions × m × d``.

        Parameters
        ----------
        masks:
            Boolean coalition matrix, shape ``(n_coalitions, d)``.
        max_batch_rows:
            Upper bound on hybrid rows materialised per model call
            (``None`` = single call, the historical behaviour).  Each
            coalition's mean is reduced per row, so results are
            bit-identical for every chunking.
        """
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim != 2 or masks.shape[1] != self.n_players:
            raise ValidationError(
                f"masks must have shape (n, {self.n_players})"
            )
        n, m = masks.shape[0], self.background.shape[0]
        if max_batch_rows is None:
            chunk = max(n, 1)
        else:
            if max_batch_rows < 1:
                raise ValidationError("max_batch_rows must be >= 1 or None")
            chunk = max(1, int(max_batch_rows) // m)
        means = np.empty(n)
        for start in range(0, n, chunk):
            block = masks[start : start + chunk]
            hybrid = np.where(
                block[:, None, :],
                self.instance[None, None, :],
                self.background[None, :, :],
            )
            flat = hybrid.reshape(block.shape[0] * m, self.n_players)
            # xailint: disable=XDB009 (this loop IS the substrate: one chunked call per max_batch_rows window)
            scores = np.asarray(self.predict_fn(flat), dtype=float)
            means[start : start + chunk] = scores.reshape(
                block.shape[0], m
            ).mean(axis=1)
        return means
