"""XDB009 clean fixture: batched evaluation, loop-free predict_fn use."""

import numpy as np

__all__ = ["batched_explainer", "BatchedExplainer"]


def batched_explainer(predict_fn, masks: np.ndarray) -> np.ndarray:
    # one call on the stacked batch: the runtime can chunk and memoise it
    return np.asarray(predict_fn(masks), dtype=float)


def make_scorer(predict_fn):
    for _ in range(3):
        # a helper *defined* inside a loop is not a per-iteration call
        def score(rows: np.ndarray) -> np.ndarray:
            return np.asarray(predict_fn(rows), dtype=float)

    return score


class BatchedExplainer:
    def __init__(self, predict_fn) -> None:
        self.predict_fn = predict_fn

    def explain(self, rows: np.ndarray) -> np.ndarray:
        predictions = np.asarray(self.predict_fn(rows), dtype=float)
        totals = []
        for row in predictions:  # looping over *results* is fine
            totals.append(float(np.sum(row)))
        return np.asarray(totals)
