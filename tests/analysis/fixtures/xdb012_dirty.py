"""Dirty fixture for XDB012: stale, reason-less and dangling
suppressions.  The mutable default below is the only real violation;
every comment here mis-handles it one way or another."""

__all__ = ["f", "g"]

x = 1.5  # xailint: disable=XDB006 (stale: nothing compares floats here)


def f(a, bucket=[]):  # xailint: disable=XDB007
    return bucket + [a]


def g(a):
    return a


# xailint: disable=XDB002 (dangling: no code line follows)
