"""Engine behaviour: discovery, suppressions, rule selection, parse errors."""

from __future__ import annotations

import pytest

from xaidb.analysis import lint_source, run_paths
from xaidb.analysis.engine import PARSE_ERROR_ID, discover_files
from xaidb.analysis.suppressions import parse_suppressions

DIRTY = "def f(x, bucket=[]):\n    return bucket\n"


class TestSuppressions:
    def test_inline_suppression_silences_finding(self):
        source = (
            "def f(x, bucket=[]):  "
            "# xailint: disable=XDB007 (fixture)\n    return bucket\n"
        )
        result = lint_source(source)
        assert not result.findings
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule_id == "XDB007"

    def test_standalone_comment_suppresses_next_line(self):
        source = (
            "# xailint: disable=XDB007 (fixture)\n"
            "def f(x, bucket=[]):\n    return bucket\n"
        )
        result = lint_source(source)
        assert not result.findings
        assert len(result.suppressed) == 1

    def test_unrelated_rule_id_does_not_suppress(self):
        source = (
            "def f(x, bucket=[]):  "
            "# xailint: disable=XDB006 (fixture)\n    return bucket\n"
        )
        result = lint_source(source)
        # the XDB007 finding survives, and the XDB006 suppression is
        # itself reported stale by XDB012
        assert sorted(f.rule_id for f in result.findings) == [
            "XDB007",
            "XDB012",
        ]

    def test_multiple_ids_one_comment(self):
        source = (
            "def f(x, bucket=[]):  "
            "# xailint: disable=XDB006,XDB007 (fixture)\n    return bucket\n"
        )
        result = lint_source(source)
        # XDB007 suppressed; the unused XDB006 half is stale (XDB012)
        assert [f.rule_id for f in result.findings] == ["XDB012"]
        assert [f.rule_id for f in result.suppressed] == ["XDB007"]

    def test_standalone_comment_at_eof_surfaces_as_dangling(self):
        # previously this comment fell through parse_suppressions and
        # vanished; now it parses with no target line and XDB012 flags it
        source = "x = 1\n# xailint: disable=XDB005 (dangling)\n"
        index = parse_suppressions(source)
        assert len(index) == 1
        assert index.entries[0].target_line is None
        result = lint_source(source)
        assert [f.rule_id for f in result.findings] == ["XDB012"]
        assert "not followed by any code line" in result.findings[0].message

    def test_reason_string_is_optional_but_parsed(self):
        index = parse_suppressions(
            "x = 1  # xailint: disable=XDB006 (labels are exact)\n"
        )
        assert index.is_suppressed(1, "XDB006")
        assert not index.is_suppressed(1, "XDB001")

    def test_comment_inside_string_is_not_a_suppression(self):
        index = parse_suppressions(
            's = "# xailint: disable=XDB006"\n'
        )
        assert len(index) == 0


class TestEngine:
    def test_ok_property(self):
        assert lint_source("x = 1\n").ok
        assert not lint_source(DIRTY).ok

    def test_syntax_error_becomes_parse_finding(self):
        result = lint_source("def broken(:\n")
        assert [f.rule_id for f in result.findings] == [PARSE_ERROR_ID]
        assert not result.ok

    def test_rule_subset_selection(self):
        result = lint_source(DIRTY, rule_ids=["XDB001"])
        assert not result.findings  # XDB007 not in the active set

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", rule_ids=["XDB999"])

    def test_discover_and_run_paths(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "dirty.py").write_text(DIRTY)
        (tmp_path / "pkg" / "clean.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python")
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x=1\n")

        files = discover_files([tmp_path])
        assert [p.name for p in files] == ["clean.py", "dirty.py"]

        result = run_paths([tmp_path], root=tmp_path)
        assert result.files_scanned == 2
        assert [f.rule_id for f in result.findings] == ["XDB007"]
        assert result.findings[0].path.endswith("dirty.py")

    def test_findings_sorted_by_location(self):
        source = (
            "def g(a, b={}):\n    return b\n"
            "def f(x, bucket=[]):\n    return bucket\n"
        )
        result = lint_source(source)
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines)
