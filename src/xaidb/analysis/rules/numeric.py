"""XDB023–XDB027 — the numeric-safety rule tier.

The interval tier answers the questions the shape/alias/concurrency
tiers cannot: *which values* flow where.  All five rules ride the
:class:`~xaidb.analysis.intervals.IntervalAnalysis` fixpoint (widened,
branch-refined) memoised on the scan's
:class:`~xaidb.analysis.summaries.InterprocAnalysis`, plus the
``param_preconditions`` its pass E exports for cross-boundary checks:

- **XDB023 division-by-possible-zero** — a denominator whose interval
  provably contains 0 on some path, with no epsilon/``np.maximum``
  guard dominating the division (a guard lifts the interval's lower
  bound, so guarded sites carry no zero in their evidence); also fired
  at call sites that bind a possibly-zero argument to a callee
  parameter the callee divides by.
- **XDB024 log-sqrt-domain-violation** — a ``log`` argument whose
  interval reaches ≤ 0 (``log1p``: ≤ −1) or a ``sqrt`` argument whose
  interval reaches < 0, in-function or through a callee precondition.
- **XDB025 empty-or-degenerate-reduction** — ``mean``/``std``/``min``…
  over a provably length-0 array, or ``std``/``var`` whose ``ddof``
  provably reaches the sample count.
- **XDB026 unnormalized-probability** — a value provably outside
  ``[0, 1]`` returned from a ``predict_proba``-shaped function or bound
  to a ``p=``/``weights=`` probability argument.
- **XDB027 unguarded-reciprocal-scale** — the ``1.0 / x`` scale-factor
  idiom where ``x``'s interval contains 0 and no clamp dominates (the
  constant-numerator sibling of XDB023, split out because the fix is
  different: clamp the scale's denominator, don't guard the division).

Every rule is silent-unless-provable: evidence must carry at least one
finite bound (:func:`~xaidb.analysis.intervals.informative`), so ⊤
values, unresolved calls and unguarded parameters can never support a
finding — the witness in each message is the offending interval itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.dataflow import State, item_exprs, replay
from xaidb.analysis.findings import Finding
from xaidb.analysis.intervals import (
    EMPTY_UNSAFE_REDUCTIONS,
    AbstractNum,
    Interval,
    IntervalAnalysis,
    informative,
    params_of,
    values_of,
)
from xaidb.analysis.registry import (
    FileContext,
    ProjectContext,
    ProjectRule,
    register,
)
from xaidb.analysis.rules.interproc import _package_functions
from xaidb.analysis.summaries import InterprocAnalysis, map_arguments

__all__ = [
    "DivisionByPossibleZeroRule",
    "LogSqrtDomainRule",
    "DegenerateReductionRule",
    "UnnormalizedProbabilityRule",
    "ReciprocalScaleRule",
]

_DIV_OPS = (ast.Div, ast.FloorDiv, ast.Mod)

#: ``log``-family spellings and the bound their argument must clear
#: (exclusive zero for ``log``, −1 for ``log1p``); ``sqrt`` is handled
#: separately because its bound is inclusive (``sqrt(0)`` is fine).
_LOG_BOUNDS = {"log": 0.0, "log2": 0.0, "log10": 0.0, "log1p": -1.0}

_PROBABILITY_KWARGS = {"p", "weights"}


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _is_math_call(call: ast.Call, names: frozenset[str]) -> bool:
    """``np.log(x)`` / ``numpy.log(x)`` / ``math.log(x)`` spellings."""
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in names
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy", "math")
    )


def _zero_witness(values: list[AbstractNum]) -> AbstractNum | None:
    """The first informative member whose range contains 0."""
    for value in values:
        if informative(value) and value.rng.contains_zero():
            return value
    return None


def _bound_witness(
    values: list[AbstractNum], bound: float, inclusive: bool
) -> AbstractNum | None:
    """The first informative member reaching below ``bound`` (``≤``
    when ``inclusive``, ``<`` otherwise).  A may-be-NaN flag alone is
    no violation: NaN in means NaN out, but no *new* domain error."""
    for value in values:
        if not informative(value):
            continue
        below = (
            value.rng.lo <= bound if inclusive else value.rng.lo < bound
        )
        if below:
            return value
    return None


def _outside_unit(values: list[AbstractNum]) -> AbstractNum | None:
    """The first informative member provably outside ``[0, 1]``."""
    for value in values:
        if not informative(value):
            continue
        if value.rng.hi < 0.0 or value.rng.lo > 1.0:
            return value
    return None


def _reduction_operand(call: ast.Call) -> ast.AST | None:
    """The reduced array of a full (axis-less) reduction, spelled
    either ``np.mean(x)`` or ``x.mean()`` — ``None`` when an axis is
    given (a partial reduction keeps the other dims' elements)."""
    name = _call_name(call)
    if name not in EMPTY_UNSAFE_REDUCTIONS:
        return None
    if any(kw.arg == "axis" for kw in call.keywords):
        return None
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name) and func.value.id in (
        "np",
        "numpy",
    ):
        if len(call.args) != 1:
            return None  # positional axis (or nothing to reduce)
        return call.args[0]
    if call.args:
        return None  # method form with a positional axis
    return func.value


def _ddof_node(call: ast.Call) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == "ddof":
            return kw.value
    return None


class _IntervalRule(ProjectRule):
    """Shared driver: replay every package function under the memoised
    interval solution, calling :meth:`visit_node` once per expression
    node with the pre-transfer state."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for interproc, ctx, fnode in _package_functions(project):
            if not self.prefilter(fnode.node):
                continue
            yield from self._check_function(interproc, ctx, fnode)

    def prefilter(self, fn: ast.AST) -> bool:  # pragma: no cover
        raise NotImplementedError

    def visit_node(
        self,
        node: ast.AST,
        state: State,
        problem: IntervalAnalysis,
        interproc: InterprocAnalysis,
        ctx: FileContext,
        fnode,
    ) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def _check_function(
        self, interproc: InterprocAnalysis, ctx: FileContext, fnode
    ) -> Iterator[Finding]:
        cfg, problem, in_states = interproc.solution(
            "interval", fnode.qualname
        )
        findings: list[Finding] = []
        seen: set[int] = set()

        def visit_one(node: ast.AST, state: State) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            findings.extend(
                self.visit_node(
                    node, state, problem, interproc, ctx, fnode
                )
            )

        def walk(node: ast.AST, state: State) -> None:
            """Recursive walk that threads conditional-expression
            refinement: the body of ``x / n if n else 0.0`` is visited
            under the state where ``n`` held, exactly as
            :meth:`IntervalAnalysis.eval_expr` evaluates it."""
            visit_one(node, state)
            if isinstance(node, ast.IfExp):
                walk(node.test, state)
                walk(node.body, problem.refine_state(state, node.test, True))
                walk(
                    node.orelse,
                    problem.refine_state(state, node.test, False),
                )
                return
            if isinstance(node, ast.BoolOp):
                current = state
                sense = isinstance(node.op, ast.And)
                for operand in node.values:
                    walk(operand, current)
                    current = problem.refine_state(
                        current, operand, sense
                    )
                return
            for child in ast.iter_child_nodes(node):
                walk(child, state)

        def visit(item: ast.AST, state: State) -> None:
            roots = list(item_exprs(item))
            if isinstance(item, ast.AugAssign):
                visit_one(item, state)  # x /= denom has no nested BinOp
            for root in roots:
                walk(root, state)

        replay(cfg, problem, in_states, visit)
        yield from findings


def _division_operands(
    node: ast.AST,
) -> tuple[ast.AST | None, ast.AST] | None:
    """``(numerator, denominator)`` of a division-family node —
    ``BinOp`` or ``AugAssign`` (whose numerator is the target)."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, _DIV_OPS):
        return node.left, node.right
    if isinstance(node, ast.AugAssign) and isinstance(node.op, _DIV_OPS):
        return None, node.value
    return None


def _is_numeric_constant(node: ast.AST | None) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_numeric_constant(node.operand)
    )


def _precondition_hits(
    node: ast.AST,
    state: State,
    problem: IntervalAnalysis,
    interproc: InterprocAnalysis,
    kinds: frozenset[str],
):
    """Yield ``(param, kind, line, callee, witness)`` for every callee
    precondition of an interesting ``kind`` that the call site's bound
    argument provably may violate."""
    if not isinstance(node, ast.Call):
        return
    site = interproc.graph.callsites.get(id(node))
    if site is None:
        return
    for qualname in site.candidates:
        summary = interproc.summaries.get(qualname)
        if summary is None or not summary.param_preconditions:
            continue
        mapping = map_arguments(site, summary)
        for entry in summary.param_preconditions:
            param, _, rest = entry.partition("|")
            kind, _, line = rest.partition("|")
            if kind not in kinds:
                continue
            arg = mapping.get(param)
            if arg is None:
                continue
            values = values_of(problem.eval_expr(arg, state))
            if kind == "nonzero":
                witness = _zero_witness(values)
            elif kind == "positive":
                witness = _bound_witness(values, 0.0, inclusive=True)
            else:  # nonnegative
                witness = _bound_witness(values, 0.0, inclusive=False)
            if witness is not None:
                yield param, kind, line, qualname, witness


def _has_division(fn: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.BinOp, ast.AugAssign))
        and isinstance(node.op, _DIV_OPS)
        for node in ast.walk(fn)
    )


def _has_calls(fn: ast.AST) -> bool:
    return any(isinstance(node, ast.Call) for node in ast.walk(fn))


@register
class DivisionByPossibleZeroRule(_IntervalRule):
    rule_id = "XDB023"
    symbol = "division-by-possible-zero"
    description = (
        "A denominator's interval provably contains 0 on some path and "
        "no epsilon or np.maximum guard dominates the division (a "
        "dominating guard lifts the proven lower bound away from 0); "
        "the quotient poisons downstream attributions with inf/NaN. "
        "Also fired at call sites binding a possibly-zero argument to "
        "a parameter the callee divides by."
    )

    def prefilter(self, fn: ast.AST) -> bool:
        return _has_division(fn) or _has_calls(fn)

    def visit_node(self, node, state, problem, interproc, ctx, fnode):
        operands = _division_operands(node)
        if operands is not None:
            numerator, denominator = operands
            if _is_numeric_constant(numerator):
                return  # constant-numerator scales are XDB027's
            values = values_of(problem.eval_expr(denominator, state))
            witness = _zero_witness(values)
            if witness is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"denominator can be 0 (proven range "
                    f"{witness.rng}); guard the zero case or clamp "
                    f"with np.maximum(denom, eps)",
                )
            return
        for param, _kind, line, callee, witness in _precondition_hits(
            node, state, problem, interproc, frozenset({"nonzero"})
        ):
            yield ctx.finding(
                self,
                node,
                f"argument '{param}' can be 0 (proven range "
                f"{witness.rng}) but {callee} divides by it "
                f"(line {line}); guard the zero case before the call",
            )


@register
class LogSqrtDomainRule(_IntervalRule):
    rule_id = "XDB024"
    symbol = "log-sqrt-domain-violation"
    description = (
        "A log argument's interval provably reaches <= 0 (log1p: "
        "<= -1) or a sqrt argument's reaches < 0: the result is "
        "-inf/NaN on a provable path, and NaN attributions rank as "
        "garbage. Also fired at call sites binding such an argument "
        "to a parameter the callee passes into log/sqrt."
    )

    def prefilter(self, fn: ast.AST) -> bool:
        return any(
            isinstance(node, ast.Attribute)
            and node.attr in (*_LOG_BOUNDS, "sqrt")
            for node in ast.walk(fn)
        ) or _has_calls(fn)

    def visit_node(self, node, state, problem, interproc, ctx, fnode):
        if isinstance(node, ast.Call) and node.args:
            name = _call_name(node)
            if name in _LOG_BOUNDS and _is_math_call(
                node, frozenset(_LOG_BOUNDS)
            ):
                values = values_of(
                    problem.eval_expr(node.args[0], state)
                )
                witness = _bound_witness(
                    values, _LOG_BOUNDS[name], inclusive=True
                )
                if witness is not None:
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() argument can reach "
                        f"{'-1' if name == 'log1p' else '0'} or below "
                        f"(proven range {witness.rng}); clamp with "
                        f"np.maximum(x, eps) first",
                    )
                return
            if name == "sqrt" and _is_math_call(
                node, frozenset({"sqrt"})
            ):
                values = values_of(
                    problem.eval_expr(node.args[0], state)
                )
                witness = _bound_witness(values, 0.0, inclusive=False)
                if witness is not None:
                    yield ctx.finding(
                        self,
                        node,
                        f"sqrt() argument can be negative (proven "
                        f"range {witness.rng}); clip to 0 first",
                    )
                return
        for param, kind, line, callee, witness in _precondition_hits(
            node,
            state,
            problem,
            interproc,
            frozenset({"positive", "nonnegative"}),
        ):
            requirement = (
                "positive" if kind == "positive" else "nonnegative"
            )
            yield ctx.finding(
                self,
                node,
                f"argument '{param}' must be {requirement} (proven "
                f"range {witness.rng}) — {callee} passes it into "
                f"log/sqrt (line {line})",
            )


@register
class DegenerateReductionRule(_IntervalRule):
    rule_id = "XDB025"
    symbol = "empty-or-degenerate-reduction"
    description = (
        "A mean/std/min-style reduction runs over a provably length-0 "
        "array (numpy raises or returns NaN with a warning), or "
        "std/var is computed with ddof provably >= the sample count "
        "(the corrected variance of too few samples is NaN)."
    )

    def prefilter(self, fn: ast.AST) -> bool:
        return any(
            isinstance(node, ast.Attribute)
            and node.attr in EMPTY_UNSAFE_REDUCTIONS
            for node in ast.walk(fn)
        )

    def visit_node(self, node, state, problem, interproc, ctx, fnode):
        if not isinstance(node, ast.Call):
            return
        operand = _reduction_operand(node)
        if operand is None:
            return
        name = _call_name(node)
        # Emptiness is a *must* property: every path's member needs a
        # proven size, and the hull of those sizes has to stay at 0 —
        # an any-path check would flag the zero-iteration member of
        # every `xs = []; for ...: xs.append(...)` loop.
        labels = problem.eval_expr(operand, state)
        if params_of(labels):
            return
        sized = [v for v in values_of(labels) if v.size is not None]
        if not sized or len(sized) != len(values_of(labels)):
            return
        size = Interval(
            min(v.size.lo for v in sized),
            max(v.size.hi for v in sized),
            False,
        )
        if size.hi <= 0.0:
            yield ctx.finding(
                self,
                node,
                f"{name}() reduces a provably empty array "
                f"(proven length {size}); reductions of "
                f"nothing are NaN — handle the empty case first",
            )
            return
        if name in ("std", "var"):
            ddof_expr = _ddof_node(node)
            if ddof_expr is None:
                return
            ddof = problem.hull(
                problem.eval_expr(ddof_expr, state)
            ).rng
            if size.hi != float("inf") and ddof.lo >= size.hi:
                yield ctx.finding(
                    self,
                    node,
                    f"{name}(ddof={ddof}) over a sample of "
                    f"proven length {size}: the corrected "
                    f"denominator n - ddof reaches 0, so the "
                    f"result is NaN; require more samples or "
                    f"drop ddof",
                )


@register
class UnnormalizedProbabilityRule(_IntervalRule):
    rule_id = "XDB026"
    symbol = "unnormalized-probability"
    description = (
        "A value provably outside [0, 1] flows where a probability is "
        "required: a predict_proba-shaped return, a p= sampling "
        "weight, or a weights= normalization argument. The consumer "
        "either raises or silently mis-normalizes the distribution."
    )

    def prefilter(self, fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith("predict_proba"):
                return True
            if isinstance(node, ast.Call) and any(
                kw.arg in _PROBABILITY_KWARGS for kw in node.keywords
            ):
                return True
        return False

    def visit_node(self, node, state, problem, interproc, ctx, fnode):
        if not isinstance(node, ast.Call):
            return
        for kw in node.keywords:
            if kw.arg not in _PROBABILITY_KWARGS:
                continue
            values = values_of(problem.eval_expr(kw.value, state))
            witness = _outside_unit(values)
            if witness is not None:
                yield ctx.finding(
                    self,
                    node,
                    f"{kw.arg}= argument of {_call_name(node)}() is "
                    f"provably outside [0, 1] (proven range "
                    f"{witness.rng}); normalize the weights first",
                )

    def _check_function(self, interproc, ctx, fnode):
        yield from super()._check_function(interproc, ctx, fnode)
        if not fnode.node.name.startswith("predict_proba"):
            return
        cfg, problem, in_states = interproc.solution(
            "interval", fnode.qualname
        )
        findings: list[Finding] = []
        seen: set[int] = set()

        def visit(item: ast.AST, state: State) -> None:
            if (
                not isinstance(item, ast.Return)
                or item.value is None
                or id(item) in seen
            ):
                return
            seen.add(id(item))
            values = values_of(problem.eval_expr(item.value, state))
            witness = _outside_unit(values)
            if witness is not None:
                findings.append(
                    ctx.finding(
                        self,
                        item,
                        f"{fnode.node.name} returns a value provably "
                        f"outside [0, 1] (proven range {witness.rng}); "
                        f"probabilities must be normalized",
                    )
                )

        replay(cfg, problem, in_states, visit)
        yield from findings


@register
class ReciprocalScaleRule(_IntervalRule):
    rule_id = "XDB027"
    symbol = "unguarded-reciprocal-scale"
    description = (
        "A constant-numerator reciprocal (the `scale = 1.0 / x` "
        "idiom for kernel widths, sample counts and cost weights) "
        "whose denominator interval contains 0 with no dominating "
        "clamp: one empty input turns every downstream score into "
        "inf/NaN. Clamp with np.maximum(x, eps) or early-return on "
        "the empty case."
    )

    def prefilter(self, fn: ast.AST) -> bool:
        return _has_division(fn)

    def visit_node(self, node, state, problem, interproc, ctx, fnode):
        operands = _division_operands(node)
        if operands is None:
            return
        numerator, denominator = operands
        if not _is_numeric_constant(numerator):
            return
        values = values_of(problem.eval_expr(denominator, state))
        witness = _zero_witness(values)
        if witness is not None:
            yield ctx.finding(
                self,
                node,
                f"reciprocal scale's denominator can be 0 (proven "
                f"range {witness.rng}); clamp with np.maximum(x, eps) "
                f"or early-return on the empty case",
            )
