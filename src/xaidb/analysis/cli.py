"""Command-line entry point for xailint.

Invocations (all equivalent)::

    python -m xaidb.analysis src benchmarks examples tools
    xailint src benchmarks examples tools      # console script
    python tools/xailint.py                    # repo wrapper

With no paths, the repo-standard scan set (``src``, ``benchmarks``,
``examples``, ``tools``) is used, filtered to directories that exist
under the current working directory.  Exit status: 0 clean, 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from xaidb.analysis.baseline import (
    DEFAULT_BASELINE_FILE,
    BaselineError,
    apply_baseline,
    load_baseline,
)
from xaidb.analysis.engine import run_paths
from xaidb.analysis.explain import render_explanation
from xaidb.analysis.fixes import apply_fixes
from xaidb.analysis.registry import all_rules
from xaidb.analysis.reporters import (
    render_github,
    render_json,
    render_sarif,
    render_stats,
    render_text,
)

__all__ = ["main", "build_parser", "DEFAULT_SCAN_PATHS", "DEFAULT_CACHE_FILE"]

DEFAULT_SCAN_PATHS = ("src", "benchmarks", "examples", "tools")

#: Incremental result cache, relative to the working directory.
DEFAULT_CACHE_FILE = ".xailint_cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xailint",
        description=(
            "Static analysis enforcing xaidb's scientific-correctness "
            "invariants (rule ids XDB001-XDB032; see docs/LINTING.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to scan (default: the repo-standard "
            "set: " + ", ".join(DEFAULT_SCAN_PATHS) + ")"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help=(
            "report format (default: text; sarif for code scanning, "
            "github for workflow ::warning:: annotations)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan the per-file phase out over N worker processes "
            "(default: serial; findings are identical either way)"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rule ids to run, e.g. XDB001,XDB004",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental result cache (full cold scan)",
    )
    parser.add_argument(
        "--cache-file",
        default=DEFAULT_CACHE_FILE,
        help=f"incremental cache location (default: {DEFAULT_CACHE_FILE})",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print cache effectiveness and per-rule timing to stderr "
            "after the report"
        ),
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE_FILE,
        default=None,
        metavar="FILE",
        help=(
            "report and gate only on findings not present in the SARIF "
            f"baseline (default file: {DEFAULT_BASELINE_FILE})"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=DEFAULT_BASELINE_FILE,
        default=None,
        metavar="FILE",
        help=(
            "snapshot the current findings as the SARIF baseline and "
            f"exit 0 (default file: {DEFAULT_BASELINE_FILE})"
        ),
    )
    parser.add_argument(
        "--explain",
        metavar="XDB0NN",
        default=None,
        help=(
            "print one rule's rationale from docs/LINTING.md plus "
            "minimal dirty/clean examples, and exit"
        ),
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=(
            "apply mechanical fixes for the rules that have one "
            "(XDB012: stale/dangling suppressions are removed, "
            "reason-less ones gain a '(reason: TODO)' placeholder) "
            "and exit"
        ),
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help=(
            "with --fix: print the unified diff of the planned fixes "
            "without writing any file"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.symbol}")
            print(f"    {rule.description}")
        return 0

    if args.explain is not None:
        try:
            print(render_explanation(args.explain.strip().upper()))
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        return 0

    paths = list(args.paths)
    if not paths:
        paths = [p for p in DEFAULT_SCAN_PATHS if Path(p).is_dir()]
        if not paths:
            parser.error(
                "no paths given and none of the default scan "
                "directories exist here"
            )
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        # a typo'd path must not let the gate pass vacuously
        parser.error("no such file or directory: " + ", ".join(missing))

    if args.dry_run and not args.fix:
        parser.error("--dry-run only makes sense with --fix")

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]
    cache_path = None if args.no_cache else args.cache_file
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be a positive integer")
    try:
        result = run_paths(
            paths,
            root=Path.cwd(),
            rule_ids=rule_ids,
            cache_path=cache_path,
            jobs=args.jobs,
        )
    except ValueError as exc:  # unknown rule id
        parser.error(str(exc))

    if args.fix:
        report = apply_fixes(
            result.findings, root=Path.cwd(), dry_run=args.dry_run
        )
        if args.dry_run:
            if report.diff:
                print(report.diff, end="")
            print(
                f"xailint: --fix would remove {report.n_removed} and "
                f"rewrite {report.n_rewritten} suppression comment(s) "
                f"in {report.n_files} file(s)"
            )
        else:
            print(
                f"xailint: removed {report.n_removed} and rewrote "
                f"{report.n_rewritten} suppression comment(s) in "
                f"{report.n_files} file(s)"
            )
        return 0

    if args.write_baseline is not None:
        Path(args.write_baseline).write_text(
            render_sarif(result) + "\n", encoding="utf-8"
        )
        print(
            f"xailint: baseline of {len(result.findings)} finding(s) "
            f"written to {args.write_baseline}"
        )
        return 0

    matched = 0
    if args.baseline is not None:
        try:
            result, matched = apply_baseline(
                result, load_baseline(args.baseline)
            )
        except BaselineError as exc:
            parser.error(str(exc))

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    elif args.format == "github":
        print(render_github(result))
    else:
        print(render_text(result))
        if args.baseline is not None:
            print(
                f"xailint: baseline {args.baseline}: {matched} "
                f"finding(s) matched, "
                f"{len(result.findings)} new"
            )
    if args.stats:
        print(render_stats(result), file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
