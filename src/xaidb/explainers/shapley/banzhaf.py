"""Banzhaf values — the other cooperative power index.

Where the Shapley value weights a player's marginal contribution by
coalition size, the Banzhaf value weights all coalitions equally:

    beta_i = (1 / 2^(n-1)) * sum over S not containing i of
             (v(S ∪ {i}) - v(S))

The recent query-answering literature (following the Shapley-of-tuples
line the tutorial cites) studies Banzhaf alongside Shapley because it is
often computationally friendlier and more robust to utility noise.  The
price is the efficiency axiom: Banzhaf values do not generally sum to
``v(N) - v(∅)`` (tests pin down exactly this difference).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Sequence

import numpy as np

from xaidb.db.provenance import Provenance
from xaidb.db.sql_shapley import BooleanQueryGame
from xaidb.exceptions import ValidationError
from xaidb.explainers.shapley.games import CachedGame, Game
from xaidb.utils.rng import RandomState, check_random_state

__all__ = [
    "banzhaf_values",
    "banzhaf_values_sampled",
    "banzhaf_of_tuples_boolean",
]

_MAX_EXACT_PLAYERS = 20


def banzhaf_values(game: Game) -> np.ndarray:
    """Exact Banzhaf values by coalition enumeration (O(2^n))."""
    n = game.n_players
    if n > _MAX_EXACT_PLAYERS:
        raise ValidationError(
            f"exact Banzhaf over {n} players is intractable "
            f"(limit {_MAX_EXACT_PLAYERS}); use banzhaf_values_sampled"
        )
    cached = game if isinstance(game, CachedGame) else CachedGame(game)
    players = list(range(n))
    beta = np.zeros(n)
    denominator = 2.0 ** (n - 1)
    for player in players:
        others = [p for p in players if p != player]
        for size in range(n):
            for subset in combinations(others, size):
                beta[player] += (
                    cached.value(subset + (player,)) - cached.value(subset)
                )
    return beta / denominator


def banzhaf_values_sampled(
    game: Game,
    n_samples: int = 500,
    *,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo Banzhaf: sample uniform coalitions, average marginal
    contributions.  Returns (values, standard errors)."""
    if n_samples < 1:
        raise ValidationError("n_samples must be >= 1")
    rng = check_random_state(random_state)
    cached = game if isinstance(game, CachedGame) else CachedGame(game)
    n = game.n_players
    samples = np.zeros((n_samples, n))
    for s in range(n_samples):
        mask = rng.random(n) < 0.5
        for player in range(n):
            coalition = [p for p in range(n) if mask[p] and p != player]
            samples[s, player] = cached.value(
                coalition + [player]
            ) - cached.value(coalition)
    values = samples.mean(axis=0)
    if n_samples > 1:
        errors = samples.std(axis=0, ddof=1) / np.sqrt(n_samples)
    else:
        errors = np.full(n, np.nan)
    return values, errors


def banzhaf_of_tuples_boolean(
    provenance: Provenance,
    endogenous: Sequence[Hashable],
    *,
    exogenous=(),
    n_samples: int | None = None,
    random_state: RandomState = None,
) -> dict[Hashable, float]:
    """Banzhaf value of each endogenous tuple for a boolean query answer —
    the power-index alternative to
    :func:`xaidb.db.sql_shapley.shapley_of_tuples_boolean`."""
    if not endogenous:
        raise ValidationError("endogenous tuple list is empty")
    game = CachedGame(
        BooleanQueryGame(provenance, endogenous, exogenous=exogenous)
    )
    if n_samples is None:
        beta = banzhaf_values(game)
    else:
        beta, __ = banzhaf_values_sampled(
            game, n_samples, random_state=random_state
        )
    return dict(zip(endogenous, beta.tolist()))
