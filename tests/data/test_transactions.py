import pytest

from xaidb.data import TransactionDatabase, make_transactions
from xaidb.exceptions import ValidationError


@pytest.fixture()
def db():
    return TransactionDatabase(
        [{"a", "b"}, {"a", "c"}, {"a", "b", "c"}, {"b"}]
    )


class TestTransactionDatabase:
    def test_len_and_items(self, db):
        assert len(db) == 4
        assert db.items == {"a", "b", "c"}

    def test_support_count(self, db):
        assert db.support_count({"a"}) == 3
        assert db.support_count({"a", "b"}) == 2
        assert db.support_count({"a", "b", "c"}) == 1

    def test_support_fraction(self, db):
        assert db.support({"b"}) == pytest.approx(0.75)

    def test_support_of_empty_itemset_is_one(self, db):
        assert db.support(set()) == pytest.approx(1.0)

    def test_empty_db_support_raises(self):
        with pytest.raises(ValidationError):
            TransactionDatabase([]).support({"a"})

    def test_item_counts(self, db):
        counts = db.item_counts()
        assert counts["a"] == 3
        assert counts["c"] == 2

    def test_from_dataset_rows(self):
        db = TransactionDatabase.from_dataset_rows(
            [{"color": "red", "size": 1}, {"color": "red", "size": 2}]
        )
        assert db.support_count({"color=red"}) == 2
        assert db.support_count({"size=1"}) == 1


class TestMakeTransactions:
    def test_reproducible(self):
        a = make_transactions(100, random_state=0)
        b = make_transactions(100, random_state=0)
        assert a.transactions == b.transactions

    def test_dimensions(self):
        db = make_transactions(200, n_items=30, random_state=1)
        assert len(db) == 200
        assert db.items <= set(range(30))

    def test_planted_patterns_are_frequent(self):
        db = make_transactions(
            500,
            n_items=40,
            n_patterns=3,
            pattern_probability=0.5,
            noise_items=1,
            random_state=2,
        )
        counts = db.item_counts()
        # items in planted patterns appear in ~50% of baskets; noise items
        # in ~1/40. The top items must far exceed the noise floor.
        top = counts.most_common(3 * 4)
        assert all(count > 0.3 * len(db) for __, count in top[:6])

    def test_invalid_dimensions(self):
        with pytest.raises(ValidationError):
            make_transactions(0)
        with pytest.raises(ValidationError):
            make_transactions(10, n_items=2, pattern_length=5)
