"""XDB011 — an explain*/fit return value aliases a caller-owned input.

XDB003 guards the *write* path of explainer purity: an ``explain``/
``fit`` method must not mutate its array parameters.  This rule guards
the *return* path.  Returning the caller's own buffer — directly, or
through a view chain like ``X[mask]``-style slicing, ``.reshape``,
``.T`` or the no-copy ``np.asarray`` passthroughs — hands the caller an
object whose later in-place use corrupts the input (or vice versa):
the same silent cross-run contamination, one alias further away.

Implementation: the :class:`~xaidb.analysis.dataflow.ValueTaint`
analysis with parameters as taint sources and
:func:`~xaidb.analysis.dataflow.view_sources` as the propagation
semantics, so only buffer-sharing expressions carry taint.  A
``return`` whose value may alias a parameter is a finding; rebinding a
name to fresh storage (``x = x.copy()``, ``x = np.array(x)``,
arithmetic) releases it.  ``return self`` is the fluent-interface idiom
and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from xaidb.analysis.cfg import function_cfg
from xaidb.analysis.dataflow import (
    State,
    ValueTaint,
    replay,
    solve_forward,
    view_sources,
)
from xaidb.analysis.findings import Finding
from xaidb.analysis.registry import FileContext, FileRule, register

__all__ = ["InputViewEscapeRule"]

_METHOD_NAMES_EXACT = {"fit"}
_METHOD_PREFIXES = ("explain",)


def _is_target_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return node.name in _METHOD_NAMES_EXACT or node.name.startswith(
        _METHOD_PREFIXES
    )


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = [
        a.arg
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
    ]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return {n for n in names if n not in ("self", "cls")}


class _AliasTaint(ValueTaint):
    """Labels are parameter names; only view expressions propagate."""

    def eval_expr(self, expr: ast.AST | None, state: State) -> frozenset[str]:
        labels: frozenset[str] = frozenset()
        for name in view_sources(expr):
            labels |= state.get(name, frozenset())
        return labels

    def eval_call(self, call: ast.Call, state: State) -> frozenset[str]:
        return self.eval_expr(call, state)


@register
class InputViewEscapeRule(FileRule):
    rule_id = "XDB011"
    symbol = "input-view-escape"
    description = (
        "An explain*/fit method returns a value that may alias a "
        "caller-owned input array (directly or through a slice/"
        "reshape/transpose/asarray view chain): copy before returning "
        "so caller and explainer never share a buffer."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_target_method(item):
                    yield from self._check_method(ctx, node.name, item)

    def _check_method(
        self,
        ctx: FileContext,
        class_name: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        params = _param_names(fn)
        if not params:
            return
        cfg = function_cfg(fn)
        problem = _AliasTaint(
            entry={name: frozenset({name}) for name in params}
        )
        in_states = solve_forward(cfg, problem)
        findings: list[Finding] = []

        def visit(item: ast.AST, state: State) -> None:
            if not isinstance(item, ast.Return) or item.value is None:
                return
            if isinstance(item.value, ast.Name) and item.value.id in (
                "self",
                "cls",
            ):
                return
            escaped = sorted(problem.eval_expr(item.value, state))
            if escaped:
                findings.append(
                    ctx.finding(
                        self,
                        item,
                        f"{class_name}.{fn.name} returns a value that "
                        f"may alias caller-owned input "
                        f"{', '.join(repr(p) for p in escaped)}; return "
                        f"a copy so the caller's buffer never escapes",
                    )
                )

        replay(cfg, problem, in_states, visit)
        yield from findings
