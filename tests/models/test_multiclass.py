"""Multiclass behaviour of the classifiers (the explainers mostly target
binary tasks, but the substrate itself must handle k classes)."""

import numpy as np
import pytest

from xaidb.models import (
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    MLPClassifier,
    RandomForestClassifier,
    accuracy,
)


@pytest.fixture(scope="module")
def three_blobs():
    rng = np.random.default_rng(0)
    centers = np.asarray([[0.0, 0.0], [4.0, 0.0], [2.0, 4.0]])
    X = np.vstack(
        [rng.normal(center, 0.6, size=(60, 2)) for center in centers]
    )
    y = np.repeat([10.0, 20.0, 30.0], 60)  # non-contiguous labels on purpose
    return X, y


class TestMulticlass:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DecisionTreeClassifier(max_depth=6),
            lambda: RandomForestClassifier(n_estimators=10, random_state=0),
            lambda: KNeighborsClassifier(n_neighbors=5),
            lambda: GaussianNB(),
            lambda: MLPClassifier(hidden_sizes=(16,), max_iter=400, random_state=0),
        ],
        ids=["tree", "forest", "knn", "nb", "mlp"],
    )
    def test_learns_three_blobs(self, three_blobs, factory):
        X, y = three_blobs
        model = factory().fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DecisionTreeClassifier(max_depth=6),
            lambda: RandomForestClassifier(n_estimators=10, random_state=0),
            lambda: KNeighborsClassifier(n_neighbors=5),
            lambda: GaussianNB(),
        ],
        ids=["tree", "forest", "knn", "nb"],
    )
    def test_proba_shape_and_simplex(self, three_blobs, factory):
        X, y = three_blobs
        model = factory().fit(X, y)
        proba = model.predict_proba(X[:20])
        assert proba.shape == (20, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_original_labels_returned(self, three_blobs):
        X, y = three_blobs
        model = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert set(np.unique(model.predict(X))) <= {10.0, 20.0, 30.0}

    def test_forest_handles_missing_class_in_bootstrap(self):
        """With a tiny minority class, some bootstrap trees never see it;
        the forest-level probability alignment must still be correct."""
        rng = np.random.default_rng(1)
        X = np.vstack(
            [rng.normal(0, 1, size=(80, 2)), rng.normal(6, 0.2, size=(3, 2))]
        )
        y = np.concatenate([np.zeros(80), np.full(3, 2.0)])
        model = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape[1] == 2  # classes 0 and 2 -> two columns
        # the minority cluster is still recognised
        assert accuracy(y, model.predict(X)) > 0.95

    def test_treeshap_on_multiclass_tree(self, three_blobs):
        from xaidb.explainers.shapley import TreeShapExplainer

        X, y = three_blobs
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        for class_index in range(3):
            explainer = TreeShapExplainer(model, class_index=class_index)
            att = explainer.explain(X[0])
            assert att.additive_check(atol=1e-10)
        # per-class attributions sum to zero across classes at any input
        # (probabilities sum to 1 everywhere, so the attribution of the
        # constant function is 0)
        total = sum(
            TreeShapExplainer(model, class_index=k).explain(X[0]).values
            for k in range(3)
        )
        assert np.allclose(total, 0.0, atol=1e-10)
