"""Property-based soundness of the interval domain: for random
abstract intervals and random concrete draws inside them, the concrete
numpy result — NaN and ±inf included — always lands inside the
abstract result.  Every operator gets ≥ 1000 randomized cases under a
fixed seed, so a failure here is a reproducible domain bug, not flake.
"""

from __future__ import annotations

import math
import zlib

import numpy as np
import pytest

from xaidb.analysis.intervals import (
    Interval,
    interval_abs,
    interval_add,
    interval_ceil,
    interval_div,
    interval_exp,
    interval_floor,
    interval_floordiv,
    interval_hull,
    interval_log,
    interval_log1p,
    interval_max,
    interval_min,
    interval_mod,
    interval_mul,
    interval_neg,
    interval_pow,
    interval_sign,
    interval_sqrt,
    interval_sub,
    mean_reduce,
    minmax_reduce,
    std_reduce,
    sum_reduce,
)

N_CASES = 1200

#: Magnitudes that exercise underflow, overflow and exact zeros.
_SPECIALS = (
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -2.5,
    1e-300,
    -1e-300,
    1e300,
    -1e300,
    math.inf,
    -math.inf,
)


def _pick(rng: np.random.Generator) -> float:
    if rng.random() < 0.4:
        return float(_SPECIALS[rng.integers(len(_SPECIALS))])
    return float(rng.normal() * 10.0 ** rng.integers(-3, 4))


def _rand_interval(rng: np.random.Generator) -> Interval:
    a, b = _pick(rng), _pick(rng)
    lo, hi = min(a, b), max(a, b)
    if rng.random() < 0.25:  # point interval
        hi = lo
    return Interval(lo, hi, bool(rng.random() < 0.3))


def _draw(rng: np.random.Generator, iv: Interval) -> float:
    """A concrete member of ``iv`` (NaN when the flag allows it)."""
    if iv.nan and rng.random() < 0.15:
        return math.nan
    choice = rng.random()
    if choice < 0.25:
        return iv.lo
    if choice < 0.5:
        return iv.hi
    if choice < 0.6 and iv.lo <= 0.0 <= iv.hi:
        return 0.0
    lo = iv.lo if math.isfinite(iv.lo) else -1e305
    hi = iv.hi if math.isfinite(iv.hi) else 1e305
    lo, hi = min(lo, hi), max(lo, hi)
    x = float(rng.uniform(lo, hi))
    return min(max(x, iv.lo), iv.hi)


def _contains(iv: Interval, x: float) -> bool:
    if math.isnan(x):
        return iv.nan
    return iv.lo <= x <= iv.hi


_BINARY = {
    "add": (interval_add, np.add),
    "sub": (interval_sub, np.subtract),
    "mul": (interval_mul, np.multiply),
    "div": (interval_div, np.divide),
    "floordiv": (interval_floordiv, np.floor_divide),
    "mod": (interval_mod, np.mod),
    "maximum": (interval_max, np.maximum),
    "minimum": (interval_min, np.minimum),
}

_UNARY = {
    "neg": (interval_neg, np.negative),
    "abs": (interval_abs, np.abs),
    "exp": (interval_exp, np.exp),
    "log": (interval_log, np.log),
    "log1p": (interval_log1p, np.log1p),
    "sqrt": (interval_sqrt, np.sqrt),
    "floor": (interval_floor, np.floor),
    "ceil": (interval_ceil, np.ceil),
    "sign": (interval_sign, np.sign),
}


@pytest.mark.parametrize("name", sorted(_BINARY))
def test_binary_transfer_soundness(name):
    abstract_op, concrete_op = _BINARY[name]
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    for case in range(N_CASES):
        a, b = _rand_interval(rng), _rand_interval(rng)
        out = abstract_op(a, b)
        x, y = _draw(rng, a), _draw(rng, b)
        with np.errstate(all="ignore"):
            r = float(concrete_op(np.float64(x), np.float64(y)))
        assert _contains(out, r), (
            f"{name} case {case}: {x!r} {name} {y!r} = {r!r} "
            f"escapes {out} (operands {a}, {b})"
        )


@pytest.mark.parametrize("name", sorted(_UNARY))
def test_unary_transfer_soundness(name):
    abstract_op, concrete_op = _UNARY[name]
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    for case in range(N_CASES):
        a = _rand_interval(rng)
        out = abstract_op(a)
        x = _draw(rng, a)
        with np.errstate(all="ignore"):
            r = float(concrete_op(np.float64(x)))
        assert _contains(out, r), (
            f"{name} case {case}: {name}({x!r}) = {r!r} "
            f"escapes {out} (operand {a})"
        )


def test_pow_transfer_soundness():
    rng = np.random.default_rng(20260808)
    for case in range(N_CASES):
        a = _rand_interval(rng)
        if rng.random() < 0.5:
            k = int(rng.integers(0, 5))
            out = interval_pow(a, Interval(float(k), float(k)), k)
            x = _draw(rng, a)
            with np.errstate(all="ignore"):
                r = float(np.power(np.float64(x), np.float64(k)))
        else:
            b = _rand_interval(rng)
            out = interval_pow(a, b)
            x, y = _draw(rng, a), _draw(rng, b)
            with np.errstate(all="ignore"):
                r = float(np.power(np.float64(x), np.float64(y)))
        assert _contains(out, r), (
            f"pow case {case}: {x!r} ** ... = {r!r} escapes {out}"
        )


def _concrete_sample(
    rng: np.random.Generator, elem: Interval, size: Interval
) -> np.ndarray:
    lo = max(0, int(size.lo) if math.isfinite(size.lo) else 0)
    hi = int(size.hi) if math.isfinite(size.hi) else lo + 8
    n = int(rng.integers(lo, max(lo, hi) + 1))
    return np.asarray([_draw(rng, elem) for __ in range(n)], dtype=float)


def test_reduction_transfer_soundness():
    """sum/mean/std/min/max over arrays whose length is drawn from the
    abstract size interval — the empty array's NaN mean included."""
    rng = np.random.default_rng(20260809)
    for case in range(N_CASES):
        elem = _rand_interval(rng)
        lo = float(rng.integers(0, 4))
        size = Interval(lo, lo + float(rng.integers(0, 4)))
        xs = _concrete_sample(rng, elem, size)
        with np.errstate(all="ignore"):
            checks = [
                (sum_reduce(elem, size), float(np.sum(xs))),
                (
                    mean_reduce(elem, size),
                    float(np.mean(xs)) if xs.size else math.nan,
                ),
            ]
            ddof = Interval(0.0, 1.0)
            d = int(rng.integers(0, 2))
            if xs.size - d > 0:
                checks.append(
                    (std_reduce(elem, size, ddof), float(np.std(xs, ddof=d)))
                )
            else:
                checks.append((std_reduce(elem, size, ddof), math.nan))
            if xs.size:
                checks.append((minmax_reduce(elem), float(np.min(xs))))
                checks.append((minmax_reduce(elem), float(np.max(xs))))
        for out, r in checks:
            assert _contains(out, r), (
                f"reduction case {case}: {r!r} escapes {out} "
                f"(elem {elem}, size {size}, xs {xs!r})"
            )


def test_hull_contains_both_sides():
    rng = np.random.default_rng(20260810)
    for __ in range(N_CASES):
        a, b = _rand_interval(rng), _rand_interval(rng)
        h = interval_hull(a, b)
        for iv in (a, b):
            assert _contains(h, _draw(rng, iv))
