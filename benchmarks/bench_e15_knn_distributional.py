"""E15 — KNN-Shapley is exact and fast; distributional Shapley is stable
across resampled datasets (Jia et al. 2019; Ghorbani, Kim & Zou 2020;
Kwon, Rivas & Zou 2021).

Reproduced shapes:

- KNN-Shapley runtime scales near-quadratically-at-worst in n (sorting
  per validation point) and is orders of magnitude cheaper than TMC
  retraining at equal n, while satisfying the efficiency axiom exactly;
- distributional Shapley values of the same points computed against two
  *disjoint* context pools agree in sign for most points — dataset-bound
  Data Shapley values need not transfer.
"""

import time

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.datavaluation import (
    UtilityFunction,
    distributional_shapley_values,
    knn_shapley_values,
    tmc_shapley_values,
)
from xaidb.datavaluation.knn_shapley import knn_utility
from xaidb.models import KNeighborsClassifier

SIZES = [50, 100, 200, 400]


def compute_rows():
    workload = make_income(1500, random_state=0)
    train, valid = workload.dataset.split(test_fraction=0.3, random_state=1)
    Xv, yv = valid.X[:60], valid.y[:60]

    runtime_rows = []
    for n in SIZES:
        X, y = train.X[:n], train.y[:n]
        start = time.perf_counter()
        values = knn_shapley_values(X, y, Xv, yv, k=5)
        knn_seconds = time.perf_counter() - start
        efficiency_gap = abs(values.sum() - knn_utility(X, y, Xv, yv, k=5))
        if n <= 100:
            utility = UtilityFunction(KNeighborsClassifier(n_neighbors=5), Xv, yv)
            start = time.perf_counter()
            tmc_shapley_values(utility, X, y, n_permutations=10, random_state=0)
            tmc_seconds = time.perf_counter() - start
        else:
            tmc_seconds = float("nan")
        runtime_rows.append((n, knn_seconds, tmc_seconds, efficiency_gap))

    # distributional stability across disjoint pools
    utility = UtilityFunction(KNeighborsClassifier(n_neighbors=5), Xv, yv)
    points_X, points_y = train.X[:10], train.y[:10]
    pool_a = (train.X[10:210], train.y[10:210])
    pool_b = (train.X[210:410], train.y[210:410])
    values_a, __ = distributional_shapley_values(
        utility, points_X, points_y, *pool_a,
        n_iterations=80, min_cardinality=20, max_cardinality=80,
        random_state=2,
    )
    values_b, __ = distributional_shapley_values(
        utility, points_X, points_y, *pool_b,
        n_iterations=80, min_cardinality=20, max_cardinality=80,
        random_state=3,
    )
    sign_agreement = float(np.mean(np.sign(values_a) == np.sign(values_b)))
    return runtime_rows, sign_agreement


def test_e15_knn_distributional(benchmark):
    runtime_rows, sign_agreement = benchmark.pedantic(
        compute_rows, rounds=1, iterations=1
    )
    print_table(
        "E15: KNN-Shapley runtime vs TMC retraining (paper: closed form "
        "is exact and far cheaper)",
        ["n train", "knn-shapley s", "tmc (10 perms) s", "efficiency gap"],
        runtime_rows,
    )
    print(
        f"distributional Shapley sign agreement across disjoint pools: "
        f"{sign_agreement:.2f}"
    )
    # exactness at every size
    assert all(row[3] < 1e-10 for row in runtime_rows)
    # closed form beats TMC wherever both ran
    for row in runtime_rows:
        if not np.isnan(row[2]):
            assert row[1] < row[2]
    # stability shape
    assert sign_agreement >= 0.5
