"""Manipulating counterfactual explanations (tutorial §2.1.4's
"counterfactuals can be gamed"; Slack et al. 2021).

The attack: deploy a model with a *trapdoor* — a tiny out-of-distribution
trigger region that returns a high score.  Here the trigger is one
feature pushed just beyond its observed range (a sentinel value no real
applicant has).  Counterfactual search that is allowed to leave the data
manifold discovers the trigger as the *cheapest* way to flip the
decision and reports a deceptively easy recourse ("just set duration to
X"), which is meaningless: the honest scoring of that input is still a
denial, and no real applicant can occupy the trigger region.  Deployed
predictions on real data are completely unchanged (stealth).

The defence is exactly the tutorial's recommendation for plausible
counterfactuals: manifold-constrained search (GeCo's plausibility check
or simply refusing out-of-range values) never reports the trapdoor.
"""

from __future__ import annotations

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.explainers.base import PredictFn
from xaidb.utils.validation import check_array

__all__ = ["TrapdooredModel"]


class TrapdooredModel:
    """Wrap a scorer with an out-of-range sentinel trigger.

    Parameters
    ----------
    base_fn:
        The honest scorer (positive-class probability).
    feature:
        Index of the trigger feature.
    threshold:
        Inputs with ``x[feature] > threshold`` get the boosted score; pick
        this just above the feature's observed maximum so no real row
        triggers it.
    boost:
        Score reported inside the trigger region.
    """

    def __init__(
        self,
        base_fn: PredictFn,
        feature: int,
        threshold: float,
        *,
        boost: float = 0.95,
    ) -> None:
        if feature < 0:
            raise ValidationError("feature must be a column index")
        if not 0.0 < boost <= 1.0:
            raise ValidationError("boost must be in (0, 1]")
        self.base_fn = base_fn
        self.feature = feature
        self.threshold = threshold
        self.boost = boost

    @classmethod
    def against_data(
        cls,
        base_fn: PredictFn,
        X: np.ndarray,
        feature: int,
        *,
        margin: float = 0.25,
        boost: float = 0.95,
    ) -> "TrapdooredModel":
        """Place the trigger just beyond the observed range of ``feature``
        (stealth by construction: ``agreement_on(X) == 1``)."""
        X = check_array(X, name="X", ndim=2)
        if not 0 <= feature < X.shape[1]:
            raise ValidationError("feature index out of range")
        return cls(
            base_fn,
            feature,
            float(X[:, feature].max()) + margin,
            boost=boost,
        )

    def in_trapdoor(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X, name="X", ndim=2)
        return X[:, self.feature] > self.threshold

    def __call__(self, X: np.ndarray) -> np.ndarray:
        X = check_array(X, name="X", ndim=2)
        scores = np.asarray(self.base_fn(X), dtype=float)
        inside = self.in_trapdoor(X)
        scores[inside] = np.maximum(scores[inside], self.boost)
        return scores

    def agreement_on(self, X: np.ndarray) -> float:
        """Fraction of rows scored identically to the honest model —
        ~1.0 on real data when the trigger is out-of-range (stealth)."""
        X = check_array(X, name="X", ndim=2)
        honest = np.asarray(self.base_fn(X), dtype=float)
        return float(np.mean(self(X) == honest))
