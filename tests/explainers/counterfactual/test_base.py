import numpy as np
import pytest

from xaidb.explainers.counterfactual import (
    ActionSpace,
    Counterfactual,
    CounterfactualSet,
    mad_distance,
)
from xaidb.explainers.counterfactual.base import median_absolute_deviation
from xaidb.exceptions import ValidationError


class TestMadDistance:
    def test_weighted_l1(self):
        a = np.asarray([0.0, 0.0])
        b = np.asarray([1.0, 2.0])
        mad = np.asarray([1.0, 2.0])
        assert mad_distance(a, b, mad) == pytest.approx(1.0 + 1.0)

    def test_zero_mad_floored(self):
        d = mad_distance(np.zeros(1), np.ones(1), np.zeros(1))
        assert np.isfinite(d)

    def test_median_absolute_deviation(self):
        X = np.asarray([[1.0], [2.0], [3.0], [100.0]])
        assert median_absolute_deviation(X)[0] == pytest.approx(1.0)


class TestActionSpace:
    @pytest.fixture()
    def space(self, credit):
        return ActionSpace.from_dataset(credit.dataset)

    def test_actionable_excludes_age(self, space, credit):
        age = credit.dataset.feature_index("age")
        assert age not in space.actionable_indices()

    def test_immutable_change_infeasible(self, space, credit):
        x = credit.dataset.X[0]
        candidate = x.copy()
        candidate[credit.dataset.feature_index("age")] += 1.0
        assert not space.is_feasible(x, candidate)

    def test_monotone_down_violation(self, space, credit):
        x = credit.dataset.X[0]
        candidate = x.copy()
        savings = credit.dataset.feature_index("savings")
        candidate[savings] -= 1.0  # savings is monotone-up
        assert not space.is_feasible(x, candidate)

    def test_out_of_range_infeasible(self, space, credit):
        x = credit.dataset.X[0]
        candidate = x.copy()
        duration = credit.dataset.feature_index("duration")
        candidate[duration] = space.upper[duration] + 10.0
        assert not space.is_feasible(x, candidate)

    def test_categorical_snap(self, space, credit):
        x = credit.dataset.X[0]
        candidate = x.copy()
        housing = credit.dataset.feature_index("housing")
        candidate[housing] = 1.4
        clipped = space.clip(x, candidate)
        assert clipped[housing] in {0.0, 1.0, 2.0}

    def test_clip_restores_feasibility(self, space, credit):
        x = credit.dataset.X[0]
        rng = np.random.default_rng(0)
        wild = x + rng.normal(0, 10, size=x.shape)
        assert space.is_feasible(x, space.clip(x, wild))

    def test_identity_is_feasible(self, space, credit):
        x = credit.dataset.X[0]
        assert space.is_feasible(x, x.copy())


class TestCounterfactualContainers:
    def _cf(self, score_from, score_to, original=None, counterfactual=None):
        original = np.asarray([0.0, 0.0]) if original is None else original
        counterfactual = (
            np.asarray([1.0, 0.0]) if counterfactual is None else counterfactual
        )
        return Counterfactual(
            original=original,
            counterfactual=counterfactual,
            feature_names=["a", "b"],
            original_score=score_from,
            counterfactual_score=score_to,
            distance=1.0,
        )

    def test_valid_flag(self):
        assert self._cf(0.2, 0.7).valid
        assert not self._cf(0.2, 0.4).valid
        assert self._cf(0.9, 0.3).valid

    def test_sparsity_counts_changes(self):
        cf = self._cf(0.2, 0.7)
        assert cf.sparsity == 1

    def test_changes_mapping(self):
        cf = self._cf(0.2, 0.7)
        assert cf.changes() == {"a": (0.0, 1.0)}

    def test_set_metrics(self):
        mad = np.ones(2)
        cfs = CounterfactualSet(
            [self._cf(0.2, 0.7), self._cf(0.2, 0.4)], mad=mad
        )
        assert cfs.validity() == pytest.approx(0.5)
        assert cfs.proximity() == pytest.approx(1.0)
        assert cfs.sparsity() == pytest.approx(1.0)
        assert len(cfs) == 2

    def test_diversity_zero_for_single(self):
        cfs = CounterfactualSet([self._cf(0.2, 0.7)], mad=np.ones(2))
        assert cfs.diversity() == 0.0

    def test_diversity_positive_for_distinct(self):
        a = self._cf(0.2, 0.7, counterfactual=np.asarray([1.0, 0.0]))
        b = self._cf(0.2, 0.7, counterfactual=np.asarray([0.0, 1.0]))
        cfs = CounterfactualSet([a, b], mad=np.ones(2))
        assert cfs.diversity() == pytest.approx(2.0)

    def test_empty_set_metrics(self):
        cfs = CounterfactualSet([], mad=np.ones(2))
        assert cfs.validity() == 0.0
        with pytest.raises(ValidationError):
            cfs.proximity()
