"""Shared low-level helpers: validation, RNG plumbing, kernels,
combinatorics and linear-algebra utilities."""

from xaidb.utils.combinatorics import (
    all_subsets,
    shapley_kernel_weight,
    shapley_subset_weight,
)
from xaidb.utils.kernels import exponential_kernel, pairwise_distances
from xaidb.utils.rng import check_random_state, spawn_seeds
from xaidb.utils.validation import (
    check_array,
    check_fitted,
    check_in_range,
    check_matching_lengths,
    check_positive,
    check_probability,
)

__all__ = [
    "all_subsets",
    "shapley_kernel_weight",
    "shapley_subset_weight",
    "exponential_kernel",
    "pairwise_distances",
    "check_random_state",
    "spawn_seeds",
    "check_array",
    "check_fitted",
    "check_in_range",
    "check_matching_lengths",
    "check_positive",
    "check_probability",
]
