"""CART decision trees (classification and regression).

The fitted tree is stored in flat parallel arrays (``children_left``,
``children_right``, ``feature``, ``threshold``, ``value``,
``n_node_samples``) — the same layout sklearn and XGBoost expose — because
white-box explainers traverse the structure directly:

- TreeSHAP (:mod:`xaidb.explainers.shapley.tree`) runs its polynomial
  recursion over these arrays, using ``n_node_samples`` as the cover;
- logic-based sufficient reasons (:mod:`xaidb.rules.logic`) enumerate
  root-to-leaf paths;
- GBDT influence (:mod:`xaidb.datavaluation.tree_influence`) re-estimates
  leaf values with individual training points removed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from xaidb.exceptions import ValidationError
from xaidb.models.base import Classifier, Regressor
from xaidb.utils.rng import RandomState, check_random_state
from xaidb.utils.validation import check_array, check_fitted

__all__ = ["TreeStructure", "DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1


@dataclass
class TreeStructure:
    """Flat array representation of a fitted binary tree.

    ``value[node]`` is a vector: the class distribution for classifiers or
    a length-1 array holding the mean target for regressors.  Internal
    nodes send ``x[feature] <= threshold`` to ``children_left``.
    """

    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    value: np.ndarray
    n_node_samples: np.ndarray

    @property
    def node_count(self) -> int:
        return len(self.feature)

    def is_leaf(self, node: int) -> bool:
        return self.children_left[node] == _LEAF

    def leaves(self) -> list[int]:
        return [n for n in range(self.node_count) if self.is_leaf(n)]

    def apply_row(self, row: np.ndarray) -> int:
        """Leaf index reached by one input row (the row-wise reference
        the vectorized kernel is regression-tested against)."""
        node = 0
        while not self.is_leaf(node):
            if row[self.feature[node]] <= self.threshold[node]:
                node = self.children_left[node]
            else:
                node = self.children_right[node]
        return node

    def apply_rowwise(self, X: np.ndarray) -> np.ndarray:
        """Row-at-a-time ``apply`` — retained as the exactness oracle for
        :class:`~xaidb.models.tree_kernels.TreeKernel` (see
        ``tests/models/test_tree_kernels.py``) and for the before/after
        rows of benchmark A10."""
        X = np.asarray(X, dtype=float)
        return np.asarray([self.apply_row(row) for row in X], dtype=int)

    @property
    def kernel(self):
        """Lazily built vectorized traversal kernel.

        Safe to cache: the routing arrays are immutable once the builder
        returns (only leaf *values* are ever rewritten, by the GBM's
        Newton step, and the kernel does not capture values).
        """
        kernel = getattr(self, "_kernel", None)
        if kernel is None:
            from xaidb.models.tree_kernels import TreeKernel

            kernel = TreeKernel(self)
            self._kernel = kernel
        return kernel

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of ``X`` (level-synchronous frontier
        traversal — one vectorized step per depth level instead of one
        Python loop per row)."""
        X = np.asarray(X, dtype=float)
        return self.kernel.apply(X)

    def decision_path(self, row: np.ndarray) -> list[int]:
        """The node sequence from root to the leaf reached by ``row``."""
        node = 0
        path = [0]
        while not self.is_leaf(node):
            if row[self.feature[node]] <= self.threshold[node]:
                node = self.children_left[node]
            else:
                node = self.children_right[node]
            path.append(node)
        return path

    def max_depth(self) -> int:
        """Depth of the deepest leaf (root at depth 0)."""
        depths = {0: 0}
        best = 0
        for node in range(self.node_count):
            depth = depths[node]
            best = max(best, depth)
            if not self.is_leaf(node):
                depths[int(self.children_left[node])] = depth + 1
                depths[int(self.children_right[node])] = depth + 1
        return best


class _Builder:
    """Greedy top-down CART builder shared by both task types."""

    def __init__(
        self,
        *,
        is_classification: bool,
        n_classes: int,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        rng: np.random.Generator,
    ) -> None:
        self.is_classification = is_classification
        self.n_classes = n_classes
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.value: list[np.ndarray] = []
        self.n_node_samples: list[int] = []

    # ------------------------------------------------------------------
    def build(self, X: np.ndarray, y: np.ndarray) -> TreeStructure:
        self._grow(X, y, np.arange(len(y)), depth=0)
        return TreeStructure(
            children_left=np.asarray(self.children_left, dtype=int),
            children_right=np.asarray(self.children_right, dtype=int),
            feature=np.asarray(self.feature, dtype=int),
            threshold=np.asarray(self.threshold, dtype=float),
            value=np.asarray(self.value, dtype=float),
            n_node_samples=np.asarray(self.n_node_samples, dtype=float),
        )

    def _node_value(self, y: np.ndarray) -> np.ndarray:
        if self.is_classification:
            counts = np.bincount(y.astype(int), minlength=self.n_classes)
            return counts / counts.sum()
        return np.asarray([float(np.mean(y))])

    def _impurity(self, y: np.ndarray) -> float:
        if self.is_classification:
            counts = np.bincount(y.astype(int), minlength=self.n_classes)
            proportions = counts / counts.sum()
            return float(1.0 - np.sum(proportions**2))
        return float(np.var(y))

    def _add_node(self, y: np.ndarray) -> int:
        index = len(self.feature)
        self.children_left.append(_LEAF)
        self.children_right.append(_LEAF)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.value.append(self._node_value(y))
        self.n_node_samples.append(len(y))
        return index

    def _grow(self, X: np.ndarray, y: np.ndarray, rows: np.ndarray, depth: int) -> int:
        y_node = y[rows]
        node = self._add_node(y_node)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or len(rows) < self.min_samples_split
            # xailint: disable=XDB006 (exact-zero impurity: node is pure by integer counts)
            or self._impurity(y_node) == 0.0
        ):
            return node
        split = self._best_split(X, y, rows)
        if split is None:
            return node
        feature, threshold, left_rows, right_rows = split
        self.feature[node] = feature
        self.threshold[node] = threshold
        self.children_left[node] = self._grow(X, y, left_rows, depth + 1)
        self.children_right[node] = self._grow(X, y, right_rows, depth + 1)
        return node

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        return self.rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, rows: np.ndarray
    ):
        """Exhaustive best (feature, threshold) by weighted impurity decrease.

        Uses prefix sums over the per-feature sorted order so each feature
        costs O(n log n).
        """
        y_node = y[rows]
        n = len(rows)
        # accept any valid split of an impure node, preferring maximal
        # impurity decrease: zero-gain splits are allowed (as in classic
        # CART), which is what lets greedy recursion crack XOR-style
        # targets where no single split helps immediately
        best_gain = -np.inf
        best = None
        parent_impurity = self._impurity(y_node)
        for feature in self._candidate_features(X.shape[1]):
            values = X[rows, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            sorted_y = y_node[order]
            if self.is_classification:
                one_hot = np.zeros((n, self.n_classes))
                one_hot[np.arange(n), sorted_y.astype(int)] = 1.0
                left_counts = np.cumsum(one_hot, axis=0)
                total = left_counts[-1]
            else:
                cum_sum = np.cumsum(sorted_y)
                cum_sq = np.cumsum(sorted_y**2)
            # candidate split after position i (left = [0..i], right = rest)
            for i in range(self.min_samples_leaf - 1, n - self.min_samples_leaf):
                if sorted_values[i] == sorted_values[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                if self.is_classification:
                    lc = left_counts[i]
                    rc = total - lc
                    gini_left = 1.0 - np.sum((lc / n_left) ** 2)
                    gini_right = 1.0 - np.sum((rc / n_right) ** 2)
                    # xailint: disable=XDB023 (a split is only scored when the node holds n >= 2 * min_samples_leaf rows)
                    child_impurity = (
                        n_left * gini_left + n_right * gini_right
                    ) / n
                else:
                    sum_left = cum_sum[i]
                    sq_left = cum_sq[i]
                    sum_right = cum_sum[-1] - sum_left
                    sq_right = cum_sq[-1] - sq_left
                    var_left = sq_left / n_left - (sum_left / n_left) ** 2
                    var_right = sq_right / n_right - (sum_right / n_right) ** 2
                    # xailint: disable=XDB023 (a split is only scored when the node holds n >= 2 * min_samples_leaf rows)
                    child_impurity = (
                        n_left * var_left + n_right * var_right
                    ) / n
                gain = parent_impurity - child_impurity
                if gain > best_gain:
                    best_gain = gain
                    threshold = (sorted_values[i] + sorted_values[i + 1]) / 2.0
                    best = (int(feature), float(threshold), i)
        if best is None:
            return None
        feature, threshold, _ = best
        mask = X[rows, feature] <= threshold
        return feature, threshold, rows[mask], rows[~mask]


class _TreeParamsMixin:
    """Shared hyperparameter storage/validation for the two tree models."""

    def _init_params(
        self,
        max_depth,
        min_samples_split,
        min_samples_leaf,
        max_features,
        random_state,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValidationError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ValidationError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValidationError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.tree_: TreeStructure | None = None

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each row."""
        check_fitted(self, ["tree_"])
        X = check_array(X, name="X", ndim=2)
        return self.tree_.apply(X)

    def decision_path(self, row: np.ndarray) -> list[int]:
        """Root-to-leaf node sequence for a single row."""
        check_fitted(self, ["tree_"])
        return self.tree_.decision_path(np.asarray(row, dtype=float))


class DecisionTreeClassifier(_TreeParamsMixin, Classifier):
    """CART classifier (gini impurity)."""

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: RandomState = None,
    ) -> None:
        self._init_params(
            max_depth, min_samples_split, min_samples_leaf, max_features, random_state
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = self._validate_fit_args(X, y)
        # unlike the parametric classifiers, a tree degrades gracefully to
        # a constant leaf on single-class data — random-forest bootstrap
        # samples of rare classes rely on this
        self.classes_ = np.unique(y)
        lookup = {label: index for index, label in enumerate(self.classes_)}
        y_index = np.asarray([lookup[label] for label in y], dtype=int)
        builder = _Builder(
            is_classification=True,
            n_classes=len(self.classes_),
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=check_random_state(self.random_state),
        )
        self.tree_ = builder.build(X, y_index)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["tree_"])
        X = check_array(X, name="X", ndim=2)
        leaves = self.tree_.apply(X)
        return self.tree_.value[leaves]


class DecisionTreeRegressor(_TreeParamsMixin, Regressor):
    """CART regressor (variance reduction)."""

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        random_state: RandomState = None,
    ) -> None:
        self._init_params(
            max_depth, min_samples_split, min_samples_leaf, max_features, random_state
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = self._validate_fit_args(X, y)
        builder = _Builder(
            is_classification=False,
            n_classes=0,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=check_random_state(self.random_state),
        )
        self.tree_ = builder.build(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, ["tree_"])
        X = check_array(X, name="X", ndim=2)
        leaves = self.tree_.apply(X)
        return self.tree_.value[leaves, 0]
