import numpy as np
import pytest

from xaidb.exceptions import ValidationError
from xaidb.explainers import (
    BagOfWordsClassifier,
    GlobalSurrogate,
    LimeTextExplainer,
    LinearModelTreeSurrogate,
    gradient_times_input,
    predict_positive_proba,
    saliency,
    surrogate_fidelity,
    tokenize,
)
from xaidb.models import MLPClassifier


class TestSurrogateFidelity:
    def test_perfect_fidelity_on_self(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        assert surrogate_fidelity(f, f, income.dataset.X) == pytest.approx(1.0)

    def test_agreement_kind(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        flipped = lambda X: 1.0 - f(X)
        assert surrogate_fidelity(
            f, flipped, income.dataset.X, kind="agreement"
        ) < 0.2

    def test_unknown_kind(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        with pytest.raises(ValidationError):
            surrogate_fidelity(f, f, income.dataset.X, kind="mse")


class TestGlobalSurrogate:
    def test_tree_surrogate_fidelity_reported(self, income, income_forest):
        f = predict_positive_proba(income_forest)
        surrogate = GlobalSurrogate(kind="tree", max_depth=4).fit(
            f, income.dataset.X
        )
        assert 0.0 < surrogate.fidelity_ <= 1.0

    def test_linear_surrogate_on_linear_model_is_faithful(self, income, income_logistic):
        f = lambda X: income_logistic.decision_function(X)
        surrogate = GlobalSurrogate(kind="linear").fit(f, income.dataset.X)
        assert surrogate.fidelity_ > 0.999

    def test_explanation_modes(self, income, income_forest):
        f = predict_positive_proba(income_forest)
        tree_exp = (
            GlobalSurrogate(kind="tree", max_depth=3)
            .fit(f, income.dataset.X)
            .explanation(income.dataset.feature_names)
        )
        assert tree_exp.values.sum() == pytest.approx(1.0)  # usage fractions
        linear_exp = (
            GlobalSurrogate(kind="linear")
            .fit(f, income.dataset.X)
            .explanation(income.dataset.feature_names)
        )
        assert len(linear_exp.values) == income.dataset.n_features

    def test_invalid_kind(self):
        with pytest.raises(ValidationError):
            GlobalSurrogate(kind="spline")


class TestLinearModelTree:
    def test_beats_single_line_on_nonlinear_model(self, income, income_gbm):
        f = predict_positive_proba(income_gbm)
        lmt = LinearModelTreeSurrogate(max_depth=2, min_samples_leaf=40).fit(
            f, income.dataset
        )
        lmt_fid = surrogate_fidelity(f, lmt.predict, income.dataset.X)
        line = GlobalSurrogate(kind="linear").fit(f, income.dataset.X)
        assert lmt_fid >= line.fidelity_ - 1e-9

    def test_explain_reports_leaf_context(self, income, income_gbm):
        f = predict_positive_proba(income_gbm)
        lmt = LinearModelTreeSurrogate(max_depth=2, min_samples_leaf=40).fit(
            f, income.dataset
        )
        att = lmt.explain(income.dataset.X[0])
        assert "leaf" in att.metadata
        assert "leaf_fidelity_r2" in att.metadata
        assert len(att.values) == income.dataset.n_features


class TestGradientAttributions:
    @pytest.fixture(scope="class")
    def mlp(self, moons):
        return MLPClassifier(hidden_sizes=(12,), max_iter=400, random_state=0).fit(
            moons.X, moons.y
        )

    def test_saliency_is_absolute(self, mlp, moons):
        att = saliency(mlp, moons.X[0])
        assert np.all(att.values >= 0)

    def test_gradient_times_input_signs(self, mlp, moons):
        att = gradient_times_input(mlp, moons.X[0])
        gradient = mlp.input_gradient(moons.X[0], 1)
        assert np.allclose(att.values, gradient * moons.X[0])

    def test_baseline_shifts_attribution(self, mlp, moons):
        zero = gradient_times_input(mlp, moons.X[0])
        mean = gradient_times_input(
            mlp, moons.X[0], baseline=moons.X.mean(axis=0)
        )
        assert not np.allclose(zero.values, mean.values)

    def test_feature_names_default(self, mlp, moons):
        att = saliency(mlp, moons.X[0])
        assert att.feature_names == ["x0", "x1"]


class TestTokenize:
    def test_lowercase_and_punctuation(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_empty(self):
        assert tokenize("...") == []


class TestBagOfWordsClassifier:
    @pytest.fixture(scope="class")
    def sentiment(self):
        docs = [
            "great movie loved it",
            "wonderful great acting",
            "loved the plot great",
            "terrible movie hated it",
            "awful terrible acting",
            "hated the plot awful",
        ]
        labels = [1, 1, 1, 0, 0, 0]
        return BagOfWordsClassifier().fit(docs, labels), docs, labels

    def test_classifies_training_docs(self, sentiment):
        model, docs, labels = sentiment
        predictions = (model.positive_proba(docs) >= 0.5).astype(int)
        assert list(predictions) == labels

    def test_probabilities_valid(self, sentiment):
        model, docs, __ = sentiment
        proba = model.predict_proba(docs)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_unknown_words_fall_back(self, sentiment):
        model, __, __ = sentiment
        proba = model.predict_proba(["zzz qqq xxx"])
        assert np.all(np.isfinite(proba))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            BagOfWordsClassifier().fit(["a"], [1, 0])


class TestLimeTextExplainer:
    def test_sentiment_words_found(self):
        docs = [
            "great movie loved it",
            "wonderful great acting",
            "loved the plot great",
            "terrible movie hated it",
            "awful terrible acting",
            "hated the plot awful",
        ] * 3
        labels = [1, 1, 1, 0, 0, 0] * 3
        model = BagOfWordsClassifier().fit(docs, labels)
        explainer = LimeTextExplainer(n_samples=300)
        att = explainer.explain(
            model.positive_proba, "great movie loved it", random_state=0
        )
        top_words = {name for name, value in att.ranked()[:2] if value > 0}
        assert top_words & {"great", "loved"}

    def test_empty_document_rejected(self):
        explainer = LimeTextExplainer(n_samples=50)
        with pytest.raises(ValidationError):
            explainer.explain(lambda docs: np.zeros(len(docs)), "!!!")

    def test_deterministic(self):
        docs = ["good good", "bad bad"]
        model = BagOfWordsClassifier().fit(docs, [1, 0])
        explainer = LimeTextExplainer(n_samples=100)
        a = explainer.explain(model.positive_proba, "good bad", random_state=1)
        b = explainer.explain(model.positive_proba, "good bad", random_state=1)
        assert np.allclose(a.values, b.values)

    def test_vocabulary_is_sorted_unique(self):
        model = BagOfWordsClassifier().fit(["a b a", "c"], [1, 0])
        explainer = LimeTextExplainer(n_samples=64)
        att = explainer.explain(model.positive_proba, "b a b a", random_state=2)
        assert att.feature_names == ["a", "b"]
