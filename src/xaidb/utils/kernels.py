"""Distance and kernel functions used by neighborhood-based explainers
(LIME's locality weighting, perturbation samplers, k-NN)."""

from __future__ import annotations

import numpy as np

from xaidb.utils.validation import check_array, check_positive

__all__ = ["pairwise_distances", "exponential_kernel"]


def pairwise_distances(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    metric: str = "euclidean",
) -> np.ndarray:
    """Compute the dense pairwise distance matrix between rows of ``a``
    and rows of ``b`` (``b`` defaults to ``a``).

    Supported metrics: ``"euclidean"``, ``"sqeuclidean"``, ``"manhattan"``,
    ``"hamming"`` (fraction of differing coordinates) and ``"cosine"``.
    """
    a = check_array(a, name="a", ndim=2)
    b = a if b is None else check_array(b, name="b", ndim=2)
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"a and b must have the same number of columns, "
            f"got {a.shape[1]} and {b.shape[1]}"
        )
    if metric in ("euclidean", "sqeuclidean"):
        a_sq = np.sum(a * a, axis=1)[:, None]
        b_sq = np.sum(b * b, axis=1)[None, :]
        sq = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
        return sq if metric == "sqeuclidean" else np.sqrt(sq)
    if metric == "manhattan":
        return np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
    if metric == "hamming":
        return (a[:, None, :] != b[None, :, :]).mean(axis=2)
    if metric == "cosine":
        a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), 1e-12)
        b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), 1e-12)
        return 1.0 - a_norm @ b_norm.T
    raise ValueError(f"unknown metric {metric!r}")


def exponential_kernel(distances: np.ndarray, kernel_width: float) -> np.ndarray:
    """LIME's locality kernel: ``exp(-d^2 / width^2)``.

    Distances of zero map to weight 1; weights decay smoothly with the
    squared distance so that far-away perturbations barely influence the
    local surrogate fit.
    """
    check_positive(kernel_width, name="kernel_width")
    distances = np.asarray(distances, dtype=float)
    # xailint: disable=XDB023 (check_positive proves kernel_width > 0; squaring only reaches 0 via subnormal underflow)
    return np.exp(-(distances**2) / (kernel_width**2))
