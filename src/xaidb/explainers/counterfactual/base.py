"""Shared counterfactual machinery.

The tutorial stresses that counterfactuals must be *valid* (actually flip
the decision), *proximate* (minimally different), *sparse* (change few
features), *diverse* (offer alternatives) and *plausible/feasible*
(respect immutability, monotonicity and the data manifold).  This module
provides the containers and metrics; the search strategies live in
:mod:`dice` and :mod:`geco`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from xaidb.data.dataset import Dataset, FeatureSpec
from xaidb.exceptions import ValidationError
from xaidb.utils.validation import check_array

__all__ = [
    "mad_distance",
    "median_absolute_deviation",
    "ActionSpace",
    "Counterfactual",
    "CounterfactualSet",
]


def mad_distance(
    a: np.ndarray, b: np.ndarray, mad: np.ndarray
) -> float:
    """MAD-weighted L1 distance (the DiCE/Wachter proximity metric):
    ``sum_j |a_j - b_j| / MAD_j`` with MAD floored at a small epsilon."""
    scale = np.maximum(mad, 1e-6)
    return float(np.sum(np.abs(a - b) / scale))


def median_absolute_deviation(X: np.ndarray) -> np.ndarray:
    """Per-column median absolute deviation (robust scale estimate)."""
    X = check_array(X, name="X", ndim=2)
    medians = np.median(X, axis=0)
    return np.median(np.abs(X - medians), axis=0)


@dataclass
class ActionSpace:
    """What counterfactual search is allowed to do, derived from feature
    specs and training data.

    - immutable features (``actionable=False``) are frozen;
    - monotone features may only move in their allowed direction;
    - numeric features stay within the observed training range
      (plausibility via a box data-manifold proxy);
    - categorical features take only observed category codes.
    """

    features: list[FeatureSpec]
    lower: np.ndarray
    upper: np.ndarray
    mad: np.ndarray
    category_codes: dict[int, np.ndarray]

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "ActionSpace":
        codes = {
            col: np.unique(dataset.X[:, col])
            for col in dataset.categorical_indices
        }
        # MAD degenerates to 0 on binary/majority-constant columns, which
        # would make any change to them look infinitely far; fall back to
        # the column standard deviation there
        mad = median_absolute_deviation(dataset.X)
        stds = dataset.X.std(axis=0)
        mad = np.where(mad > 0, mad, stds)
        return cls(
            features=list(dataset.features),
            lower=dataset.X.min(axis=0),
            upper=dataset.X.max(axis=0),
            mad=mad,
            category_codes=codes,
        )

    @property
    def n_features(self) -> int:
        return len(self.features)

    def actionable_indices(self) -> list[int]:
        return [i for i, f in enumerate(self.features) if f.actionable]

    def is_feasible(self, origin: np.ndarray, candidate: np.ndarray) -> bool:
        """Whether the move ``origin -> candidate`` respects every
        constraint in the action space."""
        for i, spec in enumerate(self.features):
            delta = candidate[i] - origin[i]
            if not spec.actionable and abs(delta) > 1e-12:
                return False
            if spec.monotone == 1 and delta < -1e-12:
                return False
            if spec.monotone == -1 and delta > 1e-12:
                return False
            if spec.is_categorical:
                codes = self.category_codes.get(i)
                if codes is not None and not np.any(
                    np.isclose(candidate[i], codes)
                ):
                    return False
            else:
                if not self.lower[i] - 1e-9 <= candidate[i] <= self.upper[i] + 1e-9:
                    return False
        return True

    def clip(self, origin: np.ndarray, candidate: np.ndarray) -> np.ndarray:
        """Project ``candidate`` onto the feasible set around ``origin``
        (freeze immutables, enforce monotone direction, box-clip numerics,
        snap categoricals to the nearest observed code)."""
        out = candidate.copy()
        for i, spec in enumerate(self.features):
            if not spec.actionable:
                out[i] = origin[i]
                continue
            if spec.monotone == 1:
                out[i] = max(out[i], origin[i])
            elif spec.monotone == -1:
                out[i] = min(out[i], origin[i])
            if spec.is_categorical:
                codes = self.category_codes.get(i)
                if codes is not None:
                    out[i] = codes[np.argmin(np.abs(codes - out[i]))]
            else:
                out[i] = float(np.clip(out[i], self.lower[i], self.upper[i]))
        return out


@dataclass
class Counterfactual:
    """One counterfactual instance together with its quality numbers."""

    original: np.ndarray
    counterfactual: np.ndarray
    feature_names: list[str]
    original_score: float
    counterfactual_score: float
    distance: float

    @property
    def valid(self) -> bool:
        """Whether the decision actually flipped (threshold 0.5)."""
        return (self.original_score >= 0.5) != (self.counterfactual_score >= 0.5)

    @property
    def sparsity(self) -> int:
        """Number of features changed."""
        return int(np.sum(~np.isclose(self.original, self.counterfactual)))

    def changes(self) -> dict[str, tuple[float, float]]:
        """``{feature: (from, to)}`` for every changed feature."""
        return {
            name: (float(before), float(after))
            for name, before, after in zip(
                self.feature_names, self.original, self.counterfactual
            )
            if not np.isclose(before, after)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        moves = ", ".join(
            f"{k}: {v[0]:.2f}->{v[1]:.2f}" for k, v in self.changes().items()
        )
        return f"Counterfactual({moves}; score {self.counterfactual_score:.3f})"


@dataclass
class CounterfactualSet:
    """A batch of counterfactuals with the standard quality metrics
    (Mothilal et al. 2020, Table 1/2 — regenerated by experiment E8)."""

    counterfactuals: list[Counterfactual]
    mad: np.ndarray = field(default_factory=lambda: np.asarray([]))

    def __len__(self) -> int:
        return len(self.counterfactuals)

    def __iter__(self):
        return iter(self.counterfactuals)

    def __getitem__(self, index: int) -> Counterfactual:
        return self.counterfactuals[index]

    def validity(self) -> float:
        """Fraction of counterfactuals that flip the decision."""
        if not self.counterfactuals:
            return 0.0
        return float(np.mean([cf.valid for cf in self.counterfactuals]))

    def proximity(self) -> float:
        """Mean MAD-weighted L1 distance to the original (lower = closer)."""
        if not self.counterfactuals:
            raise ValidationError("empty counterfactual set")
        return float(np.mean([cf.distance for cf in self.counterfactuals]))

    def sparsity(self) -> float:
        """Mean number of changed features."""
        if not self.counterfactuals:
            raise ValidationError("empty counterfactual set")
        return float(np.mean([cf.sparsity for cf in self.counterfactuals]))

    def diversity(self) -> float:
        """Mean pairwise MAD-weighted L1 distance among counterfactuals
        (0 for a single counterfactual)."""
        k = len(self.counterfactuals)
        if k < 2:
            return 0.0
        total, count = 0.0, 0
        for i in range(k):
            for j in range(i + 1, k):
                total += mad_distance(
                    self.counterfactuals[i].counterfactual,
                    self.counterfactuals[j].counterfactual,
                    self.mad,
                )
                count += 1
        # xailint: disable=XDB023 (count >= 1: the k < 2 early return guarantees at least one pair)
        return total / count
