"""Clean fixture for XDB029: the same pool, but every map/share runs
while the pool is provably still open and close() comes last."""

__all__ = ["mapped_then_closed", "shared_then_closed"]


class ArrayPool:
    def __init__(self, jobs):
        self.jobs = jobs

    def map(self, fn, chunks):
        return [fn(chunk) for chunk in chunks]

    def share(self, array):
        return array

    def close(self):
        self.jobs = 0


def _reuse(pool, array):
    return pool.share(array)


def mapped_then_closed(chunks):
    pool = ArrayPool(2)
    try:
        return pool.map(len, chunks)
    finally:
        pool.close()


def shared_then_closed(array):
    pool = ArrayPool(2)
    handle = _reuse(pool, array)  # pool is still open here
    pool.close()
    return handle
