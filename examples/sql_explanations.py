"""Explaining SQL query answers (tutorial §3 "Explanations in Databases").

Builds a small employees/departments database on the provenance-tracking
mini engine and explains query answers three ways:

1. why-provenance: the witnesses justifying an answer;
2. Shapley values of tuples: fair division of an answer's existence (for
   boolean queries) and of an aggregate's magnitude;
3. causal responsibility: Meliou-style counterfactual-with-contingency
   scores, plus why-not repairs for a missing answer.

Run:  python examples/sql_explanations.py
"""

from xaidb.db import (
    Relation,
    aggregate,
    aggregate_interventions,
    groupby,
    join,
    project,
    responsibility,
    select,
    shapley_of_tuples,
    shapley_of_tuples_boolean,
    why_not_provenance,
    why_provenance,
)


def main() -> None:
    employees = Relation.from_dicts(
        "emp",
        [
            {"name": "ann", "dept": "eng", "salary": 120},
            {"name": "bob", "dept": "eng", "salary": 95},
            {"name": "cat", "dept": "ops", "salary": 90},
            {"name": "dan", "dept": "eng", "salary": 150},
            {"name": "eve", "dept": "ops", "salary": 70},
        ],
    )
    departments = Relation.from_dicts(
        "dept",
        [{"dept": "eng", "city": "sf"}, {"dept": "ops", "city": "ny"}],
    )

    # --- Q1: which cities have an employee earning > 100? -----------------
    rich = select(employees, lambda r: r["salary"] > 100, name="rich")
    located = join(rich, departments, on=["dept"])
    cities = project(located, ["city"])
    print("Q1: SELECT DISTINCT city FROM emp JOIN dept WHERE salary > 100")
    for row in cities:
        print(f"  answer {row.as_dict()}   provenance: {row.provenance}")

    sf_answer = [row for row in cities if row["city"] == "sf"][0]
    print("\n[why] witnesses for city = 'sf':")
    for witness in why_provenance(sf_answer.provenance):
        print("  ", witness)

    lineage = sorted(sf_answer.provenance.lineage(), key=str)
    phi = shapley_of_tuples_boolean(sf_answer.provenance, lineage)
    print("\n[shapley-of-tuples] contribution of each tuple to the answer:")
    for token, value in sorted(phi.items(), key=lambda kv: -kv[1]):
        print(f"  {token:8s} {value:.3f}")

    print("\n[responsibility] (1 / (1 + minimal contingency)):")
    for token in lineage:
        print(f"  {token:8s} {responsibility(sf_answer.provenance, token):.2f}")

    # --- Q2: why is 'ny' missing from Q1? ----------------------------------
    # candidate derivations: any ops employee with salary > 100 + dept row
    candidates = [
        {f"emp:{i}", "dept:1"}
        for i, record in enumerate(employees.to_dicts())
        if record["dept"] == "ops"
    ]
    present = {
        f"emp:{i}"
        for i, record in enumerate(employees.to_dicts())
        if record["salary"] > 100
    } | {"dept:0", "dept:1"}
    print("\nQ2: why NOT city = 'ny'?  minimal tuple insertions per "
          "candidate derivation:")
    for repair in why_not_provenance(candidates, present):
        print(f"  would need: {repair} (an ops employee earning > 100)")

    # --- Q3: aggregate — who drives the eng salary bill? ----------------------
    print("\nQ3: SELECT dept, SUM(salary) FROM emp GROUP BY dept")
    totals = groupby(employees, ["dept"], {"total": ("sum", "salary")})
    for row in totals:
        print(f"  {row.as_dict()}")

    eng_only = select(employees, lambda r: r["dept"] == "eng")
    phi_sum = shapley_of_tuples(
        employees,
        lambda rel: aggregate(
            select(rel, lambda r: r["dept"] == "eng"), "sum", "salary"
        ),
    )
    print("\n[shapley-of-tuples] for SUM(salary) of eng "
          "(additive query -> each tuple its own salary):")
    for token, value in sorted(phi_sum.items(), key=lambda kv: -kv[1]):
        if value:
            print(f"  {token:8s} {value:.1f}")

    effects = aggregate_interventions(
        employees,
        lambda rel: aggregate(rel, "avg", "salary"),
        groups={
            "eng team": [f"emp:{i}" for i, r in enumerate(employees.to_dicts())
                         if r["dept"] == "eng"],
            "ops team": [f"emp:{i}" for i, r in enumerate(employees.to_dicts())
                         if r["dept"] == "ops"],
        },
    )
    print("\n[intervention] effect of deleting each team on AVG(salary):")
    for label, effect in effects:
        print(f"  {label}: {effect:+.1f}")


if __name__ == "__main__":
    main()
