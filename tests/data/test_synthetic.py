import numpy as np
import pytest

from xaidb.data import (
    make_credit,
    make_income,
    make_loans,
    make_recidivism,
    make_two_moons,
)
from xaidb.exceptions import ValidationError


class TestIncomeWorkload:
    def test_reproducible(self):
        a = make_income(100, random_state=0)
        b = make_income(100, random_state=0)
        assert np.array_equal(a.dataset.X, b.dataset.X)
        assert np.array_equal(a.dataset.y, b.dataset.y)

    def test_label_is_binary_and_balanced_ish(self):
        w = make_income(1000, random_state=1)
        assert set(np.unique(w.dataset.y)) <= {0.0, 1.0}
        assert 0.3 < w.dataset.y.mean() < 0.7

    def test_dummy_feature_is_uncorrelated_with_label(self):
        w = make_income(3000, random_state=2)
        noise = w.dataset.X[:, w.dataset.feature_index("random_noise")]
        corr = np.corrcoef(noise, w.dataset.y)[0, 1]
        assert abs(corr) < 0.06

    def test_ground_truth_weights_cover_features(self):
        w = make_income(50, random_state=0)
        assert set(w.true_label_weights) == set(w.dataset.feature_names)
        assert w.true_label_weights["random_noise"] == 0.0

    def test_gender_has_no_direct_income_edge(self):
        w = make_income(50, random_state=0)
        assert "income" not in w.graph.children("gender")
        assert "occupation" in w.graph.children("gender")

    def test_resample_draws_fresh_data(self):
        w = make_income(100, random_state=0)
        fresh = w.resample(100, random_state=99)
        assert fresh.n_rows == 100
        assert not np.array_equal(fresh.X, w.dataset.X)

    def test_education_age_correlation_positive(self):
        w = make_income(3000, random_state=3)
        age = w.dataset.X[:, w.dataset.feature_index("age")]
        edu = w.dataset.X[:, w.dataset.feature_index("education")]
        assert np.corrcoef(age, edu)[0, 1] > 0.2


class TestCreditWorkload:
    def test_constraint_metadata(self):
        w = make_credit(50, random_state=0)
        by_name = {f.name: f for f in w.dataset.features}
        assert not by_name["age"].actionable
        assert by_name["savings"].monotone == 1
        assert by_name["housing"].is_categorical

    def test_housing_codes_valid(self):
        w = make_credit(500, random_state=1)
        housing = w.dataset.X[:, w.dataset.feature_index("housing")]
        assert set(np.unique(housing)) <= {0.0, 1.0, 2.0}

    def test_savings_raises_approval_odds(self):
        w = make_credit(4000, random_state=2)
        savings = w.dataset.X[:, w.dataset.feature_index("savings")]
        high = w.dataset.y[savings > 1.0].mean()
        low = w.dataset.y[savings < -1.0].mean()
        assert high > low + 0.2


class TestRecidivismWorkload:
    def test_unbiased_race_weight_zero(self):
        w = make_recidivism(50, biased=False, random_state=0)
        assert w.true_label_weights["race"] == 0.0

    def test_biased_race_weight_positive(self):
        w = make_recidivism(50, biased=True, random_state=0)
        assert w.true_label_weights["race"] > 0

    def test_discrete_rounds_numeric_columns(self):
        w = make_recidivism(200, discrete=True, random_state=1)
        for name in ("age", "priors"):
            column = w.dataset.X[:, w.dataset.feature_index(name)]
            assert np.allclose(column, np.round(column))

    def test_race_priors_confounding(self):
        w = make_recidivism(4000, biased=False, random_state=2)
        race = w.dataset.X[:, w.dataset.feature_index("race")]
        priors = w.dataset.X[:, w.dataset.feature_index("priors")]
        assert priors[race == 1.0].mean() > priors[race == 0.0].mean()


class TestLoansWorkload:
    def test_credit_score_dominates(self):
        w = make_loans(50, random_state=0)
        weights = w.true_label_weights
        assert abs(weights["credit_score"]) == max(abs(v) for v in weights.values())

    def test_monotone_directions(self):
        w = make_loans(50, random_state=0)
        by_name = {f.name: f for f in w.dataset.features}
        assert by_name["debt_to_income"].monotone == -1
        assert by_name["income"].monotone == 1


class TestTwoMoons:
    def test_shapes_and_labels(self):
        ds = make_two_moons(101, random_state=0)
        assert ds.X.shape == (101, 2)
        assert set(np.unique(ds.y)) == {0.0, 1.0}

    def test_not_linearly_separable_but_learnable(self):
        from xaidb.models import DecisionTreeClassifier, LogisticRegression, accuracy

        ds = make_two_moons(400, noise=0.1, random_state=1)
        linear_acc = accuracy(
            ds.y, LogisticRegression().fit(ds.X, ds.y).predict(ds.X)
        )
        tree_acc = accuracy(
            ds.y,
            DecisionTreeClassifier(max_depth=8).fit(ds.X, ds.y).predict(ds.X),
        )
        assert tree_acc > linear_acc + 0.05

    def test_rejects_tiny_n(self):
        with pytest.raises(ValidationError):
            make_two_moons(1)
