"""Incremental-cache round trips: hits, invalidation, and the
cached-equals-uncached guarantee."""

from __future__ import annotations

import json

import pytest

from xaidb.analysis import LintCache, file_digest, run_paths
from xaidb.analysis.cache import CACHE_VERSION

DIRTY = "def f(a, bucket=[]):\n    return bucket + [a]\n"
CLEAN = "def f(a, bucket=None):\n    return [a]\n"


def _fingerprint(result):
    return [
        (f.path, f.line, f.col, f.rule_id, f.message)
        for f in result.findings
    ]


@pytest.fixture()
def project(tmp_path):
    (tmp_path / "mod.py").write_text(DIRTY)
    (tmp_path / "other.py").write_text("VALUE = 1\n")
    return tmp_path


def _scan(project, cached=True):
    cache_path = project / ".xailint_cache.json" if cached else None
    return run_paths([project], root=project, cache_path=cache_path)


def test_warm_run_serves_every_file_from_cache(project):
    cold = _scan(project)
    assert cold.stats.cache_hits == 0
    assert cold.stats.cache_misses == 2
    warm = _scan(project)
    assert warm.stats.cache_hits == 2
    assert warm.stats.cache_misses == 0
    assert warm.stats.hit_rate == 1.0
    assert warm.stats.project_from_cache
    assert _fingerprint(warm) == _fingerprint(cold)


def test_cached_and_uncached_scans_are_finding_identical(project):
    _scan(project)  # populate
    warm = _scan(project)
    uncached = _scan(project, cached=False)
    assert _fingerprint(warm) == _fingerprint(uncached)
    assert [f.rule_id for f in warm.findings] == ["XDB007"]


def test_edited_file_misses_and_refreshes_findings(project):
    _scan(project)
    (project / "mod.py").write_text(CLEAN)
    rescanned = _scan(project)
    assert rescanned.stats.cache_misses == 1
    assert rescanned.stats.cache_hits == 1
    assert not rescanned.stats.project_from_cache  # corpus changed
    assert not rescanned.findings
    # and the refreshed entry is itself served on the next run
    warm = _scan(project)
    assert warm.stats.cache_hits == 2
    assert not warm.findings


def test_suppressions_survive_the_cache_round_trip(project):
    (project / "mod.py").write_text(
        "def f(a, bucket=[]):"
        "  # xailint: disable=XDB007 (cache fixture)\n"
        "    return bucket + [a]\n"
    )
    cold = _scan(project)
    warm = _scan(project)
    for result in (cold, warm):
        assert not result.findings  # no XDB012 either: it matched
        assert [f.rule_id for f in result.suppressed] == ["XDB007"]


def test_ruleset_change_invalidates_wholesale(project):
    cache_path = project / ".xailint_cache.json"
    _scan(project)
    digest = file_digest((project / "mod.py").read_bytes())
    assert LintCache(cache_path, "other-ruleset").lookup_file(
        "mod.py", digest
    ) is None


def test_version_skew_and_corruption_are_discarded(project):
    cache_path = project / ".xailint_cache.json"
    _scan(project)
    document = json.loads(cache_path.read_text())
    document["version"] = CACHE_VERSION + 1
    cache_path.write_text(json.dumps(document))
    skewed = _scan(project)
    assert skewed.stats.cache_hits == 0
    cache_path.write_text("{not json")
    corrupted = _scan(project)
    assert corrupted.stats.cache_hits == 0
    assert [f.rule_id for f in corrupted.findings] == ["XDB007"]


def test_prune_drops_deleted_files(project):
    cache_path = project / ".xailint_cache.json"
    _scan(project)
    (project / "other.py").unlink()
    _scan(project)
    document = json.loads(cache_path.read_text())
    assert set(document["files"]) == {"mod.py"}
