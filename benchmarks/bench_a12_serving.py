"""A12 (serving) — closed-loop load sweep over the explanation server.

Reproduced shape: an interactive explanation system is judged by its
*served* latency/throughput trade-off, not by batch kernel speed (the
X-SYS reference architecture's framing).  This benchmark drives the
:mod:`xaidb.service` stack — bounded queue, micro-batcher, batched
dispatcher — with a mixed LIME/KernelSHAP/Anchors workload over forest,
GBM and linear models, sweeping the number of closed-loop clients:

1. every response stays **bitwise identical** to the per-request serial
   path (the coalescing-correctness invariant — checked on a sample of
   requests against direct explainer calls);
2. achieved throughput rises with offered concurrency while the
   micro-batcher's mean batch size grows (coalescing is actually
   happening, not just queueing);
3. the p50/p95/p99 latency trajectory is recorded per concurrency
   level, alongside shed/deadline counts.

Besides the printed table, the full run persists ``benchmarks/
BENCH_serving.json`` — offered load vs. achieved throughput vs. latency
percentiles — next to ``BENCH_inference.json``, so the serving-layer
trajectory across sessions has a baseline artifact.

``XAIDB_A12_SMOKE=1`` (the ``tools/check.py`` / CI setting) shrinks the
sweep and the per-client request count and skips the JSON write;
``XAIDB_A12_CLIENTS`` / ``XAIDB_A12_REQUESTS`` cap the sweep and the
requests-per-client explicitly.
"""

import asyncio
import json
import os
from pathlib import Path

import numpy as np

from benchmarks._tables import print_table
from xaidb.data import make_income
from xaidb.explainers.base import predict_positive_proba
from xaidb.explainers.lime import LimeExplainer
from xaidb.explainers.shapley import KernelShapExplainer
from xaidb.models import (
    GradientBoostedClassifier,
    LogisticRegression,
    RandomForestClassifier,
)
from xaidb.service import (
    Dispatcher,
    ExplanationServer,
    ServiceStats,
    WorkloadItem,
    run_closed_loop,
)

SMOKE = os.environ.get("XAIDB_A12_SMOKE", "0") == "1"
MAX_CLIENTS = int(os.environ.get("XAIDB_A12_CLIENTS", "4" if SMOKE else "16"))
N_REQUESTS = int(os.environ.get("XAIDB_A12_REQUESTS", "6" if SMOKE else "25"))

#: Small explainer budgets: A12 measures the *serving* machinery, so the
#: per-request work is deliberately modest (A10 owns kernel speed).
LIME_CONFIG = {"n_samples": 128}
SHAP_CONFIG = {"n_coalitions": 64}
ANCHORS_CONFIG = {
    "batch_size": 32,
    "max_samples_per_candidate": 200,
    "beam_width": 1,
    "max_anchor_size": 2,
}


def _build_dispatcher():
    workload = make_income(400, random_state=7)
    dataset = workload.dataset
    forest = RandomForestClassifier(
        n_estimators=8, max_depth=5, random_state=0
    ).fit(dataset.X, dataset.y)
    gbm = GradientBoostedClassifier(
        n_estimators=12, max_depth=3, random_state=1
    ).fit(dataset.X, dataset.y)
    linear = LogisticRegression(l2=1e-2).fit(dataset.X, dataset.y)

    dispatcher = Dispatcher()
    background = dataset.X[:24]
    for digest, model in (
        ("forest", forest),
        ("gbm", gbm),
        ("linear", linear),
    ):
        dispatcher.register_model(
            digest,
            predict_positive_proba(model),
            dataset=dataset,
            background=background,
        )
    pool = dataset.X[:32]
    mix = [
        WorkloadItem("forest", "lime", pool, config=LIME_CONFIG),
        WorkloadItem("gbm", "kernel_shap", pool, config=SHAP_CONFIG),
        WorkloadItem("linear", "anchors", pool, config=ANCHORS_CONFIG),
        WorkloadItem("forest", "kernel_shap", pool, config=SHAP_CONFIG),
        WorkloadItem("linear", "lime", pool, config=LIME_CONFIG),
        WorkloadItem("gbm", "lime", pool, config=LIME_CONFIG),
    ]
    return dispatcher, dataset, mix


def _serial_reference(dispatcher, dataset, response, request):
    """Re-run one served request through the plain serial path."""
    entry = dispatcher._models[request.model]
    if request.explainer == "kernel_shap":
        explainer = KernelShapExplainer(
            entry.predict_fn, entry.background, **request.config
        )
        serial = explainer.explain(
            request.instance, random_state=request.random_state
        )
        return bool(np.array_equal(response.result.values, serial.values))
    if request.explainer == "lime":
        explainer = LimeExplainer(entry.dataset, **request.config)
        serial = explainer.explain(
            entry.predict_fn,
            request.instance,
            random_state=request.random_state,
        )
        return bool(np.array_equal(response.result.values, serial.values))
    raise ValueError(request.explainer)


async def _check_bitwise(server, dispatcher, dataset) -> bool:
    """Submit a burst of coalescing-prone requests and compare each
    response to the serial path, bitwise."""
    from xaidb.service import ExplainRequest

    requests = [
        ExplainRequest(
            model="forest",
            explainer="kernel_shap",
            instance=dataset.X[i],
            config=SHAP_CONFIG,
            random_state=5000 + i,
        )
        for i in range(4)
    ] + [
        ExplainRequest(
            model="forest",
            explainer="lime",
            instance=dataset.X[i],
            config=LIME_CONFIG,
            random_state=6000 + i,
        )
        for i in range(4)
    ]
    responses = await asyncio.gather(
        *(server.submit(request) for request in requests)
    )
    coalesced = any(response.batch_size > 1 for response in responses)
    identical = all(
        _serial_reference(dispatcher, dataset, response, request)
        for response, request in zip(responses, requests)
    )
    return identical and coalesced


async def _sweep():
    dispatcher, dataset, mix = _build_dispatcher()
    levels = [n for n in (1, 2, 4, 8, 16) if n <= MAX_CLIENTS]
    sweep = []
    for n_clients in levels:
        stats = ServiceStats()
        async with ExplanationServer(
            dispatcher,
            max_queue_depth=max(64, 4 * n_clients),
            max_batch_size=32,
            max_wait_s=0.002,
            stats=stats,
        ) as server:
            result = await run_closed_loop(
                server,
                mix,
                n_clients=n_clients,
                n_requests_per_client=N_REQUESTS,
                base_seed=17,
            )
        sweep.append(
            {
                "n_clients": n_clients,
                "n_requests": result.n_requests,
                "n_completed": result.n_completed,
                "n_shed": result.n_shed,
                "n_deadline_expired": result.n_deadline_expired,
                "n_failed": result.n_failed,
                "offered_rps": result.offered_rps,
                "achieved_rps": result.achieved_rps,
                "p50_ms": stats.p50_s * 1e3,
                "p95_ms": stats.p95_s * 1e3,
                "p99_ms": stats.p99_s * 1e3,
                "mean_batch_size": stats.mean_batch_size,
                "queue_depth_peak": stats.queue_depth_peak,
                "n_model_evals": stats.runtime.n_model_evals,
            }
        )

    # correctness burst on a fresh server (separate stats, so the sweep
    # numbers above stay pure throughput measurements)
    async with ExplanationServer(
        dispatcher, max_batch_size=16, max_wait_s=0.005
    ) as server:
        bitwise = await _check_bitwise(server, dispatcher, dataset)
    return sweep, bitwise


def compute_rows():
    sweep, bitwise = asyncio.run(_sweep())
    rows = [
        (
            level["n_clients"],
            f"{level['offered_rps']:,.1f}",
            f"{level['achieved_rps']:,.1f}",
            f"{level['p50_ms']:.1f}",
            f"{level['p99_ms']:.1f}",
            f"{level['mean_batch_size']:.2f}",
            level["n_shed"] + level["n_deadline_expired"],
        )
        for level in sweep
    ]
    record = {
        "smoke": SMOKE,
        "n_requests_per_client": N_REQUESTS,
        "workload_mix": [
            "lime/forest",
            "kernel_shap/gbm",
            "anchors/linear",
            "kernel_shap/forest",
            "lime/linear",
            "lime/gbm",
        ],
        "bitwise_identical_to_serial": bitwise,
        "sweep": sweep,
    }
    if not SMOKE:  # smoke runs must not overwrite the baseline artifact
        out_path = Path(__file__).resolve().parent / "BENCH_serving.json"
        out_path.write_text(json.dumps(record, indent=2) + "\n")
    return rows, record


def test_a12_serving(benchmark):
    rows, record = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    print_table(
        "A12 (serving): closed-loop load sweep over the explanation "
        "server (mixed LIME/KernelSHAP/Anchors on forest/GBM/linear)",
        ["clients", "offered rps", "achieved rps", "p50 ms", "p99 ms",
         "mean batch", "rejected"],
        rows,
    )
    sweep = record["sweep"]
    # batched responses reproduce the per-request serial path bitwise,
    # and the burst actually coalesced (batch_size > 1 observed)
    assert record["bitwise_identical_to_serial"]
    # every level completed its full closed-loop request count
    assert all(
        level["n_completed"] == level["n_requests"] for level in sweep
    )
    assert all(level["n_failed"] == 0 for level in sweep)
    # latency percentiles are recorded and ordered
    assert all(
        0 < level["p50_ms"] <= level["p95_ms"] <= level["p99_ms"]
        for level in sweep
    )
    # coalescing is guaranteed by the burst check above (simultaneous
    # same-key submissions must share a dispatched batch); the sweep's
    # mean batch size is traffic-timing-dependent, so the full run
    # asserts it while the CI smoke only records it
    assert all(level["mean_batch_size"] >= 1.0 for level in sweep)
    if not SMOKE:
        assert sweep[-1]["mean_batch_size"] > 1.0
