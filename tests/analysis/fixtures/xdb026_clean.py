"""Clean fixture for XDB026: the same probability positions fed with
values proven inside [0, 1]."""

import numpy as np

__all__ = ["predict_proba_margin", "draw_bucket"]


def predict_proba_margin(margin):
    return 1.0 / (1.0 + np.exp(-margin))  # sigmoid: proven (0, 1]


def draw_bucket(rng):
    weights = np.full(8, 0.125)  # uniform: proven [0.125, 0.125]
    return rng.choice(8, p=weights)
