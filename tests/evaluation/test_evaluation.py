import numpy as np
import pytest

from xaidb.evaluation import (
    attribution_lipschitz,
    coefficient_stability_index,
    deletion_auc,
    deletion_curve,
    insertion_curve,
    local_fidelity,
    parameter_randomization_check,
    rank_correlation,
    variable_stability_index,
)
from xaidb.exceptions import ValidationError
from xaidb.explainers import (
    FeatureAttribution,
    LimeExplainer,
    predict_positive_proba,
    saliency,
)
from xaidb.models import MLPClassifier


class TestFaithfulness:
    @pytest.fixture(scope="class")
    def linear_setup(self):
        weights = np.asarray([3.0, 1.0, 0.0])

        def f(X):
            return X @ weights

        x = np.asarray([1.0, 1.0, 1.0])
        baseline = np.zeros(3)
        return f, x, baseline, weights

    def test_deletion_curve_shape(self, linear_setup):
        f, x, baseline, weights = linear_setup
        curve = deletion_curve(f, x, weights, baseline)
        assert curve.shape == (4,)
        assert curve[0] == pytest.approx(4.0)  # f(x)
        assert curve[-1] == pytest.approx(0.0)  # f(baseline)

    def test_correct_attribution_drops_fastest(self, linear_setup):
        f, x, baseline, weights = linear_setup
        good = deletion_curve(f, x, weights, baseline)
        bad = deletion_curve(f, x, weights[::-1], baseline)  # wrong order
        assert deletion_auc(good) < deletion_auc(bad)

    def test_insertion_mirror(self, linear_setup):
        f, x, baseline, weights = linear_setup
        curve = insertion_curve(f, x, weights, baseline)
        assert curve[0] == pytest.approx(0.0)
        assert curve[-1] == pytest.approx(4.0)

    def test_auc_of_constant_curve(self):
        assert deletion_auc(np.full(5, 2.0)) == pytest.approx(2.0)

    def test_shape_mismatch(self, linear_setup):
        f, x, baseline, weights = linear_setup
        with pytest.raises(ValidationError):
            deletion_curve(f, x, weights[:2], baseline)


class TestFidelity:
    def test_local_fidelity_of_model_with_itself(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        assert local_fidelity(
            f, f, income.dataset.X[0], random_state=0
        ) == pytest.approx(1.0)

    def test_local_fidelity_of_constant_surrogate(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        constant = lambda X: np.full(X.shape[0], 0.5)
        assert local_fidelity(
            f, constant, income.dataset.X[0], random_state=0
        ) <= 0.0 + 1e-9

    def test_rank_correlation_extremes(self):
        a = np.asarray([3.0, 2.0, 1.0])
        assert rank_correlation(a, a) == pytest.approx(1.0)
        assert rank_correlation(a, a[::-1]) == pytest.approx(-1.0)

    def test_rank_correlation_uses_magnitudes(self):
        a = np.asarray([3.0, -2.0, 1.0])
        b = np.asarray([-3.0, 2.0, -1.0])
        assert rank_correlation(a, b) == pytest.approx(1.0)


class TestStability:
    def _attribution(self, values):
        return FeatureAttribution(
            [f"f{i}" for i in range(len(values))], np.asarray(values, dtype=float)
        )

    def test_identical_runs_fully_stable(self):
        runs = [self._attribution([1.0, 2.0, 3.0])] * 3
        assert variable_stability_index(runs, top_k=2) == pytest.approx(1.0)
        assert coefficient_stability_index(runs) == pytest.approx(1.0)

    def test_disjoint_top_sets_unstable(self):
        a = self._attribution([1.0, 0.0, 0.0, 0.0])
        b = self._attribution([0.0, 0.0, 0.0, 1.0])
        assert variable_stability_index([a, b], top_k=1) == pytest.approx(0.0)

    def test_sign_flips_zero_csi_contribution(self):
        a = self._attribution([1.0, 1.0])
        b = self._attribution([-1.0, 1.0])
        assert coefficient_stability_index([a, b]) == pytest.approx(0.5)

    def test_needs_two_runs(self):
        with pytest.raises(ValidationError):
            variable_stability_index([self._attribution([1.0])])

    def test_mismatched_features_rejected(self):
        a = self._attribution([1.0])
        b = FeatureAttribution(["other"], np.asarray([1.0]))
        with pytest.raises(ValidationError):
            coefficient_stability_index([a, b])

    def test_lime_stability_improves_with_budget(self, income, income_logistic):
        f = predict_positive_proba(income_logistic)
        x = income.dataset.X[0]

        def csi(n_samples):
            lime = LimeExplainer(income.dataset, n_samples=n_samples)
            runs = [lime.explain(f, x, random_state=s) for s in range(4)]
            return coefficient_stability_index(runs)

        assert csi(1500) > csi(60)


class TestRobustness:
    def test_constant_attribution_zero_lipschitz(self):
        fn = lambda x: np.ones(3)
        value = attribution_lipschitz(
            fn, np.zeros(3), radius=0.1, n_samples=10, random_state=0
        )
        assert value == pytest.approx(0.0)

    def test_linear_attribution_bounded(self):
        matrix = np.asarray([[2.0, 0.0], [0.0, 3.0]])
        fn = lambda x: matrix @ x
        value = attribution_lipschitz(
            fn, np.zeros(2), radius=0.5, n_samples=50, random_state=1
        )
        assert value <= np.linalg.norm(matrix, 2) + 1e-6
        assert value > 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            attribution_lipschitz(lambda x: x, np.zeros(2), radius=0.0)


class TestSanityChecks:
    @pytest.fixture(scope="class")
    def mlp(self, moons):
        return MLPClassifier(hidden_sizes=(12,), max_iter=400, random_state=0).fit(
            moons.X, moons.y
        )

    def test_saliency_changes_under_randomization(self, mlp, moons):
        """Saliency passes the sanity check: correlation after parameter
        randomisation must be far from 1."""

        def attribution(model, x):
            return saliency(model, x).values

        corr = parameter_randomization_check(
            mlp, attribution, moons.X[:12], random_state=0
        )
        assert corr < 0.8

    def test_model_independent_attribution_fails_check(self, mlp, moons):
        """An 'explanation' that ignores the model (|x| itself) survives
        randomisation with correlation 1 — the failure mode the check
        exists to expose."""

        def edge_detector(model, x):
            return np.abs(x)

        corr = parameter_randomization_check(
            mlp, edge_detector, moons.X[:12], random_state=0
        )
        assert corr == pytest.approx(1.0)

    def test_requires_instances(self, mlp):
        with pytest.raises(ValidationError):
            parameter_randomization_check(
                mlp, lambda m, x: x, np.empty((0, 2))
            )
