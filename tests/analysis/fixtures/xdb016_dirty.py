"""Dirty fixture for XDB016: a literal-seeded generator built two call
levels down reaches stochastic sinks in the caller (XDB010 cannot see
across the boundaries; the summaries can)."""

import numpy as np

__all__ = ["make_rng", "wrap_rng", "perturb", "pick"]


def make_rng():
    return np.random.default_rng(1234)  # literal seed, depth 0


def wrap_rng():
    return make_rng()  # escapes again: depth 1 for callers


def perturb(X):
    rng = wrap_rng()  # depth 2 in this frame
    return X + rng.normal(size=X.shape)  # finding 1


def pick(items):
    rng = wrap_rng()
    return rng.choice(items)  # finding 2
